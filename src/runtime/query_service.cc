#include "src/runtime/query_service.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/common/logging.h"

namespace focus::runtime {

namespace {

// Verdict of one unique (stream, centroid) classification: the GT-CNN top-1 label
// and when the launch that carried it finished on the cluster. |failed| marks a
// verdict whose launch stayed failed past the retry policy: top1 is invalid and
// every request that needs it resolves to an error instead of an answer.
struct SharedVerdict {
  common::ClassId top1 = common::kInvalidClass;
  common::GpuMillis finish_millis = 0.0;
  bool failed = false;
};

}  // namespace

QueryService::QueryService(QueryServiceOptions options, MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics != nullptr ? metrics : &GlobalMetrics()),
      cluster_(options.num_gpus) {
  FOCUS_CHECK(options.batch_size >= 1);
}

QueryExecution QueryService::Execute(const QueryRequest& request) {
  return ExecuteConcurrently({request})[0];
}

std::vector<QueryExecution> QueryService::ExecuteConcurrently(
    const std::vector<QueryRequest>& requests) {
  // All requests share one submission instant; interleaving happens through the
  // cluster's least-loaded dispatch, so earlier work in the pooled order gets the
  // first slots deterministically.
  const common::GpuMillis submit = cluster_.EarliestFree();

  QueryBatchStats stats;
  stats.requests = static_cast<int64_t>(requests.size());

  // Phase 1 — plan every request. Index lookups only; no GPU work yet. A
  // request targets either a finalized stream or a published live snapshot
  // (live query-over-ingest); both reduce to the same plan/execute shape, with
  // the verdict-sharing identity being the stream (stable across calls) or the
  // snapshot object (one epoch — two requests share verdicts iff they query
  // the very same epoch, whose entries are identical by construction).
  struct PlannedRequest {
    core::QueryPlan plan;
    const void* identity = nullptr;
    const cnn::Cnn* gt = nullptr;
  };
  std::vector<PlannedRequest> plans;
  plans.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    FOCUS_CHECK((request.stream != nullptr) != (request.snapshot != nullptr));
    PlannedRequest planned;
    if (request.stream != nullptr) {
      planned.plan = request.stream->Plan(request.cls, request.kx, request.range);
      planned.identity = request.stream;
      planned.gt = &request.stream->gt_cnn();
    } else {
      FOCUS_CHECK(request.ingest_cnn != nullptr && request.gt_cnn != nullptr);
      planned.plan = core::QueryEngine(request.snapshot.get(), request.ingest_cnn,
                                       request.gt_cnn)
                         .Plan(request.cls, request.kx, request.range, request.fps);
      planned.identity = request.snapshot.get();
      planned.gt = request.gt_cnn;
    }
    plans.push_back(std::move(planned));
  }

  // Phase 2 — pool the work items across requests and deduplicate identical
  // (target, centroid) classifications: a cluster indexed under several queried
  // classes needs one GT-CNN verdict no matter how many concurrent queries ask.
  // Unique items keep first-appearance order (request order, plan order within a
  // request), which keeps the schedule deterministic.
  struct UniqueItem {
    const void* identity = nullptr;
    int64_t cluster_id = -1;
    const video::Detection* centroid = nullptr;
  };
  using WorkKey = std::pair<const void*, int64_t>;
  std::vector<UniqueItem> unique;
  std::set<WorkKey> seen;
  for (size_t r = 0; r < requests.size(); ++r) {
    for (const core::CentroidWorkItem& item : plans[r].plan.work) {
      ++stats.work_items;
      if (seen.insert({plans[r].identity, item.cluster_id}).second) {
        unique.push_back(UniqueItem{plans[r].identity, item.cluster_id, item.centroid});
      } else {
        ++stats.dedup_hits;
      }
    }
  }
  stats.unique_items = static_cast<int64_t>(unique.size());

  // Phase 3 — pack the unique items into GT-CNN launches and run them. Items are
  // grouped per target (each target classifies with its own GT-CNN instance);
  // within a group the packer is parallelism-first: while there is less work than
  // idle GPUs, every centroid gets its own launch (the §5 fan-out, and exactly
  // the legacy per-centroid schedule at batch_size = 1); beyond that, launches
  // grow — up to batch_size images — so each launch pays its overhead once.
  struct TargetGroup {
    const cnn::Cnn* gt = nullptr;
    std::vector<size_t> items;
  };
  std::vector<const void*> target_order;
  std::map<const void*, TargetGroup> by_target;
  for (size_t r = 0; r < requests.size(); ++r) {
    auto [it, inserted] = by_target.try_emplace(plans[r].identity);
    if (inserted) {
      it->second.gt = plans[r].gt;
      target_order.push_back(plans[r].identity);
    }
  }
  for (size_t i = 0; i < unique.size(); ++i) {
    by_target.at(unique[i].identity).items.push_back(i);
  }

  std::map<WorkKey, SharedVerdict> verdicts;
  std::vector<const video::Detection*> crops;
  std::vector<cnn::TopKResult> classified;
  for (const void* target : target_order) {
    const TargetGroup& group = by_target.at(target);
    const cnn::Cnn& gt_cnn = *group.gt;
    const std::vector<size_t>& items = group.items;
    const int64_t n = static_cast<int64_t>(items.size());
    if (n == 0) {
      continue;
    }
    // Fewest launches the batch cap allows, rounded up to whole rounds of
    // num_gpus so the rounds stay balanced: 21 launches on 10 GPUs would leave
    // one GPU a third round while nine idle — worse latency than not batching —
    // whereas 30 launches finish in three even rounds. Capped at n (a launch
    // needs at least one image); at batch_size = 1 this is exactly one launch
    // per centroid, the legacy schedule.
    const int64_t by_amortization =
        (n + options_.batch_size - 1) / static_cast<int64_t>(options_.batch_size);
    const int64_t rounds =
        (by_amortization + options_.num_gpus - 1) / static_cast<int64_t>(options_.num_gpus);
    const int64_t num_launches =
        std::min<int64_t>(n, rounds * static_cast<int64_t>(options_.num_gpus));
    const int64_t base = n / num_launches;
    const int64_t remainder = n % num_launches;
    int64_t offset = 0;
    for (int64_t launch = 0; launch < num_launches; ++launch) {
      const int64_t count = base + (launch < remainder ? 1 : 0);
      crops.clear();
      for (int64_t i = 0; i < count; ++i) {
        crops.push_back(unique[items[static_cast<size_t>(offset + i)]].centroid);
      }
      gt_cnn.ClassifyBatch(crops, /*k=*/1, &classified);
      const common::GpuMillis cost = gt_cnn.BatchCostMillis(count);
      // Launch with bounded retries (docs/robustness.md): a rejected or timed-out
      // launch is re-submitted at the cluster's then-current frontier plus the
      // policy's exponential backoff — all virtual time, nothing sleeps. A
      // timeout still occupied a device for the launch's full cost (wasted and
      // accounted); a rejection never reached a device.
      const common::RetryPolicy& policy = options_.launch_retry;
      const int max_attempts = std::max(1, policy.max_attempts);
      double backoff = policy.initial_backoff_millis;
      common::GpuMillis at = submit;
      common::Result<GpuJobTicket> ticket = cluster_.TrySubmit(at, cost);
      for (int attempt = 1; !ticket.ok(); ++attempt) {
        if (ticket.error().code == common::ErrorCode::kTimeout) {
          stats.wasted_gpu_millis += cost;
        }
        if (attempt >= max_attempts || !common::IsRetryable(ticket.error().code)) {
          break;
        }
        ++stats.launch_retries;
        at = std::max(at, cluster_.EarliestFree()) + backoff;
        backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_millis);
        ticket = cluster_.TrySubmit(at, cost);
      }
      if (!ticket.ok()) {
        ++stats.launches_failed;
        for (int64_t i = 0; i < count; ++i) {
          const UniqueItem& item = unique[items[static_cast<size_t>(offset + i)]];
          SharedVerdict verdict;
          verdict.finish_millis = at;
          verdict.failed = true;
          verdicts[{item.identity, item.cluster_id}] = verdict;
        }
        offset += count;
        continue;
      }
      for (int64_t i = 0; i < count; ++i) {
        const UniqueItem& item = unique[items[static_cast<size_t>(offset + i)]];
        verdicts[{item.identity, item.cluster_id}] =
            SharedVerdict{classified[static_cast<size_t>(i)].Top1(), ticket->finish_millis};
      }
      ++stats.launches;
      stats.gpu_millis += cost;
      offset += count;
    }
  }

  // Phase 4 — resolve every plan from the shared verdict table. A request is done
  // when the last launch carrying one of its verdicts finishes; a request with no
  // work (empty posting list) finishes at its submission instant.
  std::vector<QueryExecution> executions;
  executions.reserve(requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    std::vector<common::ClassId> plan_verdicts;
    plan_verdicts.reserve(plans[r].plan.work.size());
    common::GpuMillis finish = submit;
    bool failed = false;
    for (const core::CentroidWorkItem& item : plans[r].plan.work) {
      const SharedVerdict& verdict = verdicts.at({plans[r].identity, item.cluster_id});
      failed = failed || verdict.failed;
      plan_verdicts.push_back(verdict.top1);
      finish = std::max(finish, verdict.finish_millis);
    }
    QueryExecution execution;
    execution.submit_millis = submit;
    execution.finish_millis = finish;
    if (failed) {
      // One of this request's verdicts never got a successful launch: surface a
      // typed error rather than resolving a partial (silently wrong) answer.
      execution.error = common::Unavailable(
          "GT-CNN launch failed after " +
          std::to_string(std::max(1, options_.launch_retry.max_attempts)) + " attempts");
      metrics_->IncrementCounter("query.requests");
      metrics_->IncrementCounter("query.requests_failed");
      executions.push_back(std::move(execution));
      continue;
    }
    execution.result =
        requests[r].stream != nullptr
            ? requests[r].stream->Resolve(plans[r].plan, plan_verdicts)
            : core::QueryEngine(requests[r].snapshot.get(), requests[r].ingest_cnn,
                                requests[r].gt_cnn)
                  .Resolve(plans[r].plan, plan_verdicts);

    metrics_->IncrementCounter("query.requests");
    metrics_->IncrementCounter("query.centroids_classified",
                               execution.result.centroids_classified);
    metrics_->Observe("query.latency_millis", execution.latency_millis());
    executions.push_back(std::move(execution));
  }
  metrics_->IncrementCounter("query.batch_launches", stats.launches);
  metrics_->IncrementCounter("query.dedup_hits", stats.dedup_hits);
  metrics_->Observe("query.batch_gpu_millis", stats.gpu_millis);

  last_stats_ = stats;
  return executions;
}

void QueryService::ResetCluster() { cluster_.Reset(); }

}  // namespace focus::runtime
