// Live query-over-ingest: epoch-published canonical snapshots of a stream that
// is still being ingested.
//
// The paper's headline scenario is querying video while it is still arriving —
// low-latency answers over streams that never end. A one-shot FinalizeClusters()
// at end-of-stream can never serve that: an infinite stream has no end, so every
// query would wait forever. The windowed streaming finalize
// (core::IngestOptions::finalize_every_frames) instead runs the cross-shard
// merge to convergence every N sampled frames and publishes the result as an
// immutable LiveSnapshot: the canonical cluster table (carried as the top-K
// index's cluster entries), the frame watermark the table covers, and a
// monotone epoch number.
//
// Publication is an RCU-style pointer swap (SnapshotSlot): the ingest thread
// builds the snapshot off to the side and swaps it in atomically; query threads
// load the current pointer and keep the snapshot alive through their own
// shared_ptr reference for as long as the query runs, so a reader never sees a
// half-built table and never blocks the writer. Epochs are stamped by the slot
// and strictly monotone; the watermark is the first sampled frame NOT covered,
// so a snapshot with watermark w answers exactly what a query against a stream
// halted at frame w and finalized the old way would answer — byte-identically
// (tests/live_snapshot_test.cc holds this as a property over random streams).
//
// Snapshots are volatile: they are never written to disk and are rebuilt from
// the ingest state after a crash-resume (docs/live_query.md covers the
// interaction with Checkpoint()/OpenOrRecover()).
#ifndef FOCUS_SRC_CORE_LIVE_SNAPSHOT_H_
#define FOCUS_SRC_CORE_LIVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "src/common/time_types.h"
#include "src/index/topk_index.h"

namespace focus::core {

// Build accounting of one snapshot (the publication overhead the live-query
// bench tracks).
struct LiveSnapshotStats {
  // Index entries carried forward unchanged from the previous epoch (their
  // component composition, members, and ranks did not change) vs rebuilt from
  // the rank table. reused + rebuilt == index.num_clusters().
  int64_t entries_reused = 0;
  int64_t entries_rebuilt = 0;
  // Wall-clock of the whole publication: cross-shard merge pass, canonical
  // table build, index delta build, and the pointer swap.
  double build_millis = 0.0;
};

// One immutable published snapshot. Everything here is frozen at publication;
// readers share the object via shared_ptr and never synchronize further.
struct LiveSnapshot {
  // 1-based, strictly monotone per SnapshotSlot (stamped by Publish).
  uint64_t epoch = 0;
  // First sampled frame NOT covered: the snapshot answers queries over frames
  // [0, watermark) exactly as halting ingest at |watermark| and finalizing
  // would.
  common::FrameIndex watermark = 0;
  // Recording fps, for time-range-to-frame mapping at plan time.
  double fps = 30.0;
  // The canonical cluster table as the query side consumes it: one ClusterEntry
  // per canonical cluster (representative, member runs, ranked top-K classes)
  // plus the class postings.
  index::TopKIndex index;
  // Stream counters as of the watermark.
  int64_t detections = 0;
  int64_t num_clusters = 0;
  LiveSnapshotStats stats;
};

// The RCU slot one ingest run publishes through. Single writer (the ingest
// thread), any number of concurrent readers. The mutex guards only the
// pointer copy/swap — nanoseconds — so readers never wait out a merge and the
// writer never waits out a query: a reader pins its epoch via the shared_ptr
// refcount and works lock-free from there. (An std::atomic<shared_ptr> would
// drop even the micro-lock, but GCC 12's _Sp_atomic lock-bit protocol is
// opaque to ThreadSanitizer and the sanitize gate runs this type.)
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  // The newest published snapshot, or null before the first epoch. The caller's
  // shared_ptr keeps the snapshot (and every index entry a plan points into)
  // alive even if a newer epoch is published mid-query.
  std::shared_ptr<const LiveSnapshot> Latest() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_;
  }

  // Stamps the next epoch (previous + 1) onto |snapshot| and swaps it in.
  // Returns the published (now immutable) snapshot. Single-writer only.
  std::shared_ptr<const LiveSnapshot> Publish(std::unique_ptr<LiveSnapshot> snapshot);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const LiveSnapshot> latest_;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_LIVE_SNAPSHOT_H_
