#include "src/video/class_catalog.h"

#include <array>
#include <cstdio>

#include "src/common/hashing.h"
#include "src/common/rng.h"

namespace focus::video {

namespace {

// A few well-known names at fixed ids so that examples and docs can query for "car"
// or "person" without looking up synthetic identifiers. The rest of the 1000-class
// space gets generated names.
struct NamedClass {
  const char* name;
  SemanticGroup group;
};

constexpr std::array<NamedClass, 40> kNamedClasses = {{
    {"car", SemanticGroup::kVehicle},
    {"truck", SemanticGroup::kVehicle},
    {"bus", SemanticGroup::kVehicle},
    {"motorcycle", SemanticGroup::kVehicle},
    {"bicycle", SemanticGroup::kVehicle},
    {"van", SemanticGroup::kVehicle},
    {"taxi", SemanticGroup::kVehicle},
    {"trailer", SemanticGroup::kVehicle},
    {"person", SemanticGroup::kPerson},
    {"pedestrian", SemanticGroup::kPerson},
    {"cyclist", SemanticGroup::kPerson},
    {"police_officer", SemanticGroup::kPerson},
    {"dog", SemanticGroup::kAnimal},
    {"cat", SemanticGroup::kAnimal},
    {"bird", SemanticGroup::kAnimal},
    {"horse", SemanticGroup::kAnimal},
    {"backpack", SemanticGroup::kBag},
    {"handbag", SemanticGroup::kBag},
    {"suitcase", SemanticGroup::kBag},
    {"shopping_bag", SemanticGroup::kBag},
    {"bench", SemanticGroup::kFurniture},
    {"chair", SemanticGroup::kFurniture},
    {"table", SemanticGroup::kFurniture},
    {"desk", SemanticGroup::kFurniture},
    {"monitor", SemanticGroup::kElectronics},
    {"laptop", SemanticGroup::kElectronics},
    {"phone", SemanticGroup::kElectronics},
    {"camera", SemanticGroup::kElectronics},
    {"jacket", SemanticGroup::kClothing},
    {"hat", SemanticGroup::kClothing},
    {"umbrella", SemanticGroup::kClothing},
    {"coffee_cup", SemanticGroup::kFood},
    {"pizza", SemanticGroup::kFood},
    {"storefront", SemanticGroup::kBuilding},
    {"kiosk", SemanticGroup::kBuilding},
    {"tree", SemanticGroup::kPlant},
    {"potted_plant", SemanticGroup::kPlant},
    {"traffic_light", SemanticGroup::kSign},
    {"stop_sign", SemanticGroup::kSign},
    {"billboard", SemanticGroup::kSign},
}};

// Archetype composition: archetype = normalize(kGroupWeight * group_center +
// kUniqueWeight * idiosyncratic_direction). With nearly-orthogonal random directions
// this puts same-group classes ~1.05 apart and cross-group classes ~1.41 apart in L2,
// so classes within a group are genuinely confusable (car vs. truck) while groups
// stay separable — which is what defeats very cheap CNNs and keeps the top-K index
// honest.
constexpr double kGroupWeight = 0.65;
constexpr double kUniqueWeight = 0.76;

}  // namespace

ClassCatalog::ClassCatalog(uint64_t world_seed, size_t feature_dim)
    : world_seed_(world_seed), feature_dim_(feature_dim) {
  names_.resize(kNumClasses);
  groups_.resize(kNumClasses);
  archetypes_.resize(kNumClasses);
  by_group_.resize(kNumSemanticGroups);

  // Group centers: well-separated unit directions.
  std::vector<common::FeatureVec> centers;
  centers.reserve(kNumSemanticGroups);
  for (int g = 0; g < kNumSemanticGroups; ++g) {
    common::Pcg32 rng(common::DeriveSeed(world_seed, common::HashCombine(0xC0FFEE, g)));
    centers.push_back(common::RandomUnitVector(feature_dim, rng));
  }

  for (common::ClassId id = 0; id < kNumClasses; ++id) {
    size_t idx = static_cast<size_t>(id);
    if (idx < kNamedClasses.size()) {
      names_[idx] = kNamedClasses[idx].name;
      groups_[idx] = kNamedClasses[idx].group;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "class_%04d", id);
      names_[idx] = buf;
      // Spread the anonymous classes round-robin with a hashed shuffle so group sizes
      // are balanced but membership looks arbitrary.
      uint64_t h = common::HashCombine(world_seed, 0xBEEF, static_cast<uint64_t>(id));
      groups_[idx] = static_cast<SemanticGroup>(h % kNumSemanticGroups);
    }

    common::Pcg32 rng(common::DeriveSeed(world_seed, common::HashCombine(0xA11CE, id)));
    common::FeatureVec v = common::RandomUnitVector(feature_dim, rng);
    common::ScaleInPlace(v, kUniqueWeight);
    common::AddScaledInPlace(v, centers[static_cast<int>(groups_[idx])], kGroupWeight);
    common::NormalizeInPlace(v);
    archetypes_[idx] = std::move(v);
    by_group_[static_cast<int>(groups_[idx])].push_back(id);
  }
}

common::ClassId ClassCatalog::IdForName(const std::string& name) const {
  for (common::ClassId id = 0; id < kNumClasses; ++id) {
    if (names_[static_cast<size_t>(id)] == name) {
      return id;
    }
  }
  return common::kInvalidClass;
}

}  // namespace focus::video
