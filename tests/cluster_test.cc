// Unit tests for the incremental clusterer (§4.2).
#include <gtest/gtest.h>

#include <set>

#include "src/cluster/incremental_clusterer.h"
#include "src/common/rng.h"

namespace focus::cluster {
namespace {

video::Detection Det(common::ObjectId object, common::FrameIndex frame) {
  video::Detection d;
  d.object_id = object;
  d.frame = frame;
  return d;
}

common::FeatureVec Vec(std::initializer_list<float> values) { return common::FeatureVec(values); }

ClustererOptions ExactOptions(double threshold) {
  ClustererOptions opts;
  opts.threshold = threshold;
  opts.mode = ClustererOptions::Mode::kExact;
  return opts;
}

TEST(ClustererTest, FirstObjectFormsFirstCluster) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  int64_t id = clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(clusterer.num_clusters(), 1u);
}

TEST(ClustererTest, NearbyPointsJoinFarPointsSplit) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  int64_t a = clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  int64_t b = clusterer.Add(Det(2, 0), Vec({1.0f, 0.1f}));  // Distance 0.1 < T.
  int64_t c = clusterer.Add(Det(3, 0), Vec({0.0f, 1.0f}));  // Distance ~1.4 > T.
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(clusterer.num_clusters(), 2u);
}

TEST(ClustererTest, AssignsToClosestCluster) {
  IncrementalClusterer clusterer(ExactOptions(1.0));
  clusterer.Add(Det(1, 0), Vec({0.0f, 0.0f}));
  clusterer.Add(Det(2, 0), Vec({2.0f, 0.0f}));  // Beyond T from cluster 0: new cluster.
  ASSERT_EQ(clusterer.num_clusters(), 2u);
  // 1.2 is within T of cluster 1 (distance 0.8) and beyond cluster 0 (1.2 > 1.0).
  int64_t id = clusterer.Add(Det(3, 0), Vec({1.2f, 0.0f}));
  EXPECT_EQ(id, 1);
}

TEST(ClustererTest, CentroidTracksRunningMean) {
  IncrementalClusterer clusterer(ExactOptions(2.0));
  clusterer.Add(Det(1, 0), Vec({0.0f, 0.0f}));
  clusterer.Add(Det(2, 0), Vec({1.0f, 0.0f}));
  const Cluster& c = clusterer.clusters()[0];
  EXPECT_NEAR(c.centroid[0], 0.5f, 1e-6);
  EXPECT_EQ(c.size, 2);
}

TEST(ClustererTest, MemberRunsMergeConsecutiveFrames) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  for (common::FrameIndex f = 0; f < 10; ++f) {
    clusterer.Add(Det(7, f), Vec({1.0f, 0.0f}));
  }
  const Cluster& c = clusterer.clusters()[0];
  ASSERT_EQ(c.members.size(), 1u);
  EXPECT_EQ(c.members[0].object, 7);
  EXPECT_EQ(c.members[0].first_frame, 0);
  EXPECT_EQ(c.members[0].last_frame, 9);
  EXPECT_EQ(c.members[0].FrameCount(), 10);
}

TEST(ClustererTest, InterleavedObjectsKeepSeparateRuns) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  for (common::FrameIndex f = 0; f < 6; ++f) {
    clusterer.Add(Det(1, f), Vec({1.0f, 0.0f}));
    clusterer.Add(Det(2, f), Vec({1.0f, 0.05f}));
  }
  const Cluster& c = clusterer.clusters()[0];
  ASSERT_EQ(c.members.size(), 2u);
  EXPECT_EQ(c.members[0].FrameCount(), 6);
  EXPECT_EQ(c.members[1].FrameCount(), 6);
}

TEST(ClustererTest, NonContiguousFramesOpenNewRun) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  clusterer.Add(Det(1, 5), Vec({1.0f, 0.0f}));  // Gap.
  const Cluster& c = clusterer.clusters()[0];
  ASSERT_EQ(c.members.size(), 2u);
}

TEST(ClustererTest, RepresentativeIsFoundingDetection) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  clusterer.Add(Det(11, 3), Vec({1.0f, 0.0f}));
  clusterer.Add(Det(12, 4), Vec({1.0f, 0.05f}));
  EXPECT_EQ(clusterer.clusters()[0].representative.object_id, 11);
  EXPECT_EQ(clusterer.clusters()[0].representative.frame, 3);
}

TEST(ClustererTest, MaxActiveCapRetiresSmallest) {
  ClustererOptions opts = ExactOptions(0.1);
  opts.max_active = 3;
  IncrementalClusterer clusterer(opts);
  // Grow cluster 0 with several members so it is never the smallest.
  for (common::FrameIndex f = 0; f < 5; ++f) {
    clusterer.Add(Det(1, f), Vec({0.0f, 0.0f}));
  }
  clusterer.Add(Det(2, 0), Vec({10.0f, 0.0f}));
  clusterer.Add(Det(3, 0), Vec({20.0f, 0.0f}));
  EXPECT_EQ(clusterer.num_active(), 3u);
  clusterer.Add(Det(4, 0), Vec({30.0f, 0.0f}));  // Forces retirement of a singleton.
  EXPECT_EQ(clusterer.num_active(), 3u);
  EXPECT_EQ(clusterer.num_clusters(), 4u);  // Retired clusters remain in the output.
  int active = 0;
  for (const Cluster& c : clusterer.clusters()) {
    if (c.active) {
      ++active;
    }
  }
  EXPECT_EQ(active, 3);
  // The big cluster survived.
  EXPECT_TRUE(clusterer.clusters()[0].active);
}

TEST(ClustererTest, SuppressedAddReusesPreviousCluster) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  common::FeatureVec before = clusterer.clusters()[0].centroid;
  int64_t id = clusterer.AddSuppressed(Det(1, 1), Vec({0.0f, 9.0f}));  // Feature ignored.
  EXPECT_EQ(id, 0);
  EXPECT_EQ(clusterer.clusters()[0].centroid, before);  // Centroid untouched.
  EXPECT_EQ(clusterer.clusters()[0].size, 2);
}

TEST(ClustererTest, SuppressedAddWithoutHistoryFallsBack) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  int64_t id = clusterer.AddSuppressed(Det(5, 0), Vec({1.0f, 0.0f}));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(clusterer.num_clusters(), 1u);
}

TEST(ClustererTest, FastModeApproximatesExactMode) {
  // Run the same synthetic workload through both modes; cluster counts must be close
  // and same-object assignments identical in the common case.
  common::Pcg32 rng(13);
  constexpr int kObjects = 60;
  constexpr int kFramesPerObject = 40;
  constexpr size_t kDim = 16;

  std::vector<common::FeatureVec> base(kObjects);
  for (auto& v : base) {
    v = common::RandomUnitVector(kDim, rng);
  }

  ClustererOptions exact = ExactOptions(0.4);
  ClustererOptions fast = exact;
  fast.mode = ClustererOptions::Mode::kFast;
  IncrementalClusterer a(exact);
  IncrementalClusterer b(fast);
  common::Pcg32 noise(29);
  for (int f = 0; f < kFramesPerObject; ++f) {
    for (int o = 0; o < kObjects; ++o) {
      common::FeatureVec v = common::PerturbedUnitVector(base[o], 0.05, noise);
      a.Add(Det(o, f), v);
      b.Add(Det(o, f), v);
    }
  }
  double ratio = static_cast<double>(b.num_clusters()) / static_cast<double>(a.num_clusters());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
  EXPECT_GT(b.FastHitRate(), 0.8);
}

TEST(ClustererTest, ThresholdControlsGranularity) {
  common::Pcg32 rng(31);
  std::vector<common::FeatureVec> points;
  common::FeatureVec center = common::RandomUnitVector(16, rng);
  for (int i = 0; i < 200; ++i) {
    points.push_back(common::PerturbedUnitVector(center, 0.3, rng));
  }
  size_t tight_clusters = 0;
  size_t loose_clusters = 0;
  {
    IncrementalClusterer tight(ExactOptions(0.15));
    for (size_t i = 0; i < points.size(); ++i) {
      tight.Add(Det(static_cast<common::ObjectId>(i), 0), points[i]);
    }
    tight_clusters = tight.num_clusters();
  }
  {
    IncrementalClusterer loose(ExactOptions(1.0));
    for (size_t i = 0; i < points.size(); ++i) {
      loose.Add(Det(static_cast<common::ObjectId>(i), 0), points[i]);
    }
    loose_clusters = loose.num_clusters();
  }
  EXPECT_GT(tight_clusters, loose_clusters);
  EXPECT_LE(loose_clusters, 3u);
}

}  // namespace
}  // namespace focus::cluster
