// Ingest-time processing (§3 left side: IT1-IT4).
//
// For every moving-object detection of the stream, the pipeline (1) runs the cheap
// ingest CNN to get the top-K classes and the feature vector — unless pixel
// differencing lets it reuse the previous frame's result, (2) clusters the object by
// feature vector, (3) aggregates per-cluster class confidences, and (4) emits the
// top-K index mapping classes to clusters. GPU time is accounted per inference.
#ifndef FOCUS_SRC_CORE_INGEST_PIPELINE_H_
#define FOCUS_SRC_CORE_INGEST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/cnn.h"
#include "src/common/result.h"
#include "src/common/retry.h"
#include "src/core/config.h"
#include "src/core/live_snapshot.h"
#include "src/index/topk_index.h"
#include "src/storage/fsync_policy.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {
class WorkerPool;
}  // namespace focus::runtime

namespace focus::core {

struct IngestResult {
  index::TopKIndex index;
  // GPU time spent by the cheap CNN.
  common::GpuMillis gpu_millis = 0.0;
  int64_t detections = 0;
  int64_t cnn_invocations = 0;   // Detections actually classified.
  int64_t suppressed = 0;        // Reused via pixel differencing.
  int64_t num_clusters = 0;
  double clusterer_fast_hit_rate = 0.0;
  // Persistent path only: the sampled frame this run resumed from (0 = fresh
  // start or volatile ingest). Counters cover the whole stream either way —
  // the at-checkpoint counters are recovered, the re-processed window recounts
  // exactly what the crashed attempt had counted past the checkpoint.
  common::FrameIndex resumed_from_frame = 0;
};

struct IngestOptions {
  cluster::ClustererOptions::Mode cluster_mode = cluster::ClustererOptions::Mode::kFast;
  size_t max_active_clusters = 4096;
  // Stop ingesting after this many seconds of video (negative: whole run). Used by
  // the tuner to process only a sample window.
  double limit_sec = -1.0;
  // Honor pixel-differencing suppression (§4.2). Disabled by the ablation bench to
  // measure how much ingest cost the technique saves.
  bool use_pixel_diff = true;
  // Persistent path: sampled frames an object may sit idle in the pixel-diff
  // reuse maps before checkpoint-time eviction drops its entry. Must exceed the
  // longest occlusion gap after which a track can resume *suppressed* — an
  // evicted object that returns suppressed is reclassified, diverging from the
  // volatile run. 8 keeps recovery O(objects in scene) for continuous tracks;
  // raise it for scenes with long occlusions (parked-then-moving vehicles).
  common::FrameIndex reuse_evict_gap_frames = 8;

  // --- Sharded intra-stream clustering (src/cluster/sharded_clusterer.h) ---
  // Clustering shards for this stream: 1 runs the plain sequential
  // IncrementalClusterer path; >1 partitions detections by object id onto
  // per-shard clusterer+store instances driven by a worker pool, with
  // periodic cross-shard centroid merges folding duplicate clusters into a
  // canonical table. (The sharded machinery itself also reproduces the
  // sequential path's output exactly when run with one shard; see
  // RunIngestClassifiedSharded.)
  int num_shards = 1;
  // Detections dispatched per parallel batch on the sharded path.
  size_t shard_batch = 1024;
  // Assignments between periodic cross-shard centroid merges (0: merge only
  // when the stream finishes).
  int64_t shard_merge_interval = 8192;

  // --- Windowed streaming finalize (src/core/live_snapshot.h,
  //     docs/live_query.md) ---
  // > 0: every N sampled frames, run the cross-shard merge to convergence over
  // the window and publish an immutable, epoch-numbered canonical snapshot —
  // the cluster table (as top-K index entries), the index, and the frame
  // watermark — through snapshot_slot / snapshot_sink. Querying snapshot
  // epoch e is byte-identical to halting ingest at e's watermark (with these
  // same options) and finalizing the old one-shot way. On the sharded path
  // the cadence is part of the clustering semantics — the boundary merge
  // passes run whether or not a consumer is attached, so attaching one never
  // changes results. 0 (default) keeps the pre-windowed behaviour: a canonical
  // table only at end-of-stream.
  int64_t finalize_every_frames = 0;
  // RCU publication target for the snapshots (not owned; may be null).
  // runtime::IngestService wires one per live stream and serves it through
  // LatestSnapshot().
  SnapshotSlot* snapshot_slot = nullptr;
  // Optional observer invoked with every published snapshot (after the slot
  // swap, if any); tests and benches use it to capture each epoch. With
  // background_publish it runs on the builder thread.
  std::function<void(std::shared_ptr<const LiveSnapshot>)> snapshot_sink;
  // Background publication: index assembly and the slot swap move to one
  // dedicated builder thread (core::SnapshotBuilder) fed a self-contained cut
  // at each cadence boundary, so the ingest thread pays only the boundary
  // merge + dirty census (stats.cut_millis) instead of the whole publication.
  // The published snapshot sequence is byte-identical to synchronous mode —
  // the builder runs the same assembly code over the same cut bytes, in the
  // same order — and the epoch ≡ halt+finalize property is preserved; only
  // *when* a given epoch becomes visible shifts (bounded by the builder's
  // queue depth, and re-synchronized before every same-frame checkpoint).
  // Ignored when no consumer (slot or sink) is attached.
  bool background_publish = false;
  // Sharded path: replace the full O(active) cross-shard merge at every
  // cadence boundary with the incremental boundary pass
  // (cluster::ShardedClusterer::BoundaryMergePass — only clusters dirtied
  // since the previous boundary re-query, plus the neighbourhoods their moves
  // invalidated), and disable the mid-window periodic passes entirely (they
  // would break the epoch ≡ halt+finalize identity; shard_merge_interval is
  // ignored). The boundary pass restores the full-pass union-find closure at
  // every boundary, so snapshots remain byte-identical to halting and
  // finalizing — but mid-window merge *timing* differs from the default mode,
  // so the two modes are distinct clustering semantics and checkpoints refuse
  // to resume across them. No effect at num_shards == 1.
  bool incremental_boundary_merge = false;

  // --- Persistent ingest (src/storage/arena_file.h, docs/persistence.md) ---
  // Directory for this stream's durable clustering state. Empty (the default)
  // keeps ingest volatile; non-empty routes RunIngest through
  // RunIngestResumable: the centroid arenas live in mmap'd files, the
  // clusterer checkpoints every checkpoint_every_frames sampled frames, and a
  // restarted worker resumes from the last checkpoint instead of frame 0.
  std::string persist_dir;
  // Sampled frames between checkpoints on the persistent path. Smaller bounds
  // the re-processed window after a crash; larger amortizes the msync +
  // bookkeeping-snapshot cost over more stream.
  int64_t checkpoint_every_frames = 256;
  // Test/bench hook: abandon the persistent run after this many sampled
  // frames past the resume position (negative: disabled) — no finalize, no
  // final checkpoint, exactly like an ingest worker crash. The returned
  // result carries the partial counters only.
  int64_t crash_after_frames = -1;
  // Retry policy for checkpoint commits (including the end-of-stream seal) on
  // the persistent path: a transiently failing msync/rename is retried with
  // virtual-time backoff before the attempt is abandoned to the supervisor.
  common::RetryPolicy checkpoint_retry;
  // Fsync cadence of the durable state (threaded to ClustererOptions; see
  // storage/fsync_policy.h and docs/persistence.md). Defaults preserve the
  // original behavior: arena synced every checkpoint, undo log never.
  storage::FsyncOptions arena_fsync = storage::FsyncOptions::EveryCommit();
  storage::FsyncOptions undo_fsync = storage::FsyncOptions::Never();
};

// Runs ingest over |run| with |ingest_cnn| and parameters |params|. With
// options.persist_dir set this is RunIngestResumable. Crashes (FOCUS_CHECK) on
// any storage or stream-delivery failure; fault-tolerant callers (the
// supervised IngestService workers) use RunIngestChecked instead.
IngestResult RunIngest(const video::StreamRun& run, const cnn::Cnn& ingest_cnn,
                       const IngestParams& params, const IngestOptions& options = {});

// Fallible ingest: every failure mode — recovery errors, checkpoint commits
// that stay failed past options.checkpoint_retry, a stream whose delivery
// aborted mid-recording (SweepStats::aborted) — surfaces as a typed error
// instead of a crash. Retryable codes (see common::IsRetryable) mean a
// restarted worker resumes from the last checkpoint (persistent path) or from
// scratch (volatile path) and can converge to the no-fault result.
common::Result<IngestResult> RunIngestChecked(const video::StreamRun& run,
                                              const cnn::Cnn& ingest_cnn,
                                              const IngestParams& params,
                                              const IngestOptions& options = {});

// Fallible crash-resumable ingest (options.persist_dir must be set).
common::Result<IngestResult> RunIngestResumableChecked(const video::StreamRun& run,
                                                       const cnn::Cnn& ingest_cnn,
                                                       const IngestParams& params,
                                                       const IngestOptions& options);

// Crash-resumable ingest (options.persist_dir must be set). State beyond the
// mmap'd centroid arenas — counters, the pixel-differencing reuse maps, and
// the per-cluster class-rank table — checkpoints as an opaque blob alongside
// the clusterer's own snapshot, so a restarted worker continues from the last
// checkpoint with state identical to an uninterrupted run's at that frame:
// the final index, counters, and GPU accounting are byte-identical to running
// the whole stream without the crash (the re-processed window re-classifies
// deterministically — cnn::Cnn is a pure function of the detection). Runs the
// clustering stage through ShardedClusterer at any num_shards >= 1; with
// num_shards > 1 each frame's assignments dispatch through a WorkerPool (one
// ordered task per shard), so the persistent path scales within a stream like
// the volatile sharded path while producing the identical final index (the
// object-id partition fixes every shard's input subsequence regardless of
// thread interleaving).
IngestResult RunIngestResumable(const video::StreamRun& run, const cnn::Cnn& ingest_cnn,
                                const IngestParams& params, const IngestOptions& options);

// --- Classify-once / re-cluster-many ---
//
// The CNN outputs of ingest depend only on the model and K, not on the clustering
// threshold T. When several T values must be compared (the tuner's second selection
// step, or an operator retuning a live deployment), classifying once and replaying
// the stored outputs through clustering+indexing avoids re-running the cheap CNN —
// the only GPU-bearing stage.

// One detection's stored ingest-time CNN output.
struct ClassifiedDetection {
  video::Detection detection;
  cnn::TopKResult topk;
  common::FeatureVec feature;
  bool reused = false;  // Pixel-diff path: outputs copied from the previous frame.
};

struct ClassifiedSample {
  std::vector<ClassifiedDetection> detections;  // In sweep (frame) order.
  int k = 0;                                    // Top-K width of the stored outputs.
  common::GpuMillis gpu_millis = 0.0;           // Cheap-CNN GPU time.
  int64_t cnn_invocations = 0;
  int64_t suppressed = 0;
  // Recording rate of the classified stream (stamped onto published snapshots
  // for time-range planning).
  double fps = 30.0;
  // True when the sweep stopped early (FlakyStreamRun mid-stream restart): the
  // sample covers a prefix of the recording only. Checked callers treat this
  // as a retryable failure rather than silently indexing the prefix.
  bool delivery_aborted = false;
};

// Runs the classification stage only (IT1 + pixel differencing) over |run|.
ClassifiedSample ClassifySample(const video::StreamRun& run, const cnn::Cnn& ingest_cnn,
                                int k, const IngestOptions& options = {});

// Runs clustering + indexing (IT2-IT4) over stored outputs. |params.k| must not
// exceed |sample.k|. Produces the same IngestResult as RunIngest with the same
// parameters (GPU cost comes from the stored classification pass).
//
// |scratch| optionally supplies a clusterer to (re)use: it is Reset() with this
// run's options, so a tuner sweeping a parameter grid over the same sample
// reuses the centroid arena and per-cluster allocations across re-runs instead
// of re-growing them from empty on every configuration. With
// |options.num_shards| > 1 the clustering stage runs sharded on a worker pool
// (|scratch| does not apply there; |pool| does — see below).
//
// |pool| optionally supplies the worker pool the sharded route dispatches on,
// so a caller re-running many configurations (the tuner's grid sweep) pays
// thread spawn/join once instead of per run. Null builds a pool per call; the
// pool must have >= 1 worker and be dedicated to this call for its duration
// (the sharded clusterer Drain()s it to synchronize). Ignored at num_shards = 1.
IngestResult RunIngestClassified(const ClassifiedSample& sample, const IngestParams& params,
                                 const IngestOptions& options = {},
                                 cluster::IncrementalClusterer* scratch = nullptr,
                                 runtime::WorkerPool* pool = nullptr);

// The sharded clustering + indexing stage behind RunIngestClassified's
// |options.num_shards| > 1 route, callable directly at any shard count >= 1 —
// tests and benches use it at one shard to check the sharded machinery
// (AssignBatch dispatch, canonical-id mapping, merge passes) reproduces the
// sequential path's output exactly. |pool| as in RunIngestClassified: a
// caller-supplied reusable worker pool, or null for a per-call one.
IngestResult RunIngestClassifiedSharded(const ClassifiedSample& sample,
                                        const IngestParams& params,
                                        const IngestOptions& options = {},
                                        runtime::WorkerPool* pool = nullptr);

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_INGEST_PIPELINE_H_
