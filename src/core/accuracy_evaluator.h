// Segment-level precision/recall evaluation (§6.1 "Accuracy Target").
//
// Ground truth: a class is present in a one-second segment when the GT-CNN reports it
// in >= 50% of the segment's frames (cnn::SegmentGroundTruth). A query result claims
// a segment under the same 50% rule applied to its returned frames. Precision =
// claimed-and-true / claimed; recall = claimed-and-true / true.
#ifndef FOCUS_SRC_CORE_ACCURACY_EVALUATOR_H_
#define FOCUS_SRC_CORE_ACCURACY_EVALUATOR_H_

#include <set>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/core/query_engine.h"

namespace focus::core {

struct PrecisionRecall {
  double precision = 1.0;
  double recall = 1.0;
  int64_t claimed_segments = 0;
  int64_t truth_segments = 0;
  int64_t correct_segments = 0;
};

class AccuracyEvaluator {
 public:
  // |truth| must outlive the evaluator; |fps| is the evaluated stream's frame rate.
  AccuracyEvaluator(const cnn::SegmentGroundTruth* truth, double fps);

  // Segments claimed by |result| under the 50%-of-frames rule.
  std::set<common::SegmentId> ClaimedSegments(const QueryResult& result) const;

  PrecisionRecall Evaluate(common::ClassId cls, const QueryResult& result) const;

  // Average P/R over several classes (how the paper reports per-stream accuracy:
  // dominant classes averaged, §6.1 "Metrics").
  PrecisionRecall EvaluateClasses(const std::vector<common::ClassId>& classes,
                                  const std::vector<QueryResult>& results) const;

 private:
  const cnn::SegmentGroundTruth* truth_;
  int64_t frames_per_segment_;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_ACCURACY_EVALUATOR_H_
