#include "src/video/stream_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/hashing.h"

namespace focus::video {

namespace {

// Scale of the per-object instance offset from the class archetype (expected L2
// displacement): two distinct objects of one class sit ~sqrt(2)*0.75 = 1.06 apart,
// comparable to the archetype separation of confusable classes. Real CNN feature
// manifolds are broad this way — which is why the paper's clusters hold one object's
// track (or a fragment of it) rather than an entire class, and why query latency is
// proportional to the number of track fragments, not classes.
constexpr double kInstanceOffsetScale = 0.75;

// Fraction of objects that are visually ambiguous between their class and a
// confusable same-group class (a van that reads as a truck). Their appearance is the
// midpoint of the two archetypes, so loose clustering thresholds merge them into
// wrong-class clusters — the precision pressure that bounds T in §4.2/§4.4.
constexpr double kAmbiguousFraction = 0.12;

// Appearance-walk scaling across sampling rates: pose change between samples grows
// sublinearly with the gap (it saturates — identity features persist), so the
// per-sampled-frame step is walk * (native_fps/fps)^kWalkGapExponent, capped.
constexpr double kWalkGapExponent = 0.3;
constexpr double kMaxWalkStep = 0.30;

// Hour of virtual day at which every recording starts. Chosen so that short runs are
// daytime-busy and 12-hour runs span the evening activity falloff, like the paper's
// "evenly cover day time and night time" setting.
constexpr double kRunStartHour = 10.0;

// Number of classes shared by every stream regardless of domain (people, cars, and
// other ubiquitous objects appear everywhere), keeping cross-stream Jaccard indexes
// in the ballpark the paper reports (~0.46).
constexpr int kUniversalClassCount = 60;

// Preferred semantic groups per stream domain; the domain pool is drawn from these.
std::vector<SemanticGroup> PreferredGroups(StreamType type) {
  switch (type) {
    case StreamType::kTraffic:
      return {SemanticGroup::kVehicle, SemanticGroup::kPerson, SemanticGroup::kSign};
    case StreamType::kSurveillance:
      return {SemanticGroup::kPerson, SemanticGroup::kBag, SemanticGroup::kClothing,
              SemanticGroup::kAnimal};
    case StreamType::kNews:
      return {SemanticGroup::kPerson, SemanticGroup::kElectronics, SemanticGroup::kClothing,
              SemanticGroup::kMisc};
  }
  return {SemanticGroup::kMisc};
}

// Deterministically samples |count| distinct elements from |universe| (order of picks
// is the popularity order).
std::vector<common::ClassId> SampleWithoutReplacement(std::vector<common::ClassId> universe,
                                                      size_t count, common::Pcg32& rng) {
  count = std::min(count, universe.size());
  // Partial Fisher-Yates.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + rng.NextBounded(static_cast<uint32_t>(universe.size() - i));
    std::swap(universe[i], universe[j]);
  }
  universe.resize(count);
  return universe;
}

}  // namespace

StreamRun::StreamRun(const ClassCatalog* catalog, StreamProfile profile, double duration_sec,
                     double fps, uint64_t seed)
    : catalog_(catalog),
      profile_(std::move(profile)),
      duration_sec_(duration_sec),
      fps_(fps),
      seed_(seed),
      class_rank_dist_(1, 1.0) {
  assert(catalog_ != nullptr);
  assert(duration_sec_ > 0.0);
  assert(fps_ > 0.0);

  // --- Compose the stream's class list, most popular first. ---
  const uint64_t world = catalog_->world_seed();
  size_t n = static_cast<size_t>(std::max(1, profile_.num_classes_present));

  // Universal core: identical across all streams with the same world seed.
  common::Pcg32 universal_rng(common::DeriveSeed(world, common::HashString("universal-classes")));
  std::vector<common::ClassId> all_classes(kNumClasses);
  for (common::ClassId c = 0; c < kNumClasses; ++c) {
    all_classes[static_cast<size_t>(c)] = c;
  }
  std::vector<common::ClassId> universal =
      SampleWithoutReplacement(all_classes, kUniversalClassCount, universal_rng);

  // Domain pool: shared by streams of the same type.
  std::vector<common::ClassId> domain_universe;
  for (SemanticGroup g : PreferredGroups(profile_.type)) {
    const auto& members = catalog_->ClassesInGroup(g);
    domain_universe.insert(domain_universe.end(), members.begin(), members.end());
  }
  common::Pcg32 domain_rng(
      common::DeriveSeed(world, common::HashCombine(common::HashString("domain-pool"),
                                                    static_cast<uint64_t>(profile_.type))));
  std::vector<common::ClassId> domain_pool =
      SampleWithoutReplacement(domain_universe, 180, domain_rng);

  common::Pcg32 stream_rng(common::DeriveSeed(seed_, common::HashString("class-mix")));
  std::vector<bool> taken(kNumClasses, false);
  std::vector<common::ClassId> ordered;
  ordered.reserve(n);
  auto take = [&](common::ClassId c) {
    if (!taken[static_cast<size_t>(c)] && ordered.size() < n) {
      taken[static_cast<size_t>(c)] = true;
      ordered.push_back(c);
    }
  };

  // Popular end: walk the *canonical* universal and domain orders (shared across
  // streams of the same world/domain), interleaved, occasionally skipping an entry.
  // Streams of the same domain therefore agree on most of their popular classes,
  // which is what yields the paper's ~0.46 cross-stream Jaccard index, while the
  // random skips and the stream-specific tail keep streams distinct.
  size_t domain_take = static_cast<size_t>(static_cast<double>(n) * profile_.domain_class_affinity);
  size_t ui = 0;
  size_t di = 0;
  size_t domain_taken = 0;
  while (ordered.size() < n && (ui < universal.size() || domain_taken < domain_take)) {
    bool pick_universal = ui < universal.size() &&
                          (stream_rng.NextBool(0.35) || domain_taken >= domain_take ||
                           di >= domain_pool.size());
    if (pick_universal) {
      take(universal[ui++]);
    } else if (di < domain_pool.size()) {
      if (stream_rng.NextBool(0.8)) {  // Keep most of the canonical domain order.
        take(domain_pool[di]);
        ++domain_taken;
      }
      ++di;
    } else {
      break;
    }
  }
  while (ordered.size() < n) {
    take(static_cast<common::ClassId>(stream_rng.NextBounded(kNumClasses)));
  }

  present_classes_ = ordered;
  std::sort(present_classes_.begin(), present_classes_.end());
  ordered_classes_ = std::move(ordered);

  class_rank_dist_ = common::ZipfDistribution(ordered_classes_.size(), profile_.zipf_exponent);

  GenerateObjects();
}

double StreamRun::ActivityAt(double t_sec) const {
  double hour = std::fmod(kRunStartHour + t_sec / 3600.0, 24.0);
  // Smooth diurnal curve: full activity mid-day, |night_activity_fraction| at night.
  double daylight = 0.5 * (1.0 - std::cos(2.0 * M_PI * (hour - 3.0) / 24.0));
  daylight = daylight * daylight;  // Sharpen the night trough.
  return profile_.night_activity_fraction +
         (1.0 - profile_.night_activity_fraction) * daylight;
}

common::FeatureVec StreamRun::InitialAppearance(const TrackedObject& object) const {
  common::Pcg32 rng(object.appearance_seed);
  if (object.ambiguous && object.confused_with != common::kInvalidClass) {
    common::FeatureVec mid = catalog_->Archetype(object.true_class);
    common::AddInPlace(mid, catalog_->Archetype(object.confused_with));
    common::ScaleInPlace(mid, 0.5);
    common::NormalizeInPlace(mid);
    return common::PerturbedUnitVector(mid, kInstanceOffsetScale * 0.5, rng);
  }
  return common::PerturbedUnitVector(catalog_->Archetype(object.true_class),
                                     kInstanceOffsetScale, rng);
}

void StreamRun::GenerateObjects() {
  common::ObjectId next_id = 0;
  int64_t seconds = static_cast<int64_t>(std::ceil(duration_sec_));
  for (int64_t s = 0; s < seconds; ++s) {
    common::Pcg32 rng(common::DeriveSeed(seed_, common::HashCombine(0x5EC01D, static_cast<uint64_t>(s))));
    double rate = profile_.peak_arrival_rate_per_sec * ActivityAt(static_cast<double>(s));
    uint32_t arrivals = rng.NextPoisson(rate);
    for (uint32_t a = 0; a < arrivals; ++a) {
      TrackedObject obj;
      obj.id = next_id++;
      size_t rank = class_rank_dist_.Sample(rng);
      obj.true_class = ordered_classes_[rank];
      obj.enter_sec = static_cast<double>(s) + rng.NextDouble();
      if (obj.enter_sec >= duration_sec_) {
        continue;
      }
      double log_mean = std::log(profile_.mean_dwell_sec) - 0.5 * profile_.dwell_sigma * profile_.dwell_sigma;
      obj.dwell_sec = std::exp(rng.NextGaussian(log_mean, profile_.dwell_sigma));
      obj.dwell_sec = std::clamp(obj.dwell_sec, 0.5, 600.0);
      obj.stationary = rng.NextBool(profile_.stationary_fraction);
      obj.size_px = static_cast<float>(std::max(
          4.0, rng.NextGaussian(profile_.mean_object_px, profile_.mean_object_px * 0.3)));
      // Enter from a frame edge, cross with a roughly constant velocity.
      double speed = rng.NextDouble(5.0, 40.0);
      double angle = rng.NextDouble(0.0, 2.0 * M_PI);
      obj.vx = obj.stationary ? 0.0f : static_cast<float>(speed * std::cos(angle));
      obj.vy = obj.stationary ? 0.0f : static_cast<float>(speed * std::sin(angle));
      obj.x0 = static_cast<float>(rng.NextDouble(0.0, profile_.frame_width - obj.size_px));
      obj.y0 = static_cast<float>(rng.NextDouble(0.0, profile_.frame_height - obj.size_px));
      obj.appearance_seed = common::DeriveSeed(seed_, common::HashCombine(0x0B1EC7, static_cast<uint64_t>(obj.id)));
      if (rng.NextBool(kAmbiguousFraction)) {
        const auto& group_mates =
            catalog_->ClassesInGroup(catalog_->Group(obj.true_class));
        if (group_mates.size() > 1) {
          common::ClassId other = obj.true_class;
          while (other == obj.true_class) {
            other = group_mates[rng.NextBounded(static_cast<uint32_t>(group_mates.size()))];
          }
          obj.ambiguous = true;
          obj.confused_with = other;
        }
      }
      objects_.push_back(obj);
    }
  }
}

SweepStats StreamRun::ForEachFrame(const FrameCallback& callback) const {
  SweepStats stats;
  const double dt = 1.0 / fps_;
  const common::FrameIndex total_frames = num_frames();
  // Appearance walk scaling: the walk step in the profile is calibrated at the native
  // fps; sampling every k-th frame accumulates k independent steps (Brownian scaling).
  const double walk_step =
      std::min(kMaxWalkStep, profile_.appearance_walk_step *
                                 std::pow(profile_.native_fps / fps_, kWalkGapExponent));
  // Pixel differencing succeeds less often when sampled frames are farther apart.
  const double suppression_prob =
      profile_.pixel_diff_suppression * std::sqrt(fps_ / profile_.native_fps);

  struct ActiveObject {
    const TrackedObject* obj;
    common::FeatureVec walk;  // Current true appearance (pre-jitter).
    common::Pcg32 rng;
    bool first = true;
  };
  std::vector<ActiveObject> active;
  size_t next_obj = 0;
  std::vector<Detection> detections;

  for (common::FrameIndex f = 0; f < total_frames; ++f) {
    double t = static_cast<double>(f) * dt;
    // Admit newly arrived objects (skip stationary ones entirely: background
    // subtraction never reports them, per §2.2.1).
    while (next_obj < objects_.size() && objects_[next_obj].enter_sec <= t) {
      const TrackedObject& obj = objects_[next_obj];
      ++next_obj;
      if (obj.stationary || obj.exit_sec() <= t) {
        continue;
      }
      ActiveObject a{&obj, InitialAppearance(obj), common::Pcg32(obj.appearance_seed, 0x0B5E7),
                     true};
      active.push_back(std::move(a));
      ++stats.num_objects;
    }
    // Retire departed objects.
    std::erase_if(active, [t](const ActiveObject& a) { return a.obj->exit_sec() <= t; });

    detections.clear();
    for (ActiveObject& a : active) {
      const TrackedObject& obj = *a.obj;
      Detection d;
      d.frame = f;
      d.object_id = obj.id;
      d.true_class = obj.true_class;
      d.first_observation = a.first;
      // Advance the appearance random walk (not on the first observation).
      if (!a.first) {
        common::AddIsotropicNoise(a.walk, walk_step, a.rng);
        common::NormalizeInPlace(a.walk);
      }
      // Observed appearance = walk state + per-frame jitter.
      d.appearance = a.walk;
      common::AddIsotropicNoise(d.appearance, profile_.frame_jitter, a.rng);
      common::NormalizeInPlace(d.appearance);
      d.pixel_diff_suppressed = !a.first && a.rng.NextBool(suppression_prob);
      double et = t - obj.enter_sec;
      d.bbox.x = static_cast<float>(std::fmod(std::abs(obj.x0 + obj.vx * et),
                                              std::max(1.0f, profile_.frame_width - obj.size_px)));
      d.bbox.y = static_cast<float>(std::fmod(std::abs(obj.y0 + obj.vy * et),
                                              std::max(1.0f, profile_.frame_height - obj.size_px)));
      d.bbox.w = obj.size_px;
      d.bbox.h = obj.size_px;
      a.first = false;
      if (d.pixel_diff_suppressed) {
        ++stats.suppressed_detections;
      }
      detections.push_back(std::move(d));
    }
    ++stats.total_frames;
    if (!detections.empty()) {
      ++stats.frames_with_moving_objects;
    }
    stats.total_detections += static_cast<int64_t>(detections.size());
    callback(f, detections);
  }
  return stats;
}

}  // namespace focus::video
