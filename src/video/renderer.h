// Renders synthetic frames (pixels) for a StreamRun.
//
// The renderer exists so that the vision substrate (background subtraction, blob
// extraction, pixel differencing) runs on real pixel data, exactly as OpenCV does in
// the paper's pipeline. Each frame is the stream's static background plus slow
// illumination drift and sensor noise, with every active object drawn as a textured
// patch at its trajectory position. Stationary objects are painted too (they are part
// of the background as far as motion detection is concerned).
#ifndef FOCUS_SRC_VIDEO_RENDERER_H_
#define FOCUS_SRC_VIDEO_RENDERER_H_

#include <vector>

#include "src/video/frame.h"
#include "src/video/stream_generator.h"

namespace focus::video {

class Renderer {
 public:
  explicit Renderer(const StreamRun* run);

  // Renders the frame at index |frame| (at the run's fps).
  FrameBuffer Render(common::FrameIndex frame) const;

  // The ground-truth boxes of moving objects in the frame, for validating the vision
  // substrate against the generator.
  std::vector<BBox> MovingObjectBoxes(common::FrameIndex frame) const;

 private:
  void PaintObject(FrameBuffer& fb, const TrackedObject& obj, double t) const;

  const StreamRun* run_;
  FrameBuffer background_;
};

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_RENDERER_H_
