// Synthetic video stream generator.
//
// Generates a deterministic "recording" of a camera described by a StreamProfile:
// objects arrive as a time-inhomogeneous Poisson process (day/night modulated), carry
// a class drawn from the stream's Zipfian class mix, dwell in frame for a log-normal
// duration, move along simple trajectories, and evolve their appearance vector as a
// random walk (pose/scale change). The generator exposes the *moving-object
// detections* per frame — exactly what background subtraction extracts from pixels —
// plus enough ground truth for the evaluation harness.
//
// Prefix stability: a run of duration D and a run of duration D' > D over the same
// (profile, seed) produce identical detections for the first D seconds. The parameter
// tuner relies on this to tune on a sample window of the stream.
#ifndef FOCUS_SRC_VIDEO_STREAM_GENERATOR_H_
#define FOCUS_SRC_VIDEO_STREAM_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_types.h"
#include "src/common/zipf.h"
#include "src/video/class_catalog.h"
#include "src/video/detection.h"
#include "src/video/stream_profile.h"

namespace focus::video {

// One object's lifetime in the recording.
struct TrackedObject {
  common::ObjectId id = 0;
  common::ClassId true_class = common::kInvalidClass;
  double enter_sec = 0.0;
  double dwell_sec = 0.0;
  bool stationary = false;
  // Visually ambiguous instance: its appearance sits midway between its own class and
  // a confusable same-group class (|confused_with|). These are the objects that make
  // large clustering thresholds lose precision (§4.2) and make the GT-CNN flicker.
  bool ambiguous = false;
  common::ClassId confused_with = common::kInvalidClass;
  // Entry position and velocity (pixels/sec) of the bounding-box top-left corner.
  float x0 = 0.0f, y0 = 0.0f;
  float vx = 0.0f, vy = 0.0f;
  float size_px = 14.0f;
  uint64_t appearance_seed = 0;

  double exit_sec() const { return enter_sec + dwell_sec; }
};

// Per-frame sweep statistics, accumulated over a full run.
struct SweepStats {
  int64_t total_frames = 0;
  int64_t frames_with_moving_objects = 0;
  int64_t total_detections = 0;
  int64_t suppressed_detections = 0;  // Pixel-diff suppressed.
  int64_t num_objects = 0;            // Distinct moving tracks observed.
  // True when delivery stopped before the end of the recording (a FlakyStreamRun
  // mid-stream restart). Consumers treat an aborted sweep as a retryable failure.
  bool aborted = false;
};

class StreamRun {
 public:
  // |catalog| must outlive the run. |fps| must divide into the native fps sensibly
  // (30, 10, 5, 1 are the rates the paper evaluates). |seed| determines all content.
  StreamRun(const ClassCatalog* catalog, StreamProfile profile, double duration_sec, double fps,
            uint64_t seed);
  StreamRun(const StreamRun&) = default;
  StreamRun& operator=(const StreamRun&) = default;
  virtual ~StreamRun() = default;

  // Invokes |callback| once per sampled frame, in order, with the moving-object
  // detections of that frame. Returns aggregate sweep statistics. Virtual so
  // fault decorators (FlakyStreamRun) and test scripts can reshape delivery
  // without the consumers knowing.
  using FrameCallback =
      std::function<void(common::FrameIndex frame, const std::vector<Detection>& detections)>;
  virtual SweepStats ForEachFrame(const FrameCallback& callback) const;

  // The stream's class list (the only classes that ever occur), sorted ascending.
  const std::vector<common::ClassId>& present_classes() const { return present_classes_; }

  // The same classes in decreasing popularity order (rank 0 = most frequent). Exposed
  // for tests and dataset statistics; system code must estimate popularity itself.
  const std::vector<common::ClassId>& classes_by_popularity() const { return ordered_classes_; }

  // All generated object tracks, ordered by arrival time. Moving and stationary.
  const std::vector<TrackedObject>& objects() const { return objects_; }

  const StreamProfile& profile() const { return profile_; }
  const ClassCatalog& catalog() const { return *catalog_; }
  double duration_sec() const { return duration_sec_; }
  double fps() const { return fps_; }
  uint64_t seed() const { return seed_; }
  common::FrameIndex num_frames() const {
    return static_cast<common::FrameIndex>(duration_sec_ * fps_);
  }

  // Arrival-rate multiplier at a given time of day (diurnal cycle). Exposed for tests.
  double ActivityAt(double t_sec) const;

  // The true appearance vector of an object at its first observation (archetype +
  // instance offset, before any walk). Exposed for tests and the vision substrate.
  common::FeatureVec InitialAppearance(const TrackedObject& object) const;

 private:
  void GenerateObjects();

  const ClassCatalog* catalog_;
  StreamProfile profile_;
  double duration_sec_;
  double fps_;
  uint64_t seed_;

  std::vector<common::ClassId> present_classes_;
  std::vector<common::ClassId> ordered_classes_;
  common::ZipfDistribution class_rank_dist_;
  std::vector<TrackedObject> objects_;
};

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_STREAM_GENERATOR_H_
