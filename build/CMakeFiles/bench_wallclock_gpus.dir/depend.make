# Empty dependencies file for bench_wallclock_gpus.
# This may be replaced when dependencies are built.
