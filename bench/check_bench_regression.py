#!/usr/bin/env python3
"""Compares fresh BENCH_*.json files against the tracked baselines.

Usage: check_bench_regression.py <fresh_dir> <baseline_dir> [tolerance]

Guardrail rows, matched per config:
  BENCH_cluster_assign.json  configs[].speedup            (higher is better)
  BENCH_query_batch.json     scenarios[].gpu_millis       (lower is better)
  BENCH_sharded_ingest.json  configs[].shards[].speedup   (exact mode only)
  BENCH_arena_resume.json    resume[].gpu_ratio           (higher is better)
  BENCH_live_query.json      live_query[].publish_overhead (lower is better)
  BENCH_chaos.json           overhead[].wrapped_over_direct (lower is better)
  BENCH_fleet_serving.json   fleets[].saving               (higher is better)
  BENCH_shm_serving.json     shm_serving[].shm_over_inproc (lower is better)
  BENCH_proc_serving.json    proc_serving[].supervised_over_direct (lower is better)

sharded_ingest's fast-mode rows sit at parity by design (the per-object cache
absorbs the scan the shards would parallelize) and their sub-2us timings swing
far past any sane tolerance, so only the exact-mode rows — the ones carrying
the tracked scan-bound speedup claim — are gated.

arena_resume's wall-clock speedup is reported in the JSON but not gated: the
resume side is a couple of milliseconds, where VM scheduler/writeback jitter
exceeds the tolerance; gpu_ratio is its deterministic guardrail (virtual
GPU-ms replay must re-pay vs the checkpoint window's).

Exits non-zero when any guardrail regresses by more than the tolerance
(default 15%), so the perf trajectory recorded under bench/results/ is
enforceable: `bench/run_benches.sh --check` after `--target bench`.
Identical-output flags are also re-checked — a bench whose `identical` went
false is a correctness regression, not a perf one, and always fails.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def rows(doc, section):
    if not doc:
        return []
    if section == "configs+shards":
        # BENCH_sharded_ingest nests per-shard rows under each workload config;
        # flatten so (mode, dim, active, num_shards) identifies a guardrail row.
        flat = []
        for config in doc.get("configs", []):
            for shard_row in config.get("shards", []):
                merged = {k: v for k, v in config.items() if k != "shards"}
                merged.update(shard_row)
                flat.append(merged)
        return flat
    return doc.get(section, [])


def key_of(row, fields):
    return tuple(row.get(f) for f in fields)


def check(name, fresh_rows, base_rows, key_fields, metric, higher_is_better, tol, failures,
          row_filter=None):
    base_by_key = {key_of(r, key_fields): r for r in base_rows}
    for row in fresh_rows:
        key = key_of(row, key_fields)
        # Correctness first, independent of baseline presence AND of the
        # row filter: a fresh row whose `identical` flag went false must fail
        # even if the config is new, its key fields changed, or its perf
        # metric is not gated.
        if row.get("identical") is False:
            failures.append(f"{name} {key}: identical=false (correctness regression)")
            continue
        if row_filter is not None and not row_filter(row):
            continue
        base = base_by_key.get(key)
        if base is None or metric not in base or metric not in row:
            continue
        fresh_v, base_v = row[metric], base[metric]
        if base_v <= 0:
            continue
        ratio = fresh_v / base_v
        regressed = ratio < (1 - tol) if higher_is_better else ratio > (1 + tol)
        direction = "fell" if higher_is_better else "rose"
        if regressed:
            failures.append(
                f"{name} {key}: {metric} {direction} {base_v:.3f} -> {fresh_v:.3f} "
                f"({100 * abs(ratio - 1):.1f}% past the {100 * tol:.0f}% guardrail)"
            )


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    fresh_dir, base_dir = sys.argv[1], sys.argv[2]
    tol = float(sys.argv[3]) if len(sys.argv) > 3 else 0.15

    failures = []
    checked = 0

    pairs = [
        ("BENCH_cluster_assign.json", "configs", ["dim", "active", "unit_norm"], "speedup", True,
         None),
        ("BENCH_query_batch.json", "scenarios", ["concurrency", "batch_size", "duplicates"],
         "gpu_millis", False, None),
        ("BENCH_sharded_ingest.json", "configs+shards", ["mode", "dim", "active", "num_shards"],
         "speedup", True, lambda row: row.get("mode") == "exact"),
        ("BENCH_arena_resume.json", "resume", ["crash_fraction", "num_shards"], "gpu_ratio", True,
         None),
        # Snapshot-publication overhead: share of the cadenced ingest wall spent
        # building/publishing epoch snapshots (a ratio of CPU-bound times —
        # median of 3 reps in the bench). `background` distinguishes the
        # builder-thread rows (overhead = the ingest thread's cut + stall
        # share; the bench itself hard-fails those past 5%) from the sync rows
        # (overhead = whole publication). Only rows the bench marks `gated`
        # (full-length streams) are compared: the short rows sum sub-millisecond
        # publish times that swing with scheduler noise. `identical` rows —
        # snapshot vs halt-and-finalize — are gated unconditionally like every
        # bench's.
        ("BENCH_live_query.json", "live_query", ["num_shards", "stream_frames", "background"],
         "publish_overhead", False, lambda row: row.get("gated") is True),
        # No-fault overhead of the robustness machinery (docs/robustness.md):
        # wall ratio of the checked/supervised ingest path over the direct one
        # with no fault plan armed. Target < 1.05; the standard tolerance gates
        # it. `identical` (wrapped result byte-identical to direct) is gated
        # unconditionally like every bench's.
        ("BENCH_chaos.json", "overhead", ["path"], "wrapped_over_direct", False, None),
        # Fleet serving (docs/fleet_serving.md): GT-CNN GPU-time saving of the
        # packed cold-cache federated execution over the per-camera sequential
        # oracle. Deterministic (virtual GPU time), so the tolerance only
        # absorbs plan drift when the simulated world changes. `identical`
        # (packed/cached == sequential oracle, warm repeat pays zero) is gated
        # unconditionally like every bench's.
        ("BENCH_fleet_serving.json", "fleets", ["cameras"], "saving", True, None),
        # Shared-memory serving plane (docs/shm_serving.md): query wall through
        # the mapped ShmEpochView over the in-process snapshot query on the
        # same epoch. Only the `gated` (long-stream) row is compared — the
        # short row's sweep is fast enough for scheduler noise to swing the
        # ratio. The bench itself also hard-fails past 1.1x on the gated row,
        # and its `identical` flags (mapped result byte-identical to
        # in-process) are gated unconditionally like every bench's.
        ("BENCH_shm_serving.json", "shm_serving", ["duration_sec"], "shm_over_inproc", False,
         lambda row: row.get("gated") is True),
        # Supervised multi-process serving (docs/shm_serving.md): no-fault wall
        # of a query through SupervisedWorkerPool::Call over the raw
        # WorkerProcessPool RPC, same shm-query handler and deadline. The bench
        # itself hard-fails past 1.05x; the tolerance gates drift. `identical`
        # (both paths byte-identical to the parent's mapped answer, zero
        # supervision events) is gated unconditionally like every bench's.
        ("BENCH_proc_serving.json", "proc_serving", ["workers"], "supervised_over_direct", False,
         None),
    ]
    for filename, section, key_fields, metric, higher, row_filter in pairs:
        fresh = load(f"{fresh_dir}/{filename}")
        base = load(f"{base_dir}/{filename}")
        if fresh is None:
            failures.append(f"{filename}: missing from {fresh_dir} (bench did not run?)")
            continue
        if base is None:
            print(f"note: no baseline {filename} in {base_dir}; skipping")
            continue
        check(filename, rows(fresh, section), rows(base, section), key_fields, metric, higher,
              tol, failures, row_filter)
        checked += 1

    if failures:
        print(f"FAIL: {len(failures)} guardrail regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"OK: {checked} bench file(s) within the {100 * tol:.0f}% guardrail")
    return 0


if __name__ == "__main__":
    sys.exit(main())
