// Binary encoding primitives for on-disk formats.
//
// Little-endian fixed-width integers, LEB128 varints, length-prefixed strings and
// doubles, plus a running CRC32 for integrity. All storage formats in this directory
// (index snapshots, record logs, vault manifests) are built from these primitives so
// their byte layout is explicit and testable independent of the structures above.
//
// Decoding never trusts the input: every read checks remaining bytes and returns
// false on truncation or malformed varints, leaving the reader usable for error
// reporting (offset of the failure).
#ifndef FOCUS_SRC_STORAGE_SERIALIZER_H_
#define FOCUS_SRC_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace focus::storage {

// CRC32 (IEEE polynomial, reflected) of |data|; |seed| chains incremental updates.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v);
  void PutU32(uint32_t v);   // Little-endian fixed width.
  void PutU64(uint64_t v);   // Little-endian fixed width.
  void PutVarint(uint64_t v);
  // ZigZag-encoded signed varint.
  void PutSignedVarint(int64_t v);
  void PutDouble(double v);  // IEEE-754 bits, little-endian.
  void PutFloat(float v);
  // Varint length prefix, then raw bytes.
  void PutString(std::string_view s);

  template <typename T, typename Fn>
  void PutVector(const std::vector<T>& items, Fn&& put_one) {
    PutVarint(items.size());
    for (const T& item : items) {
      put_one(*this, item);
    }
  }

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetVarint(uint64_t* v);
  bool GetSignedVarint(int64_t* v);
  bool GetDouble(double* v);
  bool GetFloat(float* v);
  bool GetString(std::string* s);

  template <typename T, typename Fn>
  bool GetVector(std::vector<T>* items, Fn&& get_one) {
    uint64_t count = 0;
    if (!GetVarint(&count)) {
      return false;
    }
    // Reject absurd counts before reserving (a corrupt length must not OOM us). Each
    // element costs at least one byte on the wire.
    if (count > remaining()) {
      return false;
    }
    items->clear();
    items->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      T item{};
      if (!get_one(*this, &item)) {
        return false;
      }
      items->push_back(std::move(item));
    }
    return true;
  }

  // Advances past |n| bytes without reading them; false on truncation.
  bool Skip(size_t n) {
    if (remaining() < n) {
      return false;
    }
    offset_ += n;
    return true;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return bytes_.size() - offset_; }
  bool Done() const { return offset_ == bytes_.size(); }

 private:
  bool Take(size_t n, const char** out);

  std::string_view bytes_;
  size_t offset_ = 0;
};

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_SERIALIZER_H_
