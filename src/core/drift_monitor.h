// Class-distribution drift monitoring and the periodic retraining loop (§4.3).
//
// "On each video stream Focus periodically obtains a small sample of video frames
// and classifies their objects using GT-CNN to estimate the ground truth of
// distribution of object classes ... Retraining is relatively infrequent and done
// once every few days." Between retrains, the specialized model's Ls classes can go
// stale: a construction site appears, winter empties a plaza, a channel changes its
// programming. Stale Ls classes hurt twice — recall drops for new popular classes
// (they fall into OTHER, where the index is coarse) and query latency rises for them
// (every OTHER cluster must be verified).
//
// DriftMonitor implements the detection half: it maintains the reference class
// distribution the current model was specialized for, ingests periodic GT-labelled
// probe samples (whose GPU cost it accounts), and reports drift as the total
// variation distance between reference and recent distributions plus the coverage
// the current Ls classes retain. RetrainController turns that signal into the §4.3
// loop: when drift crosses a threshold, re-estimate, re-specialize, and re-tune.
#ifndef FOCUS_SRC_CORE_DRIFT_MONITOR_H_
#define FOCUS_SRC_CORE_DRIFT_MONITOR_H_

#include <deque>
#include <map>
#include <vector>

#include "src/cnn/specialization.h"
#include "src/common/time_types.h"

namespace focus::core {

// One GT-labelled probe of recent stream content.
struct ProbeSample {
  std::map<common::ClassId, int64_t> objects_per_class;
  int64_t total_objects = 0;
  common::GpuMillis gpu_cost_millis = 0.0;
};

// Total variation distance between two (possibly unnormalized) class histograms:
// 0 = identical mixes, 1 = disjoint supports.
double TotalVariationDistance(const std::map<common::ClassId, int64_t>& a,
                              const std::map<common::ClassId, int64_t>& b);

struct DriftReport {
  // TV distance between the reference distribution and the pooled recent probes.
  double total_variation = 0.0;
  // Fraction of recently observed objects whose class is in the model's Ls set.
  double ls_coverage = 1.0;
  // Total probe objects the report is based on.
  int64_t recent_objects = 0;
  bool retrain_recommended = false;
};

struct DriftMonitorOptions {
  // Probes pooled into the "recent" distribution (sliding window).
  size_t window_probes = 4;
  // Drift thresholds: recommend retraining when TV distance exceeds
  // |max_total_variation| or the Ls set covers less than |min_ls_coverage| of
  // recent objects. Deliberately tolerant: probes are small samples, and two
  // windows of the *same* healthy stream easily differ by TV 0.2-0.3 (arrival
  // noise, diurnal mix shift); only a sustained, large shift should trigger the
  // expensive retrain.
  double max_total_variation = 0.45;
  double min_ls_coverage = 0.80;
  // Minimum pooled objects before a recommendation is made (avoids reacting to an
  // empty or near-empty probe).
  int64_t min_objects = 100;
};

class DriftMonitor {
 public:
  // |reference| is the distribution the current model was specialized on; |ls_classes|
  // the model's specialized class set.
  DriftMonitor(const cnn::ClassDistributionEstimate& reference,
               std::vector<common::ClassId> ls_classes, DriftMonitorOptions options = {});

  // Adds a probe and returns the updated report.
  DriftReport AddProbe(ProbeSample probe);

  // Report over the current window without adding anything.
  DriftReport Current() const;

  // Resets the reference after a retrain: the new model's distribution and Ls set.
  void Rebase(const cnn::ClassDistributionEstimate& reference,
              std::vector<common::ClassId> ls_classes);

  // Cumulative GPU time spent on probes since construction (charged to ingest).
  common::GpuMillis probe_gpu_millis() const { return probe_gpu_millis_; }

 private:
  std::map<common::ClassId, int64_t> reference_;
  std::vector<common::ClassId> ls_classes_;
  DriftMonitorOptions options_;
  std::deque<ProbeSample> window_;
  common::GpuMillis probe_gpu_millis_ = 0.0;
};

// Labels the window [begin_sec, end_sec) of |run| with |gt_cnn| at |frame_stride| to
// build a probe (the §4.3 "small sample of video frames").
ProbeSample ProbeStream(const video::StreamRun& run, const cnn::Cnn& gt_cnn, double begin_sec,
                        double end_sec, int frame_stride);

// The full periodic loop: probe on a schedule, retrain when the monitor says so.
//
// Owns a DriftMonitor plus the retraining recipe (Ls, architecture, stream
// variability). Callers advance virtual time with Tick(now_sec): the controller
// probes the recent window, and when drift is flagged it re-estimates the class
// distribution, re-specializes a model, and rebases the monitor. The caller then
// re-ingests with the returned model (indexing is outside the controller's scope —
// it produces models, not indexes).
struct RetrainControllerOptions {
  double probe_period_sec = 60.0;  // §4.3: "periodically obtains a small sample".
  double probe_window_sec = 30.0;  // Length of each probe window (ending at now).
  int probe_frame_stride = 10;
  // Cooldown after a retrain: the fresh model must observe at least this much
  // stream time before another retrain is allowed, so sampling noise right after a
  // rebase cannot thrash the deployment (§4.3: retraining is infrequent).
  double min_retrain_interval_sec = 240.0;
  cnn::SpecializationOptions specialization;
  DriftMonitorOptions monitor;
};

struct TickOutcome {
  bool probed = false;
  bool retrained = false;
  DriftReport report;
};

class RetrainController {
 public:
  // |run|, |catalog| and |gt_cnn| must outlive the controller. |initial| is the
  // distribution the current deployment was specialized on.
  RetrainController(const video::StreamRun* run, const video::ClassCatalog* catalog,
                    const cnn::Cnn* gt_cnn, const cnn::ClassDistributionEstimate& initial,
                    RetrainControllerOptions options = {});

  // Advances the loop to virtual time |now_sec|; probes at most once per call.
  TickOutcome Tick(double now_sec);

  // The model currently in force (initially from |initial|, replaced on retrain).
  const cnn::ModelDesc& current_model() const { return model_; }
  int64_t retrain_count() const { return retrain_count_; }

  // Total GPU time spent on probes and retraining samples (charged to ingest).
  common::GpuMillis maintenance_gpu_millis() const;

 private:
  const video::StreamRun* run_;
  const video::ClassCatalog* catalog_;
  const cnn::Cnn* gt_cnn_;
  RetrainControllerOptions options_;
  DriftMonitor monitor_;
  cnn::ModelDesc model_;
  double last_probe_sec_ = -1.0;
  double last_retrain_sec_ = -1.0;
  int64_t retrain_count_ = 0;
  common::GpuMillis retrain_gpu_millis_ = 0.0;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_DRIFT_MONITOR_H_
