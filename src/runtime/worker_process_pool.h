// Crash-isolated query workers: a pool of forked child processes, each serving
// length-framed request/response RPCs over a private socketpair.
//
// The shm epoch plane (src/shm/epoch_plane.h) makes snapshot data readable
// from any process; this pool supplies the processes. Each worker is a fork of
// the parent running a caller-provided handler loop, so a worker that
// crashes, leaks, or is SIGKILL'd takes down exactly one process: the parent
// sees a closed socket (kUnavailable) and the ingest process at most one stale
// pin, reclaimed on its next publish. Nothing here knows about queries — the
// handler is an opaque bytes -> bytes function, which keeps the pool reusable
// and the crash-isolation tests honest (they kill real processes).
//
// Protocol: u32 little-endian length prefix + payload, one in flight per
// worker (Call is synchronous). EOF on the parent side of the socket is the
// shutdown signal; the child answers requests until EOF, then _exit(0).
#ifndef FOCUS_SRC_RUNTIME_WORKER_PROCESS_POOL_H_
#define FOCUS_SRC_RUNTIME_WORKER_PROCESS_POOL_H_

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace focus::runtime {

class WorkerProcessPool {
 public:
  // Serves one request; runs inside the child process. Anything the handler
  // captures is a fork-time copy — workers share nothing with the parent
  // except what lives in shared memory.
  using Handler = std::function<std::string(const std::string&)>;

  WorkerProcessPool() = default;
  ~WorkerProcessPool();

  WorkerProcessPool(const WorkerProcessPool&) = delete;
  WorkerProcessPool& operator=(const WorkerProcessPool&) = delete;

  // Forks |num_workers| children, each looping |handler| over its socket.
  // kFailedPrecondition if already started.
  common::Result<std::monostate> Start(int num_workers, Handler handler);

  // Sends |request| to worker |index| and waits for its response.
  // kUnavailable when the worker is dead (crashed, killed, or never started) —
  // the caller decides whether to retry on a sibling.
  common::Result<std::string> Call(int index, const std::string& request);

  // Whether the worker process is still alive (waitpid WNOHANG).
  bool Alive(int index);

  // SIGKILLs the worker and reaps it — the crash the isolation tests inject.
  void Kill(int index);

  pid_t worker_pid(int index) const;
  int size() const { return static_cast<int>(workers_.size()); }

  // Closes every socket (children see EOF and _exit(0)) and reaps them.
  void Shutdown();

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;        // Parent's end of the socketpair.
    bool reaped = false;
  };

  std::vector<Worker> workers_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_WORKER_PROCESS_POOL_H_
