file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pixel_diff.dir/bench/bench_ablation_pixel_diff.cc.o"
  "CMakeFiles/bench_ablation_pixel_diff.dir/bench/bench_ablation_pixel_diff.cc.o.d"
  "bench_ablation_pixel_diff"
  "bench_ablation_pixel_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pixel_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
