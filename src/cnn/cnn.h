// Simulated CNN inference: ranked classifications and feature vectors.
//
// A Cnn binds a ModelDesc to a ClassCatalog and produces, for any Detection, the two
// outputs the paper's pipeline consumes: a ranked top-K class list with confidences
// (§4.1 "Top-K Ingest Index") and a penultimate-layer feature vector (§4.2). Outputs
// are deterministic in (model, object, frame): the same detection always classifies
// identically, and the same object is classified consistently across frames except
// for calibrated flicker. There are no weights; the error statistics come from
// src/cnn/accuracy_model.h.
//
// Confusions are structured, not uniform: when the model misranks the true class, the
// higher-ranked (wrong) classes are biased toward the true class's semantic group
// (a truck misread as a car, not as a flamingo), which is what makes the top-K sets
// of different objects overlap and gives queries realistic false-candidate loads.
#ifndef FOCUS_SRC_CNN_CNN_H_
#define FOCUS_SRC_CNN_CNN_H_

#include <span>
#include <utility>
#include <vector>

#include "src/cnn/accuracy_model.h"
#include "src/cnn/cost_model.h"
#include "src/cnn/model_desc.h"
#include "src/common/feature_vector.h"
#include "src/common/rng.h"
#include "src/video/class_catalog.h"
#include "src/video/detection.h"

namespace focus::cnn {

// One ranked classification result.
struct TopKResult {
  // Classes in decreasing confidence order, exactly k entries (or the full label
  // space if smaller). Confidences decay geometrically and sum to <= 1.
  std::vector<std::pair<common::ClassId, float>> entries;

  bool Contains(common::ClassId cls) const {
    for (const auto& [c, conf] : entries) {
      if (c == cls) {
        return true;
      }
    }
    return false;
  }

  // 1-based rank of |cls| in the result; 0 when absent.
  int RankOf(common::ClassId cls) const {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].first == cls) {
        return static_cast<int>(i) + 1;
      }
    }
    return 0;
  }

  common::ClassId Top1() const {
    return entries.empty() ? common::kInvalidClass : entries[0].first;
  }
};

class Cnn {
 public:
  Cnn(ModelDesc desc, const video::ClassCatalog* catalog);

  const ModelDesc& desc() const { return desc_; }
  const AccuracyParams& accuracy() const { return accuracy_; }
  common::GpuMillis inference_cost_millis() const { return cost_millis_; }

  // Classifies |detection|, returning the top |k| classes. Deterministic.
  TopKResult Classify(const video::Detection& detection, int k) const;

  // Classifies every detection of |detections| as one GPU batch, overwriting
  // |results| with one entry per input, in order. Outputs are identical to
  // per-element Classify(detection, k) — batching changes when and at what cost
  // the work runs (BatchCostMillis amortizes the launch overhead across the
  // batch), never what it computes. This is the execution primitive of the §5
  // plan/execute query path: QueryEngine::Plan emits centroid work items,
  // batches of them are classified here, QueryEngine::Resolve folds the
  // verdicts back into a QueryResult.
  void ClassifyBatch(std::span<const video::Detection> detections, int k,
                     std::vector<TopKResult>* results) const;
  // Gather form for callers whose detections are not contiguous (query plans
  // hold pointers into the index): classifies through the pointers, no copies.
  void ClassifyBatch(std::span<const video::Detection* const> detections, int k,
                     std::vector<TopKResult>* results) const;

  // GPU milliseconds to classify a |batch_size|-image batch in one launch.
  // Exactly inference_cost_millis() at batch_size = 1; cheaper than batch_size
  // separate launches above it (cost_model.h, kLaunchOverheadShare).
  common::GpuMillis BatchCostMillis(int64_t batch_size) const;

  // Batch-cost estimator and packing identity for this model (cost_model.h):
  // a fleet packer groups work by pack_key() — instances sharing a key have
  // the same architecture and may share a launch — and weighs candidate
  // launches with batch_cost_model() estimates.
  BatchCostModel batch_cost_model() const { return BatchCostModel::For(desc_); }
  ModelPackKey pack_key() const { return ModelPackKey::Of(desc_); }

  // Fast path: the top-1 class only (equivalent to Classify(detection, 1).Top1()).
  common::ClassId Top1(const video::Detection& detection) const;

  // The model's label for |detection|'s true class: the class itself when the model
  // knows it, kOtherClass for a specialized model seeing an out-of-set class, or a
  // deterministic confusable stand-in when a generic model lacks the class entirely
  // (cannot happen with the full generic space).
  common::ClassId MapTrueLabel(common::ClassId true_class) const;

  // Rank at which |detection|'s (mapped) true class appears in this model's full
  // ranked output. O(1); used by recall evaluation without building lists.
  int TrueClassRank(const video::Detection& detection) const;

  // Penultimate-layer feature vector for |detection| (unit norm). Deterministic.
  common::FeatureVec ExtractFeature(const video::Detection& detection) const;

  int label_space_size() const { return desc_.label_space_size(); }

 private:
  // Deterministic RNG for a given (object, draw-kind) pair.
  common::Pcg32 RngFor(const video::Detection& detection, uint64_t kind, bool per_frame) const;

  // Index of |cls| in the label space, or -1.
  int LabelIndex(common::ClassId cls) const;

  ModelDesc desc_;
  const video::ClassCatalog* catalog_;
  AccuracyParams accuracy_;
  common::GpuMillis cost_millis_;

  // Label space materialized (generic: 0..999; specialized: classes + OTHER).
  std::vector<common::ClassId> labels_;
  // For confusion sampling: labels grouped by semantic group of the underlying class
  // (OTHER belongs to no group).
  std::vector<std::vector<common::ClassId>> labels_by_group_;
  // Reverse map class -> index in labels_ (kNumClasses+1 entries).
  std::vector<int> label_index_;
};

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_CNN_H_
