// Recording catalog: what the deployment has on disk, per stream and per segment.
//
// The paper's setting is "videos from these cameras are continuously recorded" and
// queried after the fact; something must track which time ranges of which cameras are
// still retained, how much storage they use, and which index snapshot covers them.
// The vault is that catalog. Recordings are tracked as per-stream segment manifests
// (one entry per fixed-length chunk, as camera DVRs store them); actual pixel payload
// stays out of scope — the simulator regenerates frames — but sizes are accounted so
// retention policies are meaningful.
#ifndef FOCUS_SRC_STORAGE_VIDEO_VAULT_H_
#define FOCUS_SRC_STORAGE_VIDEO_VAULT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/time_types.h"

namespace focus::storage {

// One stored chunk of recording.
struct RecordingChunk {
  double begin_sec = 0.0;
  double end_sec = 0.0;
  int64_t size_bytes = 0;
  // Path (or object key) of the chunk payload; informational.
  std::string uri;

  double duration_sec() const { return end_sec - begin_sec; }
};

// Per-stream manifest: ordered, non-overlapping chunks plus the index snapshot that
// covers them.
struct StreamManifest {
  std::string stream_name;
  std::vector<RecordingChunk> chunks;  // Sorted by begin_sec.
  std::string index_snapshot_uri;      // Empty when not yet indexed.

  double RetainedSeconds() const;
  int64_t RetainedBytes() const;
  // Earliest retained instant; nullopt when empty.
  std::optional<double> OldestSec() const;
};

class VideoVault {
 public:
  VideoVault() = default;

  // Registers a chunk for |stream|. Chunks must be appended in time order and must
  // not overlap the previous chunk; violations return kInvalidArgument.
  common::Result<bool> AppendChunk(const std::string& stream, RecordingChunk chunk);

  // Associates the stream's current index snapshot.
  void SetIndexSnapshot(const std::string& stream, std::string uri);

  const StreamManifest* Find(const std::string& stream) const;
  std::vector<std::string> StreamNames() const;

  // Drops chunks that end at or before |horizon_sec| for every stream; returns the
  // number of chunks dropped. This is the retention sweep a DVR runs.
  int64_t TrimBefore(double horizon_sec);

  // Drops oldest chunks (across all streams) until total retained bytes fit
  // |budget_bytes|; returns chunks dropped. Ties break toward the lexicographically
  // smaller stream name so sweeps are deterministic.
  int64_t TrimToBudget(int64_t budget_bytes);

  int64_t TotalBytes() const;

  // Manifest persistence (versioned, checksummed blob).
  std::string EncodeManifest() const;
  common::Result<bool> DecodeManifest(const std::string& blob);

 private:
  std::map<std::string, StreamManifest> streams_;
};

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_VIDEO_VAULT_H_
