# Empty dependencies file for focus_lib.
# This may be replaced when dependencies are built.
