#include "src/storage/record_log.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>

#include "src/storage/serializer.h"
#include "src/storage/snapshot_store.h"

namespace focus::storage {

common::Result<RecordLogWriter> RecordLogWriter::Open(const std::string& path, bool truncate) {
  auto out = std::make_unique<std::ofstream>(
      path, truncate ? (std::ios::binary | std::ios::trunc) : (std::ios::binary | std::ios::app));
  if (!*out) {
    return common::Error{common::ErrorCode::kIo,
                         "record log open: " + path + ": " + std::strerror(errno)};
  }
  RecordLogWriter writer;
  writer.path_ = path;
  writer.out_ = std::move(out);
  return writer;
}

common::Result<bool> RecordLogWriter::Append(const std::string& payload) {
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  out_->write(frame.bytes().data(), static_cast<std::streamsize>(frame.size()));
  out_->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_->flush();
  if (!*out_) {
    return common::Error{common::ErrorCode::kIo, "record log append: " + path_};
  }
  ++records_written_;
  return true;
}

common::Result<RecordLogContents> ReadRecordLog(const std::string& path) {
  RecordLogContents contents;
  if (!FileExists(path)) {
    return contents;
  }
  auto blob = ReadFile(path);
  if (!blob.ok()) {
    return blob.error();
  }
  Decoder dec(*blob);
  while (!dec.Done()) {
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!dec.GetU32(&length) || !dec.GetU32(&crc) || length > dec.remaining()) {
      contents.truncated_tail = true;  // Torn frame header or short payload.
      break;
    }
    std::string payload(blob->data() + dec.offset(), length);
    if (Crc32(payload) != crc) {
      contents.truncated_tail = true;  // Torn payload write.
      break;
    }
    dec.Skip(length);  // Past the payload just validated.
    contents.records.push_back(std::move(payload));
  }
  return contents;
}

}  // namespace focus::storage
