// Figure 1: the ingest-cost vs query-latency trade-off space for a traffic video
// (auburn_c), comparing Focus-Opt-Ingest / Focus-Balance / Focus-Opt-Query against
// the Ingest-all and Query-all baselines. Each Focus point reports (I, Q): I = times
// cheaper than Ingest-all at ingest, Q = times faster than Query-all at query time.
// Paper checkpoints for auburn_c: Balance (86x, 56x), Opt-Ingest (141x, 46x),
// Opt-Query (26x, 63x); everything at >=95% precision and recall.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);

  bench::PrintHeader("Figure 1: Ingest cost vs query latency trade-off (auburn_c)");
  std::printf("Baselines: Ingest-all = (1x, inf), Query-all = (inf, 1x)\n\n");
  std::printf("%-18s %-14s %4s %5s  %14s %14s %8s %8s\n", "Setting", "Model", "K", "T",
              "IngestCheaper", "QueryFaster", "Prec", "Recall");

  const core::Policy policies[] = {core::Policy::kOptIngest, core::Policy::kBalance,
                                   core::Policy::kOptQuery};
  for (core::Policy policy : policies) {
    core::FocusOptions options;
    options.policy = policy;
    bench::StreamOutcome out = bench::RunFocusOnStream(catalog, "auburn_c", config, options);
    std::printf("Focus-%-12s %-14s %4d %5.2f  %13.1fx %13.1fx %7.3f %8.3f\n",
                core::PolicyName(policy), out.model.c_str(), out.k, out.threshold,
                out.ingest_cheaper_by, out.query_faster_by, out.precision, out.recall);
  }
  std::printf("\nPaper: Balance (86x, 56x); Opt-Ingest (141x, 46x); Opt-Query (26x, 63x).\n");
  return 0;
}
