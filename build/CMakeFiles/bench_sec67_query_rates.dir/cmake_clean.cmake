file(REMOVE_RECURSE
  "CMakeFiles/bench_sec67_query_rates.dir/bench/bench_sec67_query_rates.cc.o"
  "CMakeFiles/bench_sec67_query_rates.dir/bench/bench_sec67_query_rates.cc.o.d"
  "bench_sec67_query_rates"
  "bench_sec67_query_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec67_query_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
