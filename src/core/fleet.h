// Multi-camera deployments: building and querying many Focus streams as one fleet.
//
// The paper's query model is "find all frames with objects of class X", optionally
// "restricted to a subset of cameras and a time range" (§3). FocusFleet owns one
// FocusStream per camera and implements that cross-camera form: it fans the query out
// to the selected cameras, aggregates per-camera frame runs, and accounts the total
// GT-CNN work — the foundation for the investigation workflows in the examples
// ("which intersections saw a truck between 2pm and 4pm?").
#ifndef FOCUS_SRC_CORE_FLEET_H_
#define FOCUS_SRC_CORE_FLEET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/focus_stream.h"
#include "src/video/stream_generator.h"

namespace focus::core {

// One camera's slice of a fleet query result.
struct CameraHits {
  std::string camera;
  QueryResult result;
};

struct FleetQueryResult {
  common::ClassId queried = common::kInvalidClass;
  std::vector<CameraHits> hits;  // One entry per queried camera, in fleet order.
  int64_t total_frames = 0;
  int64_t total_centroids_classified = 0;
  common::GpuMillis total_gpu_millis = 0.0;

  // Cameras that returned at least one frame.
  std::vector<std::string> CamerasWithHits() const;
};

class FocusFleet {
 public:
  FocusFleet() = default;

  FocusFleet(const FocusFleet&) = delete;
  FocusFleet& operator=(const FocusFleet&) = delete;

  // Builds and registers one camera: generates its recording, tunes and ingests it.
  // |catalog| must outlive the fleet. Camera names must be unique.
  common::Result<bool> AddCamera(const std::string& name, const video::ClassCatalog* catalog,
                                 const video::StreamProfile& profile, double duration_sec,
                                 double fps, uint64_t seed, const FocusOptions& options);

  // Registers an externally built stream under |name|, taking ownership of both the
  // run and the stream (the stream must have been built against that run).
  common::Result<bool> AdoptCamera(const std::string& name,
                                   std::unique_ptr<video::StreamRun> run,
                                   std::unique_ptr<FocusStream> stream);

  // Queries |cls| across |cameras| (empty: every camera) within |range|. Unknown
  // camera names return kNotFound.
  common::Result<FleetQueryResult> Query(common::ClassId cls,
                                         const std::vector<std::string>& cameras = {},
                                         common::TimeRange range = {}, int kx = -1) const;

  const FocusStream* Find(const std::string& name) const;
  std::vector<std::string> CameraNames() const;  // In registration order.
  size_t size() const { return order_.size(); }

  // Sum of per-camera ingest GPU time (indexing plus tuning).
  common::GpuMillis TotalIngestGpuMillis() const;

 private:
  struct Camera {
    std::unique_ptr<video::StreamRun> run;
    std::unique_ptr<FocusStream> stream;
  };

  std::map<std::string, Camera> cameras_;
  std::vector<std::string> order_;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_FLEET_H_
