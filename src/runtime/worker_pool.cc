#include "src/runtime/worker_pool.h"

#include "src/common/logging.h"

namespace focus::runtime {

WorkerPool::WorkerPool(int num_workers, size_t queue_capacity, size_t pop_batch)
    : queue_(queue_capacity), pop_batch_(pop_batch) {
  FOCUS_CHECK(num_workers >= 1);
  FOCUS_CHECK(pop_batch >= 1);
  threads_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::Submit(std::function<void()> task) {
  FOCUS_CHECK(task != nullptr);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.Push(std::move(task))) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void WorkerPool::Drain() {
  const int64_t target = submitted_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] { return completed_.load(std::memory_order_acquire) >= target; });
}

void WorkerPool::Shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) {
    return;
  }
  queue_.Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void WorkerPool::WorkerMain() {
  // Pull up to pop_batch_ tasks per queue lock; one acquisition per batch
  // amortizes lock and wakeup traffic when many short tasks are queued.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(pop_batch_);
  while (true) {
    tasks.clear();
    if (queue_.PopBatch(tasks, pop_batch_) == 0) {
      return;  // Closed and drained.
    }
    for (std::function<void()>& task : tasks) {
      task();
    }
    // Publish the whole batch's completions under drain_mutex_, then notify once.
    // Incrementing outside the mutex loses wakeups: a drainer can evaluate its
    // predicate (count still short), then this increment-and-notify lands before
    // the drainer blocks, and if this was the last batch Drain() sleeps forever.
    // Holding drain_mutex_ for the increment forces it to happen either before
    // the predicate check (drainer sees the final count) or after the drainer is
    // parked (the notify reaches it). One notify per batch also replaces the
    // per-task notify_all storm.
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      completed_.fetch_add(static_cast<int64_t>(tasks.size()), std::memory_order_release);
    }
    drain_cv_.notify_all();
  }
}

}  // namespace focus::runtime
