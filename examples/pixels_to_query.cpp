// Pixels to query: the whole stack with no simulator shortcuts on the vision side.
//
// The other examples consume the stream generator's detections directly (what a
// production deployment gets from its detector). This one starts from raw pixels and
// runs the real vision substrate end to end, exactly as §5 describes the ingest
// worker: render frames -> adaptive background subtraction -> blob extraction ->
// IoU tracking for object identity -> cheap CNN -> clustering -> top-K index ->
// query. Along the way it reports each stage's quality against the generator's
// ground truth (detection recall, tracking fragmentation, final query
// precision/recall).
//
// One simulator seam remains, documented in DESIGN.md: the simulated CNN needs to
// know which true object a pixel crop shows (a real CNN would just look at the
// pixels), so each vision detection is associated back to the generator's box with
// the highest IoU. The association is part of the demonstration: it is measured and
// reported, not assumed.
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/common/logging.h"
#include "src/core/accuracy_evaluator.h"
#include "src/core/query_engine.h"
#include "src/video/renderer.h"
#include "src/video/stream_generator.h"
#include "src/vision/motion_detector.h"
#include "src/vision/tracker.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);

  video::ClassCatalog catalog(42);
  video::StreamProfile profile;
  if (!video::FindProfile("auburn_c", &profile)) {
    return 1;
  }
  video::StreamRun run(&catalog, profile, /*duration_sec=*/180.0, /*fps=*/30.0, /*seed=*/7);
  video::Renderer renderer(&run);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  // Ground-truth detections per frame (for association and quality accounting).
  std::map<common::FrameIndex, std::vector<video::Detection>> truth_dets;
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    truth_dets[frame] = dets;
  });

  // A specialized cheap model, trained the same way FocusStream would.
  cnn::ClassDistributionEstimate distribution =
      cnn::EstimateClassDistribution(run, gt, 120.0, /*frame_stride=*/10);
  cnn::SpecializationOptions spec;
  spec.ls = 15;
  cnn::ModelDesc cheap_desc =
      cnn::TrainSpecializedModel(distribution, spec, profile.appearance_variability, 77);
  cnn::Cnn cheap(cheap_desc, &catalog);
  constexpr int kTopK = 4;
  constexpr double kThreshold = 0.6;

  vision::MotionDetector detector(profile.frame_width, profile.frame_height);
  vision::IouTracker tracker;
  cluster::IncrementalClusterer clusterer({.threshold = kThreshold});

  // Per-cluster class ranks (the IT3/IT4 aggregation of src/core/ingest_pipeline.cc,
  // inlined here because the detections come from pixels, not from a StreamRun).
  std::map<int64_t, std::map<common::ClassId, int32_t>> ranks;

  int64_t vision_boxes = 0;
  int64_t matched_boxes = 0;
  int64_t truth_boxes = 0;
  double recall_sum = 0.0;
  int64_t recall_frames = 0;
  common::GpuMillis cheap_gpu = 0.0;

  const common::FrameIndex num_frames = run.num_frames();
  for (common::FrameIndex frame = 0; frame < num_frames; ++frame) {
    video::FrameBuffer pixels = renderer.Render(frame);
    std::vector<video::BBox> boxes = detector.Detect(pixels);
    std::vector<vision::TrackedBox> tracked = tracker.Update(frame, boxes);

    const std::vector<video::Detection>& truth = truth_dets[frame];
    truth_boxes += static_cast<int64_t>(truth.size());
    if (!truth.empty()) {
      std::vector<video::BBox> truth_only;
      for (const video::Detection& d : truth) {
        truth_only.push_back(d.bbox);
      }
      recall_sum += vision::DetectionRecall(boxes, truth_only, 0.3f);
      ++recall_frames;
    }

    for (const vision::TrackedBox& tb : tracked) {
      ++vision_boxes;
      // Associate the pixel detection with the generator's best-overlapping truth
      // box — the simulator seam described in the header comment.
      const video::Detection* best = nullptr;
      float best_iou = 0.2f;
      for (const video::Detection& d : truth) {
        float iou = video::IoU(tb.bbox, d.bbox);
        if (iou > best_iou) {
          best_iou = iou;
          best = &d;
        }
      }
      if (best == nullptr) {
        continue;  // Vision false positive: nothing real under the box.
      }
      ++matched_boxes;

      video::Detection det = *best;       // True identity from the association...
      det.bbox = tb.bbox;                 // ...geometry from the vision pipeline...
      det.object_id = tb.track_id;        // ...and identity continuity from the tracker.
      det.frame = frame;

      cheap_gpu += cheap.inference_cost_millis();
      cnn::TopKResult topk = cheap.Classify(det, kTopK);
      common::FeatureVec feature = cheap.ExtractFeature(det);
      int64_t cluster_id = clusterer.Add(det, feature);
      auto& rank_map = ranks[cluster_id];
      for (size_t pos = 0; pos < topk.entries.size(); ++pos) {
        auto [it, inserted] =
            rank_map.try_emplace(topk.entries[pos].first, static_cast<int32_t>(pos) + 1);
        if (!inserted && static_cast<int32_t>(pos) + 1 < it->second) {
          it->second = static_cast<int32_t>(pos) + 1;
        }
      }
    }
  }

  // IT4: build the index from the pixel-path clusters.
  index::TopKIndex index;
  for (const cluster::Cluster& c : clusterer.clusters()) {
    index::ClusterEntry entry;
    entry.cluster_id = c.id;
    entry.representative = c.representative;
    entry.members = c.members;
    entry.size = c.size;
    for (const auto& [cls, rank] : ranks[c.id]) {
      entry.topk_classes.push_back(cls);
      entry.topk_ranks.push_back(rank);
    }
    index.AddCluster(std::move(entry));
  }

  std::printf("== Vision stages ==\n");
  std::printf("  frames rendered:        %lld\n", static_cast<long long>(num_frames));
  std::printf("  mean detection recall:  %.1f%% (IoU>=0.3 vs generator boxes)\n",
              recall_frames > 0 ? 100.0 * recall_sum / recall_frames : 0.0);
  std::printf("  boxes tracked:          %lld (%lld matched to truth, %lld tracks)\n",
              static_cast<long long>(vision_boxes), static_cast<long long>(matched_boxes),
              static_cast<long long>(tracker.tracks_started()));
  std::printf("  clusters built:         %zu\n", clusterer.num_clusters());

  // Query the pixel-built index and score against the GT-CNN segment truth.
  cnn::SegmentGroundTruth truth(run, gt);
  core::AccuracyEvaluator evaluator(&truth, run.fps());
  core::QueryEngine engine(&index, &cheap, &gt);
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 5);

  std::printf("\n== Queries over the pixel-built index ==\n");
  std::printf("  %-20s %8s %8s %10s %10s\n", "Class", "Prec", "Recall", "Frames", "GT-CNN ms");
  for (common::ClassId cls : dominant) {
    core::QueryResult qr = engine.Query(cls, kTopK, {}, run.fps());
    core::PrecisionRecall pr = evaluator.Evaluate(cls, qr);
    std::printf("  %-20s %8.3f %8.3f %10lld %10.0f\n", catalog.Name(cls).c_str(), pr.precision,
                pr.recall, static_cast<long long>(qr.frames_returned), qr.gpu_millis);
  }
  const double gt_all = static_cast<double>(matched_boxes) * gt.inference_cost_millis();
  std::printf("\nIngest GPU: %.1f s cheap CNN (GT-CNN on everything would be %.1f s, %.0fx)\n",
              cheap_gpu / 1000.0, gt_all / 1000.0, cheap_gpu > 0 ? gt_all / cheap_gpu : 0.0);
  return 0;
}
