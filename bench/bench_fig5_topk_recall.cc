// Figure 5: effect of K on recall for three generic cheap CNNs on the lausanne
// stream. The paper's anchors: the ~7x / ~28x / ~58x cheaper models reach ~90% recall
// at K around 60 / 100 / 200 out of 1000 classes; cheaper models need larger K.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/cnn.h"
#include "src/cnn/cost_model.h"
#include "src/cnn/model_zoo.h"
#include "src/common/logging.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "lausanne", config);

  std::vector<cnn::ModelDesc> zoo = cnn::GenericCheapCandidates(config.world_seed);
  zoo.resize(3);  // The three Figure 5 reference models.
  std::vector<cnn::Cnn> models;
  models.reserve(zoo.size());
  for (const auto& desc : zoo) {
    models.emplace_back(desc, &catalog);
  }

  const std::vector<int> ks = {10, 20, 60, 100, 200};

  // Measure detection-level recall@K: the fraction of detections whose true (GT-CNN)
  // class appears within the cheap CNN's top-K output.
  std::vector<std::vector<int64_t>> hits(models.size(), std::vector<int64_t>(ks.size(), 0));
  int64_t total = 0;
  run.ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    for (const video::Detection& d : dets) {
      ++total;
      for (size_t m = 0; m < models.size(); ++m) {
        int rank = models[m].TrueClassRank(d);
        for (size_t i = 0; i < ks.size(); ++i) {
          if (rank <= ks[i]) {
            ++hits[m][i];
          }
        }
      }
    }
  });

  bench::PrintHeader("Figure 5: Effect of K on recall for three cheap CNNs (lausanne)");
  std::printf("%-10s", "K");
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("  CheapCNN%zu(%4.0fx)", m + 1, cnn::CheapnessFactor(zoo[m]));
  }
  std::printf("\n");
  for (size_t i = 0; i < ks.size(); ++i) {
    std::printf("%-10d", ks[i]);
    for (size_t m = 0; m < models.size(); ++m) {
      std::printf("  %15.1f%%", total > 0 ? 100.0 * hits[m][i] / total : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\nPaper checkpoints: recall rises steadily with K; at equal K the cheaper the\n"
              "model the lower the recall; ~90%% recall needs K around 60/100/200.\n");
  return 0;
}
