// Query-time processing (§3 right side: QT1-QT4), as a plan/execute API.
//
// For a query "find all frames with objects of class X": look up the top-K index for
// clusters indexed under X (mapping X to OTHER when the ingest model was specialized
// and X is not one of its Ls classes), classify each matching cluster's centroid
// object with the GT-CNN, and return the member frames of the clusters whose centroid
// the GT-CNN confirmed as X. Query GPU time = centroid classifications.
//
// The GPU-bearing step is split out of the control flow so callers decide when and
// how it runs (§5 "We parallelize a query's work across many worker processes if
// resources are idle" — and, across concurrent queries, share and batch it):
//
//   Plan(cls, kx, range)    QT1/QT2: index lookup + Kx filter. Free — no GPU work;
//                           emits one CentroidWorkItem per candidate cluster.
//   <classification>        QT3: any execution strategy that produces a GT-CNN
//                           top-1 verdict per work item — cnn::Cnn::ClassifyBatch
//                           over any batching, a shared cross-query verdict table
//                           (runtime::QueryService), or a cached verdict
//                           (QuerySession).
//   Resolve(plan, verdicts) QT4: folds the verdicts into the final QueryResult.
//
// Query() is the one-call form: Plan, classify the whole plan as one batch,
// Resolve. Its results are byte-identical to the seed's per-centroid loop, and
// QueryResult::gpu_millis always accounts the per-centroid (unbatched) GPU cost so
// result accounting is execution-independent; the launch-amortized cost of an
// actual batched execution is the executor's to report (QueryService,
// cnn::Cnn::BatchCostMillis).
//
// Supports the §5 enhancement of a dynamic Kx <= K: filtering with a smaller Kx
// shrinks the candidate set (lower latency) at some recall cost.
#ifndef FOCUS_SRC_CORE_QUERY_ENGINE_H_
#define FOCUS_SRC_CORE_QUERY_ENGINE_H_

#include <limits>
#include <span>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/common/time_types.h"
#include "src/index/topk_index.h"

namespace focus::core {

struct LiveSnapshot;

struct QueryResult {
  common::ClassId queried = common::kInvalidClass;
  // Returned frames as sorted, disjoint [first, last] runs.
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> frame_runs;
  int64_t centroids_classified = 0;
  int64_t clusters_matched = 0;  // Centroid confirmed as the queried class.
  int64_t frames_returned = 0;
  common::GpuMillis gpu_millis = 0.0;
};

// One unit of query-time GPU work: the centroid object of a candidate cluster that
// needs a GT-CNN verdict. |centroid| points into the index's ClusterEntry and stays
// valid while the index lives. (stream, cluster_id) identifies the classification
// for cross-query dedup — the verdict depends only on the centroid object, never on
// which query asked.
struct CentroidWorkItem {
  int64_t cluster_id = -1;
  const video::Detection* centroid = nullptr;
};

// The free half of a query: everything Query() decides before touching a GPU.
struct QueryPlan {
  common::ClassId queried = common::kInvalidClass;
  common::ClassId lookup = common::kInvalidClass;  // queried, in the ingest label space.
  // Informational only: the Kx the plan was built with. The Kx filter is
  // already baked into |work|; Resolve does not re-apply it.
  int kx = -1;
  // The query's time range as inclusive frame bounds (whole recording when open).
  common::FrameIndex range_first = 0;
  common::FrameIndex range_last = std::numeric_limits<common::FrameIndex>::max();
  // Candidate clusters needing a verdict, in posting-list order. Resolve() consumes
  // verdicts in exactly this order.
  std::vector<CentroidWorkItem> work;
};

class QueryEngine {
 public:
  // |index|, |ingest_cnn| (the model that built the index, for label-space mapping)
  // and |gt_cnn| must outlive the engine.
  QueryEngine(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn, const cnn::Cnn* gt_cnn);

  // Live query-over-ingest (src/core/live_snapshot.h): plans against a
  // published epoch snapshot's canonical index instead of a final one —
  // results are byte-identical to halting ingest at the snapshot's watermark
  // and finalizing. The caller must keep the snapshot alive across
  // Plan/Resolve (hold its shared_ptr; runtime::QueryService's snapshot
  // requests do).
  QueryEngine(const LiveSnapshot* snapshot, const cnn::Cnn* ingest_cnn, const cnn::Cnn* gt_cnn);

  // Runs the query: Plan -> ClassifyPlan (one batch) -> Resolve. |kx| <= K restricts
  // matching to the top-kx indexed classes (negative: use the full indexed width K).
  // |range| restricts returned frames.
  QueryResult Query(common::ClassId cls, int kx = -1, common::TimeRange range = {},
                    double fps = 30.0) const;

  // QT1/QT2 only: index lookup, Kx filter, range-to-frame-bounds mapping. No GPU
  // work. |min_kx| > 0 omits clusters already matching within min_kx — the
  // incremental form QuerySession::ExpandTo uses to plan only the candidates a Kx
  // expansion newly admits.
  QueryPlan Plan(common::ClassId cls, int kx = -1, common::TimeRange range = {},
                 double fps = 30.0, int min_kx = 0) const;

  // QT3 as one GT-CNN batch: top-1 verdicts for every work item of |plan|, in plan
  // order. Callers with their own execution strategy (cross-query batching, cached
  // verdicts) produce this vector themselves instead.
  std::vector<common::ClassId> ClassifyPlan(const QueryPlan& plan) const;

  // QT4: folds per-work-item |verdicts| (parallel to plan.work) into the final
  // result. Deterministic and GPU-free; gpu_millis accounts plan.work.size()
  // per-centroid inferences regardless of how the verdicts were produced (see file
  // comment).
  QueryResult Resolve(const QueryPlan& plan, std::span<const common::ClassId> verdicts) const;

  const index::TopKIndex& index() const { return *index_; }
  const cnn::Cnn& gt_cnn() const { return *gt_cnn_; }

 private:
  const index::TopKIndex* index_;
  const cnn::Cnn* ingest_cnn_;
  const cnn::Cnn* gt_cnn_;
};

// Merges possibly-overlapping frame runs into sorted disjoint runs.
std::vector<std::pair<common::FrameIndex, common::FrameIndex>> MergeFrameRuns(
    std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs);

// The frames |range| admits at |fps| as an inclusive [first, last] frame
// interval (last = max FrameIndex for an open-ended range). Derived
// arithmetically but agreeing frame-for-frame with TimeRange::ContainsFrame, so
// clipping a member run to a query's time range is O(1) arithmetic on the run
// bounds instead of a per-frame walk.
std::pair<common::FrameIndex, common::FrameIndex> FrameBoundsOfRange(common::TimeRange range,
                                                                     double fps);

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_QUERY_ENGINE_H_
