// Unit tests for the Focus core: ingest pipeline, query engine, accuracy evaluator,
// Pareto selection, and policy choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/accuracy_evaluator.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/parameter_tuner.h"
#include "src/core/pareto.h"
#include "src/core/query_engine.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

constexpr uint64_t kSeed = 42;

class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture() : catalog_(kSeed), gt_(cnn::GtCnnDesc(kSeed), &catalog_) {
    video::StreamProfile profile;
    video::FindProfile("auburn_c", &profile);
    run_ = std::make_unique<video::StreamRun>(&catalog_, profile, 300.0, 30.0, 7);
  }

  IngestParams SpecializedParams(int k, double threshold) {
    cnn::ClassDistributionEstimate est =
        cnn::EstimateClassDistribution(*run_, gt_, 300.0, 5);
    cnn::SpecializationOptions sopts;
    sopts.ls = 20;
    sopts.layers = 15;
    sopts.input_px = 112;
    IngestParams params;
    params.model = cnn::TrainSpecializedModel(est, sopts, 0.5, kSeed);
    params.k = k;
    params.cluster_threshold = threshold;
    params.ls = 20;
    return params;
  }

  video::ClassCatalog catalog_;
  cnn::Cnn gt_;
  std::unique_ptr<video::StreamRun> run_;
};

TEST(MergeFrameRunsTest, MergesOverlapsAndAdjacent) {
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs = {
      {10, 20}, {15, 25}, {26, 30}, {40, 45}};
  auto merged = MergeFrameRuns(runs);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (std::pair<common::FrameIndex, common::FrameIndex>{10, 30}));
  EXPECT_EQ(merged[1], (std::pair<common::FrameIndex, common::FrameIndex>{40, 45}));
  EXPECT_TRUE(MergeFrameRuns({}).empty());
}

TEST(FrameBoundsOfRangeTest, AgreesWithContainsFrameBruteForce) {
  // The O(1) arithmetic bounds must admit exactly the frames ContainsFrame
  // admits, including awkward fps/boundary combinations.
  const double fps_values[] = {30.0, 29.97, 24.0, 1.0, 7.5};
  const common::TimeRange ranges[] = {
      {0.0, -1.0},   {0.0, 10.0},  {1.0, 2.0},     {0.5, 0.5},
      {2.0, 1.0},    {3.3, -1.0},  {1.0 / 3.0, 2.0 / 3.0}, {0.0, 0.0},
      {10.0, 10.04}, {0.033, 0.067},
  };
  for (double fps : fps_values) {
    for (const common::TimeRange& range : ranges) {
      const auto [first, last] = FrameBoundsOfRange(range, fps);
      for (common::FrameIndex f = 0; f < 400; ++f) {
        const bool in_bounds = f >= first && f <= last;
        EXPECT_EQ(in_bounds, range.ContainsFrame(f, fps))
            << "fps=" << fps << " begin=" << range.begin_sec << " end=" << range.end_sec
            << " frame=" << f;
      }
    }
  }
}

TEST(FrameBoundsOfRangeTest, OpenEndedRangeIsUnbounded) {
  const auto [first, last] = FrameBoundsOfRange({0.0, -1.0}, 30.0);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, std::numeric_limits<common::FrameIndex>::max());
}

TEST(FrameBoundsOfRangeTest, HugeClientRangeValuesDoNotOverflow) {
  // Range values arrive from clients via the query protocol; estimates beyond
  // the representable frame range must clamp instead of overflowing the cast
  // (or spinning in the fix-up loop).
  const double huge = 1e18;
  const double inf = std::numeric_limits<double>::infinity();
  // Unreachable begin: admits nothing.
  for (double begin : {huge, inf}) {
    const auto [first, last] = FrameBoundsOfRange({begin, -1.0}, 30.0);
    EXPECT_GT(first, last) << "begin=" << begin;
  }
  // Unreachable end: effectively open-ended.
  for (double end : {huge, inf}) {
    const auto [first, last] = FrameBoundsOfRange({1.0, end}, 30.0);
    EXPECT_EQ(first, 30) << "end=" << end;
    EXPECT_EQ(last, std::numeric_limits<common::FrameIndex>::max()) << "end=" << end;
  }
}

TEST(ParetoTest, BoundaryExcludesDominatedPoints) {
  std::vector<CostPoint> points = {
      {1.0, 10.0},  // Boundary (cheapest ingest).
      {2.0, 5.0},   // Boundary.
      {3.0, 5.0},   // Dominated by (2,5).
      {4.0, 1.0},   // Boundary (fastest query).
      {5.0, 2.0},   // Dominated by (4,1).
  };
  auto boundary = ParetoBoundary(points);
  EXPECT_EQ(boundary, (std::vector<size_t>{0, 1, 3}));
}

TEST(ParetoTest, SinglePointAndEmpty) {
  EXPECT_TRUE(ParetoBoundary({}).empty());
  EXPECT_EQ(ParetoBoundary({{1.0, 1.0}}), std::vector<size_t>{0});
}

TEST(PolicyTest, ChoosesExtremesAndBalance) {
  std::vector<EvaluatedConfig> configs(3);
  configs[0].ingest_cost_norm = 0.01;
  configs[0].query_latency_norm = 0.5;
  configs[1].ingest_cost_norm = 0.05;
  configs[1].query_latency_norm = 0.05;
  configs[2].ingest_cost_norm = 0.5;
  configs[2].query_latency_norm = 0.01;
  std::vector<size_t> pareto = {0, 1, 2};
  EXPECT_EQ(ChooseByPolicy(configs, pareto, Policy::kOptIngest), 0u);
  EXPECT_EQ(ChooseByPolicy(configs, pareto, Policy::kOptQuery), 2u);
  EXPECT_EQ(ChooseByPolicy(configs, pareto, Policy::kBalance), 1u);
}

TEST_F(CoreFixture, IngestAccountsGpuTimeAndSuppression) {
  IngestParams params = SpecializedParams(4, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  IngestResult result = RunIngest(*run_, cheap, params);
  EXPECT_GT(result.detections, 0);
  EXPECT_GT(result.suppressed, 0);
  EXPECT_EQ(result.cnn_invocations + result.suppressed, result.detections);
  EXPECT_NEAR(result.gpu_millis,
              static_cast<double>(result.cnn_invocations) * cheap.inference_cost_millis(), 1e-6);
  EXPECT_GT(result.num_clusters, 0);
  // All detections are indexed.
  EXPECT_EQ(result.index.total_indexed_detections(), result.detections);
}

TEST_F(CoreFixture, IngestClusterClassListsAreRankedUnions) {
  IngestParams params = SpecializedParams(3, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  IngestResult result = RunIngest(*run_, cheap, params);
  for (const auto& entry : result.index.clusters()) {
    ASSERT_GE(entry.topk_classes.size(), 1u);
    ASSERT_EQ(entry.topk_classes.size(), entry.topk_ranks.size());
    int32_t prev = 0;
    for (int32_t rank : entry.topk_ranks) {
      // Ranks are 1-based, bounded by the indexing K, and sorted ascending.
      EXPECT_GE(rank, 1);
      EXPECT_LE(rank, 3);
      EXPECT_GE(rank, prev);
      prev = rank;
    }
  }
}

TEST_F(CoreFixture, IngestLimitSecTruncates) {
  IngestParams params = SpecializedParams(4, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  IngestOptions opts;
  opts.limit_sec = 60.0;
  IngestResult truncated = RunIngest(*run_, cheap, params, opts);
  IngestResult full = RunIngest(*run_, cheap, params);
  EXPECT_LT(truncated.detections, full.detections);
}

TEST_F(CoreFixture, QueryReturnsFramesAndCharGesGtTime) {
  IngestParams params = SpecializedParams(4, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  IngestResult ingest = RunIngest(*run_, cheap, params);
  QueryEngine engine(&ingest.index, &cheap, &gt_);

  cnn::SegmentGroundTruth truth(*run_, gt_);
  auto dominant = truth.DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());
  QueryResult qr = engine.Query(dominant[0], params.k, {}, run_->fps());
  EXPECT_GT(qr.frames_returned, 0);
  EXPECT_GT(qr.centroids_classified, 0);
  EXPECT_GE(qr.centroids_classified, qr.clusters_matched);
  EXPECT_NEAR(qr.gpu_millis,
              static_cast<double>(qr.centroids_classified) * gt_.inference_cost_millis(), 1e-6);
  // Frame runs are sorted and disjoint.
  for (size_t i = 1; i < qr.frame_runs.size(); ++i) {
    EXPECT_GT(qr.frame_runs[i].first, qr.frame_runs[i - 1].second);
  }
}

TEST_F(CoreFixture, SmallerKxShrinksCandidates) {
  IngestParams params = SpecializedParams(8, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  IngestResult ingest = RunIngest(*run_, cheap, params);
  QueryEngine engine(&ingest.index, &cheap, &gt_);
  cnn::SegmentGroundTruth truth(*run_, gt_);
  auto dominant = truth.DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());
  QueryResult wide = engine.Query(dominant[0], 8, {}, run_->fps());
  QueryResult narrow = engine.Query(dominant[0], 1, {}, run_->fps());
  EXPECT_LE(narrow.centroids_classified, wide.centroids_classified);
}

TEST_F(CoreFixture, TimeRangeRestrictsResults) {
  IngestParams params = SpecializedParams(4, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  IngestResult ingest = RunIngest(*run_, cheap, params);
  QueryEngine engine(&ingest.index, &cheap, &gt_);
  cnn::SegmentGroundTruth truth(*run_, gt_);
  auto dominant = truth.DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());
  common::TimeRange window{60.0, 120.0};
  QueryResult qr = engine.Query(dominant[0], params.k, window, run_->fps());
  for (const auto& [first, last] : qr.frame_runs) {
    EXPECT_TRUE(window.ContainsFrame(first, run_->fps()));
    EXPECT_TRUE(window.ContainsFrame(last, run_->fps()));
  }
}

TEST_F(CoreFixture, EvaluatorSegmentRule) {
  cnn::SegmentGroundTruth truth(*run_, gt_);
  AccuracyEvaluator evaluator(&truth, 30.0);
  QueryResult qr;
  // 20 of 30 frames of segment 2 -> claimed; 5 of 30 frames of segment 3 -> not.
  qr.frame_runs = {{60, 79}, {90, 94}};
  auto claimed = evaluator.ClaimedSegments(qr);
  EXPECT_TRUE(claimed.contains(2));
  EXPECT_FALSE(claimed.contains(3));
}

TEST_F(CoreFixture, EvaluatorPerfectResultScoresPerfect) {
  cnn::SegmentGroundTruth truth(*run_, gt_);
  AccuracyEvaluator evaluator(&truth, 30.0);
  auto dominant = truth.DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());
  // Synthesize a result covering exactly the truth segments.
  QueryResult qr;
  for (common::SegmentId seg : truth.SegmentsWithClass(dominant[0])) {
    qr.frame_runs.emplace_back(seg * 30, seg * 30 + 29);
  }
  qr.frame_runs = MergeFrameRuns(std::move(qr.frame_runs));
  PrecisionRecall pr = evaluator.Evaluate(dominant[0], qr);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST_F(CoreFixture, EvaluatorEmptyResultHasZeroRecall) {
  cnn::SegmentGroundTruth truth(*run_, gt_);
  AccuracyEvaluator evaluator(&truth, 30.0);
  auto dominant = truth.DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());
  QueryResult qr;
  PrecisionRecall pr = evaluator.Evaluate(dominant[0], qr);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);  // Nothing claimed, nothing wrong.
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_GT(pr.truth_segments, 0);
}

TEST_F(CoreFixture, HigherKImprovesRecallCostsLatency) {
  IngestParams params = SpecializedParams(1, 0.5);
  cnn::Cnn cheap(params.model, &catalog_);
  params.k = 8;
  IngestResult ingest = RunIngest(*run_, cheap, params);
  QueryEngine engine(&ingest.index, &cheap, &gt_);
  cnn::SegmentGroundTruth truth(*run_, gt_);
  AccuracyEvaluator evaluator(&truth, run_->fps());
  auto dominant = truth.DominantClasses(0.9, 5);
  ASSERT_GE(dominant.size(), 2u);
  double recall_k1 = 0.0;
  double recall_k8 = 0.0;
  double gpu_k1 = 0.0;
  double gpu_k8 = 0.0;
  for (common::ClassId cls : dominant) {
    QueryResult narrow = engine.Query(cls, 1, {}, run_->fps());
    QueryResult wide = engine.Query(cls, 8, {}, run_->fps());
    recall_k1 += evaluator.Evaluate(cls, narrow).recall;
    recall_k8 += evaluator.Evaluate(cls, wide).recall;
    gpu_k1 += narrow.gpu_millis;
    gpu_k8 += wide.gpu_millis;
  }
  EXPECT_GE(recall_k8, recall_k1);
  EXPECT_GE(gpu_k8, gpu_k1);
}

}  // namespace
}  // namespace focus::core
