// Query-time execution service: wall-clock latency of Focus queries on a GPU fleet.
//
// The core QueryEngine reports query cost in GPU-milliseconds of GT-CNN work; this
// service turns that into the latency a user experiences by scheduling the centroid
// classifications of one or more concurrent queries onto a shared virtual GpuCluster
// (§5: "We parallelize a query's work across many worker processes if resources are
// idle"). It reproduces the paper's headline translation: 280 GPU-hours of Query-all
// work versus "with a 10-GPU cluster, the query latency on a 24-hour video goes down
// from one hour to less than two minutes" for Focus.
#ifndef FOCUS_SRC_RUNTIME_QUERY_SERVICE_H_
#define FOCUS_SRC_RUNTIME_QUERY_SERVICE_H_

#include <string>
#include <vector>

#include "src/core/focus_stream.h"
#include "src/core/query_engine.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/metrics.h"

namespace focus::runtime {

// One query request against a built FocusStream.
struct QueryRequest {
  const core::FocusStream* stream = nullptr;  // Must outlive the service call.
  common::ClassId cls = common::kInvalidClass;
  int kx = -1;                 // Dynamic Kx (§5); negative uses the indexed K.
  common::TimeRange range{};   // Restriction to a time window.
};

struct QueryExecution {
  core::QueryResult result;
  // Virtual wall-clock times on the shared cluster.
  common::GpuMillis submit_millis = 0.0;
  common::GpuMillis finish_millis = 0.0;

  common::GpuMillis latency_millis() const { return finish_millis - submit_millis; }
};

struct QueryServiceOptions {
  int num_gpus = 10;  // The paper's example cluster size.
};

class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options, MetricsRegistry* metrics = nullptr);

  // Runs one query: index lookup (free), then centroid classifications scheduled in
  // parallel on the cluster starting at the cluster's current frontier.
  QueryExecution Execute(const QueryRequest& request);

  // Runs a batch of queries submitted simultaneously, sharing the cluster; returns
  // executions in request order. Models several analysts querying at once.
  std::vector<QueryExecution> ExecuteConcurrently(const std::vector<QueryRequest>& requests);

  // Resets the shared cluster clock (e.g., between experiments).
  void ResetCluster();

  const GpuCluster& cluster() const { return cluster_; }

 private:
  QueryExecution ScheduleAt(const QueryRequest& request, common::GpuMillis submit_millis);

  QueryServiceOptions options_;
  MetricsRegistry* metrics_;
  GpuCluster cluster_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_QUERY_SERVICE_H_
