file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_policies.dir/bench/bench_fig9_policies.cc.o"
  "CMakeFiles/bench_fig9_policies.dir/bench/bench_fig9_policies.cc.o.d"
  "bench_fig9_policies"
  "bench_fig9_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
