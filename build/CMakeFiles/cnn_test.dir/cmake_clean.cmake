file(REMOVE_RECURSE
  "CMakeFiles/cnn_test.dir/tests/cnn_test.cc.o"
  "CMakeFiles/cnn_test.dir/tests/cnn_test.cc.o.d"
  "cnn_test"
  "cnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
