// Fixed-size thread pool executing closures from a bounded queue.
//
// Models the §5 worker fleet: "Focus's ingest-time work is distributed across many
// machines, with each machine running one worker process for each video stream's
// ingestion" and "We parallelize a query's work across many worker processes if
// resources are idle". Here worker processes are threads; the unit of distribution
// (a closure over one stream or one classification shard) is the same.
#ifndef FOCUS_SRC_RUNTIME_WORKER_POOL_H_
#define FOCUS_SRC_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/task_queue.h"

namespace focus::runtime {

class WorkerPool {
 public:
  // Spawns |num_workers| threads (>= 1). |queue_capacity| bounds pending tasks.
  // |pop_batch| is how many tasks a worker pulls per queue lock (>= 1): raise it
  // for fleets of short fine-grained tasks to amortize lock/wakeup traffic;
  // leave it at 1 for coarse tasks (batching those would serialize long jobs
  // onto one worker while its siblings idle).
  explicit WorkerPool(int num_workers, size_t queue_capacity = 1024, size_t pop_batch = 1);

  // Drains remaining tasks, then joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues |task|; blocks when the queue is full. Returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing. Tasks may keep
  // being submitted by other threads; this waits for the count observed at entry.
  void Drain();

  // Stops accepting tasks, drains the backlog, joins the threads. Idempotent.
  void Shutdown();

  int num_workers() const { return static_cast<int>(threads_.size()); }
  // Tasks finished so far. Updated once per popped batch (after its last task),
  // so mid-execution reads can lag by up to pop_batch - 1.
  int64_t tasks_completed() const { return completed_.load(std::memory_order_relaxed); }

 private:
  void WorkerMain();

  TaskQueue<std::function<void()>> queue_;
  const size_t pop_batch_;
  std::vector<std::thread> threads_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_WORKER_POOL_H_
