// Pixel differencing of object crops between adjacent frames (§4.2).
//
// If the crop of an object in frame t is nearly identical to its crop in frame t-1,
// Focus skips the cheap CNN for it at ingest and reuses the previous result. This
// class implements the crop comparison over real pixel buffers; the large-scale
// simulation path models the same effect statistically (StreamProfile::
// pixel_diff_suppression), and the vision tests check the two agree in rate.
#ifndef FOCUS_SRC_VISION_PIXEL_DIFFER_H_
#define FOCUS_SRC_VISION_PIXEL_DIFFER_H_

#include <vector>

#include "src/video/detection.h"
#include "src/video/frame.h"

namespace focus::vision {

struct PixelDifferOptions {
  // Mean absolute intensity difference (0-255) below which two crops are "the same".
  double mean_abs_threshold = 6.0;
};

class PixelDiffer {
 public:
  explicit PixelDiffer(PixelDifferOptions options = {}) : options_(options) {}

  // Mean absolute difference of the |box| region across two frames. The box is
  // clamped to frame bounds; returns +inf for degenerate boxes.
  double CropDifference(const video::FrameBuffer& prev, const video::FrameBuffer& cur,
                        const video::BBox& box) const;

  // True when the crops are similar enough to suppress re-classification.
  bool ShouldSuppress(const video::FrameBuffer& prev, const video::FrameBuffer& cur,
                      const video::BBox& box) const {
    return CropDifference(prev, cur, box) <= options_.mean_abs_threshold;
  }

 private:
  PixelDifferOptions options_;
};

}  // namespace focus::vision

#endif  // FOCUS_SRC_VISION_PIXEL_DIFFER_H_
