// The paper's two baselines plus the §6.7 query-time-only Focus variant.
//
// Both baselines are "strengthened with basic motion detection" (§6.1): they only
// spend GPU time on moving-object detections, never on empty frames — which is one of
// NoScope's core techniques, so these correspond to the paper's NoScope-augmented
// comparison points.
//
//   Ingest-all: runs the GT-CNN on every detection at ingest time and stores an
//     inverted index; queries are free index lookups (query latency 0).
//   Query-all: stores only the detections at ingest (ingest GPU cost 0); a query runs
//     the GT-CNN over every detection in the queried interval.
//   Query-time-only Focus (§6.7): when almost no video is ever queried, Focus can
//     defer all of its own ingest work to query time: cheap CNN + clustering +
//     centroid verification all run at query time. Latency = ingest work + query
//     work, still far below Query-all.
#ifndef FOCUS_SRC_BASELINE_BASELINES_H_
#define FOCUS_SRC_BASELINE_BASELINES_H_

#include <map>
#include <set>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/cnn/ground_truth.h"
#include "src/core/config.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_engine.h"
#include "src/video/stream_generator.h"

namespace focus::baseline {

// --- Ingest-all ---

struct IngestAllResult {
  // Inverted index: class -> frames where the GT-CNN reported it (as merged runs).
  std::map<common::ClassId, std::vector<std::pair<common::FrameIndex, common::FrameIndex>>>
      frames_by_class;
  common::GpuMillis ingest_gpu_millis = 0.0;
  int64_t detections = 0;
};

// Runs the GT-CNN over every detection of |run| and builds the inverted index.
IngestAllResult RunIngestAll(const video::StreamRun& run, const cnn::Cnn& gt_cnn);

// Query on the Ingest-all index: free (no GPU time), exact by construction.
core::QueryResult QueryIngestAll(const IngestAllResult& index, common::ClassId cls);

// --- Query-all ---

// Runs the GT-CNN over every detection in |range| at query time and returns the
// frames where it reported |cls|. Ingest cost is zero by definition.
core::QueryResult RunQueryAll(const video::StreamRun& run, const cnn::Cnn& gt_cnn,
                              common::ClassId cls, common::TimeRange range = {});

// GPU time Query-all spends on one query over |range| (= detections in range x GT
// cost) without materializing results. Used for normalization everywhere.
common::GpuMillis QueryAllCostMillis(const video::StreamRun& run, const cnn::Cnn& gt_cnn,
                                     common::TimeRange range = {});

// --- Query-time-only Focus (§6.7) ---

struct QueryTimeOnlyResult {
  core::QueryResult query;
  // Total query-time GPU cost: cheap-CNN indexing of the interval + centroid
  // verification (ingest-side cost is zero).
  common::GpuMillis total_gpu_millis = 0.0;
};

// Runs the whole Focus pipeline lazily at query time with the given parameters.
QueryTimeOnlyResult RunFocusQueryTimeOnly(const video::StreamRun& run,
                                          const cnn::Cnn& ingest_cnn, const cnn::Cnn& gt_cnn,
                                          const core::IngestParams& params,
                                          common::ClassId cls,
                                          const core::IngestOptions& options = {});

}  // namespace focus::baseline

#endif  // FOCUS_SRC_BASELINE_BASELINES_H_
