# Empty dependencies file for example_ops_console.
# This may be replaced when dependencies are built.
