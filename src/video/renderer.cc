#include "src/video/renderer.h"

#include <algorithm>
#include <cmath>

#include "src/common/hashing.h"
#include "src/common/rng.h"

namespace focus::video {

namespace {

// Deterministic per-pixel noise in [-amplitude, +amplitude].
int PixelNoise(uint64_t seed, common::FrameIndex frame, int x, int y, int amplitude) {
  uint64_t h = common::HashCombine(seed, static_cast<uint64_t>(frame),
                                   (static_cast<uint64_t>(x) << 32) | static_cast<uint32_t>(y));
  return static_cast<int>(h % (2 * amplitude + 1)) - amplitude;
}

uint8_t Clamp8(int v) { return static_cast<uint8_t>(std::clamp(v, 0, 255)); }

}  // namespace

Renderer::Renderer(const StreamRun* run) : run_(run) {
  const StreamProfile& p = run_->profile();
  background_ = FrameBuffer(p.frame_width, p.frame_height);
  common::Pcg32 rng(common::DeriveSeed(run_->seed(), common::HashString("background")));
  // Smooth-ish background: low-frequency gradient plus mild texture.
  double gx = rng.NextDouble(0.1, 0.6);
  double gy = rng.NextDouble(0.1, 0.6);
  for (int y = 0; y < p.frame_height; ++y) {
    for (int x = 0; x < p.frame_width; ++x) {
      double base = 90.0 + 50.0 * std::sin(gx * x / 10.0) + 40.0 * std::cos(gy * y / 10.0);
      background_.Set(x, y, Clamp8(static_cast<int>(base + rng.NextInt(-8, 8))));
    }
  }
}

void Renderer::PaintObject(FrameBuffer& fb, const TrackedObject& obj, double t) const {
  const StreamProfile& p = run_->profile();
  double et = t - obj.enter_sec;
  int size = std::max(2, static_cast<int>(obj.size_px));
  int ox = static_cast<int>(
      std::fmod(std::abs(obj.x0 + obj.vx * et), std::max(1.0f, p.frame_width - obj.size_px)));
  int oy = static_cast<int>(
      std::fmod(std::abs(obj.y0 + obj.vy * et), std::max(1.0f, p.frame_height - obj.size_px)));
  // Object texture: deterministic per-object pattern that contrasts with background.
  common::Pcg32 tex_rng(obj.appearance_seed);
  int base_intensity = tex_rng.NextBool(0.5) ? tex_rng.NextInt(190, 250) : tex_rng.NextInt(5, 60);
  for (int dy = 0; dy < size; ++dy) {
    for (int dx = 0; dx < size; ++dx) {
      int x = ox + dx;
      int y = oy + dy;
      if (x < 0 || x >= fb.width() || y < 0 || y >= fb.height()) {
        continue;
      }
      uint64_t h = common::HashCombine(obj.appearance_seed, static_cast<uint64_t>(dx),
                                       static_cast<uint64_t>(dy));
      int texture = static_cast<int>(h % 40) - 20;
      fb.Set(x, y, Clamp8(base_intensity + texture));
    }
  }
}

FrameBuffer Renderer::Render(common::FrameIndex frame) const {
  const StreamProfile& p = run_->profile();
  double t = static_cast<double>(frame) / run_->fps();
  FrameBuffer fb = background_;
  // Slow illumination drift (clouds, sun angle) plus per-pixel sensor noise.
  int drift = static_cast<int>(6.0 * std::sin(2.0 * M_PI * t / 900.0));
  uint64_t noise_seed = common::DeriveSeed(run_->seed(), common::HashString("sensor-noise"));
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      int v = fb.At(x, y) + drift + PixelNoise(noise_seed, frame, x, y, 3);
      fb.Set(x, y, Clamp8(v));
    }
  }
  // Paint every object alive at t, stationary ones included.
  for (const TrackedObject& obj : run_->objects()) {
    if (obj.enter_sec > t) {
      break;  // Objects are sorted by arrival.
    }
    if (obj.exit_sec() <= t) {
      continue;
    }
    PaintObject(fb, obj, t);
  }
  return fb;
}

std::vector<BBox> Renderer::MovingObjectBoxes(common::FrameIndex frame) const {
  const StreamProfile& p = run_->profile();
  double t = static_cast<double>(frame) / run_->fps();
  std::vector<BBox> boxes;
  for (const TrackedObject& obj : run_->objects()) {
    if (obj.enter_sec > t) {
      break;
    }
    if (obj.exit_sec() <= t || obj.stationary) {
      continue;
    }
    double et = t - obj.enter_sec;
    BBox b;
    b.x = static_cast<float>(
        std::fmod(std::abs(obj.x0 + obj.vx * et), std::max(1.0f, p.frame_width - obj.size_px)));
    b.y = static_cast<float>(
        std::fmod(std::abs(obj.y0 + obj.vy * et), std::max(1.0f, p.frame_height - obj.size_px)));
    b.w = obj.size_px;
    b.h = obj.size_px;
    boxes.push_back(b);
  }
  return boxes;
}

}  // namespace focus::video
