// Moving-object detections: the unit of work flowing through ingest.
//
// A Detection is what background subtraction hands to the rest of the system: a
// bounding box in a specific frame, plus simulator-internal ground truth (the object's
// identity, true class, and current true appearance vector). Production code in
// src/core must never read |true_class| or |appearance| directly — it goes through
// src/cnn models, which add the model-dependent error; only cnn::GtOracle and the
// evaluation harness may look at the truth.
#ifndef FOCUS_SRC_VIDEO_DETECTION_H_
#define FOCUS_SRC_VIDEO_DETECTION_H_

#include <cstdint>

#include "src/common/feature_vector.h"
#include "src/common/time_types.h"

namespace focus::video {

struct BBox {
  float x = 0.0f;  // Top-left corner, pixels.
  float y = 0.0f;
  float w = 0.0f;
  float h = 0.0f;

  float Area() const { return w * h; }
  float CenterX() const { return x + w / 2.0f; }
  float CenterY() const { return y + h / 2.0f; }
};

// Intersection-over-union of two boxes; 0 when disjoint or degenerate.
float IoU(const BBox& a, const BBox& b);

struct Detection {
  common::FrameIndex frame = 0;
  common::ObjectId object_id = 0;
  BBox bbox;

  // True if ingest-time pixel differencing found this crop nearly identical to the
  // same object's crop in the previous sampled frame (§4.2 "Pixel Differencing of
  // Objects"): the cheap CNN can be skipped and the previous result reused.
  bool pixel_diff_suppressed = false;

  // True on the first sampled frame of this object's track.
  bool first_observation = false;

  // --- Simulator ground truth (see file comment for access discipline). ---
  common::ClassId true_class = common::kInvalidClass;
  // The object's current true appearance (unit vector); evolves as a random walk
  // across the track to model pose/scale change.
  common::FeatureVec appearance;
};

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_DETECTION_H_
