file(REMOVE_RECURSE
  "CMakeFiles/centroid_store_test.dir/tests/centroid_store_test.cc.o"
  "CMakeFiles/centroid_store_test.dir/tests/centroid_store_test.cc.o.d"
  "centroid_store_test"
  "centroid_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centroid_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
