// Frame handling and lifecycle edge cases of WorkerProcessPool
// (src/runtime/worker_process_pool.h).
//
// The load-bearing guarantees: a torn or oversized frame is a typed kIo —
// never a hang, never an unbounded allocation; a hung worker yields kTimeout
// under a call deadline instead of occupying the caller; and every lifecycle
// misuse (out-of-range index, double Start, Call after Shutdown, Kill on a
// reaped slot) is a typed error or a no-op, never UB. The wire cases hammer
// SendFrame/RecvFrame over a raw socketpair; the crash cases kill real
// processes.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <csignal>
#include <cstdint>
#include <string>

#include "src/common/fault_injection.h"
#include "src/common/result.h"
#include "src/runtime/worker_process_pool.h"

namespace focus::runtime {
namespace {

// A connected socketpair the wire tests write raw bytes into; closed on exit.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  void CloseA() {
    if (fds[0] >= 0) {
      ::close(fds[0]);
      fds[0] = -1;
    }
  }
  void CloseB() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
};

std::string EchoUpper(const std::string& request) {
  std::string out = request;
  for (char& c : out) {
    c = static_cast<char>(::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

// Handler for the hang tests: "HANG" parks the worker forever (the SIGKILL
// from the parent is its only exit); anything else echoes.
std::string HangOrEcho(const std::string& request) {
  if (request == "HANG") {
    while (true) {
      ::pause();
    }
  }
  return request;
}

// --- Wire level: SendFrame/RecvFrame over a raw socketpair ----------------

TEST(WorkerFrameTest, RoundtripsEmptyAndLargePayloads) {
  SocketPair s;
  std::string got;
  EXPECT_EQ(SendFrame(s.fds[0], "", CallDeadline::None()), FrameStatus::kOk);
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::None()), FrameStatus::kOk);
  EXPECT_EQ(got, "");

  const std::string big(1 << 20, 'x');
  // A 1 MiB frame overflows the socket buffer, so send and recv must overlap:
  // write from a child to keep the test single-purpose about framing.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const FrameStatus sent = SendFrame(s.fds[0], big, CallDeadline::None());
    ::_exit(sent == FrameStatus::kOk ? 0 : 1);
  }
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::None()), FrameStatus::kOk);
  EXPECT_EQ(got, big);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_EQ(status, 0);
}

TEST(WorkerFrameTest, EofBeforeAnyByteIsClosed) {
  SocketPair s;
  s.CloseA();
  std::string got;
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::None()), FrameStatus::kClosed);
}

TEST(WorkerFrameTest, PartialLengthPrefixIsTorn) {
  SocketPair s;
  const uint32_t len = 8;
  ASSERT_EQ(::send(s.fds[0], &len, 2, MSG_NOSIGNAL), 2);  // Half the prefix.
  s.CloseA();
  std::string got;
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::None()), FrameStatus::kTorn);
}

TEST(WorkerFrameTest, PartialPayloadIsTorn) {
  SocketPair s;
  const uint32_t len = 8;
  ASSERT_EQ(::send(s.fds[0], &len, sizeof(len), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(::send(s.fds[0], "torn", 4, MSG_NOSIGNAL), 4);  // 4 of 8 promised bytes.
  s.CloseA();
  std::string got;
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::None()), FrameStatus::kTorn);
}

TEST(WorkerFrameTest, CorruptLengthPrefixIsOversizeNotAllocation) {
  SocketPair s;
  const uint32_t len = kMaxFrameBytes + 1;  // Corrupt/hostile prefix.
  ASSERT_EQ(::send(s.fds[0], &len, sizeof(len), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(len)));
  std::string got;
  // Refused from the prefix alone: no payload bytes were ever sent, so a
  // decode that tried to allocate-and-read would hang here instead.
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::None()), FrameStatus::kOversize);
  EXPECT_EQ(SendFrame(s.fds[0], std::string(kMaxFrameBytes + 1, 'x'), CallDeadline::None()),
            FrameStatus::kOversize);
}

TEST(WorkerFrameTest, RecvTimesOutOnSilentPeer) {
  SocketPair s;
  std::string got;
  EXPECT_EQ(RecvFrame(s.fds[1], &got, CallDeadline::After(50)), FrameStatus::kTimeout);
}

// --- Pool lifecycle and typed errors --------------------------------------

TEST(WorkerProcessPoolTest, EchoAcrossWorkers) {
  WorkerProcessPool pool;
  ASSERT_TRUE(pool.Start(3, EchoUpper).ok());
  for (int i = 0; i < pool.size(); ++i) {
    auto reply = pool.Call(i, "hello " + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.error().message;
    EXPECT_EQ(*reply, "HELLO " + std::to_string(i));
  }
  pool.Shutdown();
}

TEST(WorkerProcessPoolTest, LifecycleMisuseIsTypedOrNoOp) {
  WorkerProcessPool pool;
  // Call before Start.
  EXPECT_EQ(pool.Call(0, "x").error().code, common::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pool.Start(0, EchoUpper).error().code, common::ErrorCode::kInvalidArgument);
  ASSERT_TRUE(pool.Start(2, EchoUpper).ok());
  // Start twice.
  EXPECT_EQ(pool.Start(2, EchoUpper).error().code,
            common::ErrorCode::kFailedPrecondition);
  // Out-of-range Call / Respawn; out-of-range Alive/Kill/worker_pid are benign.
  EXPECT_EQ(pool.Call(-1, "x").error().code, common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(pool.Call(2, "x").error().code, common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(pool.Respawn(7).error().code, common::ErrorCode::kInvalidArgument);
  EXPECT_FALSE(pool.Alive(-3));
  EXPECT_EQ(pool.worker_pid(9), -1);
  pool.Kill(9);
  // Oversized request is refused before touching the socket.
  EXPECT_EQ(pool.Call(0, std::string(kMaxFrameBytes + 1, 'x')).error().code,
            common::ErrorCode::kInvalidArgument);
  EXPECT_TRUE(pool.Call(0, "still fine").ok());
  // Kill on an already-reaped slot is a no-op, not a stray signal.
  pool.Kill(1);
  pool.Kill(1);
  EXPECT_FALSE(pool.Alive(1));
  EXPECT_EQ(pool.Call(1, "x").error().code, common::ErrorCode::kUnavailable);
  // Call after Shutdown.
  pool.Shutdown();
  EXPECT_EQ(pool.Call(0, "x").error().code, common::ErrorCode::kFailedPrecondition);
}

TEST(WorkerProcessPoolTest, KilledWorkerIsUnavailableAndSiblingsUnaffected) {
  WorkerProcessPool pool;
  ASSERT_TRUE(pool.Start(2, EchoUpper).ok());
  pool.Kill(0);
  EXPECT_EQ(pool.Call(0, "x").error().code, common::ErrorCode::kUnavailable);
  EXPECT_TRUE(pool.Call(1, "y").ok());
  ASSERT_TRUE(pool.Respawn(0).ok());
  auto reply = pool.Call(0, "back");
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  EXPECT_EQ(*reply, "BACK");
  pool.Shutdown();
}

TEST(WorkerProcessPoolTest, HungWorkerYieldsTimeoutThenRespawns) {
  WorkerProcessPool pool;
  ASSERT_TRUE(pool.Start(2, HangOrEcho).ok());
  auto hung = pool.Call(0, "HANG", /*deadline_millis=*/100);
  ASSERT_FALSE(hung.ok());
  EXPECT_EQ(hung.error().code, common::ErrorCode::kTimeout);
  // The worker is still occupied; the conversation is poisoned. Kill+Respawn
  // is the documented recovery, after which the slot serves again.
  EXPECT_TRUE(pool.Alive(0));
  ASSERT_TRUE(pool.Respawn(0).ok());
  auto reply = pool.Call(0, "ok", /*deadline_millis=*/2000);
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  EXPECT_EQ(*reply, "ok");
  pool.Shutdown();
}

// The satellite regression: a handler that writes a partial frame and _exits
// mid-reply must surface as typed kIo, with no hang and no trust in the
// half-frame. proc.handler is armed before Start so the forked child
// inherits it; its first request fires the crash.
TEST(WorkerProcessPoolTest, HandlerCrashMidReplyIsTypedIo) {
  common::FaultPlan plan;
  plan.FireOnHit("proc.handler", 1);
  common::ScopedFaultPlan armed(&plan);
  WorkerProcessPool pool;
  ASSERT_TRUE(pool.Start(1, EchoUpper).ok());
  auto torn = pool.Call(0, "boom", /*deadline_millis=*/5000);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.error().code, common::ErrorCode::kIo);
  EXPECT_NE(torn.error().message.find("torn frame"), std::string::npos)
      << torn.error().message;
  // The child's _exit(3) is reaped, the slot respawns, and — hit counters
  // being per-process copies — the respawned worker's first hit fires again,
  // proving every generation carries the inherited plan.
  ASSERT_TRUE(pool.Respawn(0).ok());
  auto torn_again = pool.Call(0, "boom", /*deadline_millis=*/5000);
  ASSERT_FALSE(torn_again.ok());
  EXPECT_EQ(torn_again.error().code, common::ErrorCode::kIo);
  pool.Shutdown();
}

// Parent-side fault sites: send faults leave the socket clean, recv faults
// poison it (the reply strands), spawn faults leave the slot empty but
// retryable.
TEST(WorkerProcessPoolTest, ParentRpcFaultSitesAreTyped) {
  WorkerProcessPool pool;
  ASSERT_TRUE(pool.Start(1, EchoUpper).ok());  // Arm after Start: parent-only.

  {
    common::FaultPlan plan;
    plan.FireOnHit("proc.rpc.send", 1);
    common::ScopedFaultPlan armed(&plan);
    auto failed = pool.Call(0, "a", 2000);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, common::ErrorCode::kIo);
    // Nothing was sent: the conversation is still clean.
    EXPECT_TRUE(pool.Call(0, "b", 2000).ok());
  }
  {
    common::FaultPlan plan;
    plan.FireOnHit("proc.rpc.recv", 1);
    common::ScopedFaultPlan armed(&plan);
    auto failed = pool.Call(0, "c", 2000);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, common::ErrorCode::kIo);
    // The reply to "c" is stranded in the socket; Respawn is the recovery.
    ASSERT_TRUE(pool.Respawn(0).ok());
    EXPECT_TRUE(pool.Call(0, "d", 2000).ok());
  }
  {
    common::FaultPlan plan;
    plan.FireOnHit("proc.spawn", 1);
    common::ScopedFaultPlan armed(&plan);
    auto failed = pool.Respawn(0);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, common::ErrorCode::kUnavailable);
    // The slot is empty but the pool is intact; the retry refills it.
    EXPECT_EQ(pool.Call(0, "e", 2000).error().code, common::ErrorCode::kUnavailable);
    ASSERT_TRUE(pool.Respawn(0).ok());
    EXPECT_TRUE(pool.Call(0, "f", 2000).ok());
  }
  pool.Shutdown();
}

}  // namespace
}  // namespace focus::runtime
