#include "src/runtime/ingest_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/runtime/worker_pool.h"

namespace focus::runtime {

IngestService::IngestService(IngestServiceOptions options, MetricsRegistry* metrics)
    : options_(options), metrics_(metrics != nullptr ? metrics : &GlobalMetrics()) {
  FOCUS_CHECK(options_.num_worker_threads >= 1);
  FOCUS_CHECK(options_.num_gpus >= 1);
  FOCUS_CHECK(options_.num_shards >= 0);
}

int64_t IngestService::FinalizeCadenceFor(const IngestJob& job) const {
  return options_.finalize_every_frames > 0 ? options_.finalize_every_frames
                                            : job.options.finalize_every_frames;
}

size_t IngestService::AddStream(IngestJob job) {
  FOCUS_CHECK(job.run != nullptr);
  if (FinalizeCadenceFor(job) > 0) {
    // Live stream: build the query-side context now, before any worker starts,
    // so concurrent LatestSnapshot/LiveContext lookups never race AddStream.
    FOCUS_CHECK(!live_.contains(job.name));
    auto context = std::make_unique<LiveStreamContext>();
    const video::ClassCatalog& catalog = job.run->catalog();
    context->ingest_cnn = std::make_unique<cnn::Cnn>(job.params.model, &catalog);
    context->gt_cnn =
        std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(catalog.world_seed()), &catalog);
    context->fps = job.run->fps();
    live_.emplace(job.name, std::move(context));
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::shared_ptr<const core::LiveSnapshot> IngestService::LatestSnapshot(
    const std::string& name) const {
  const LiveStreamContext* context = LiveContext(name);
  return context != nullptr ? context->slot.Latest() : nullptr;
}

const LiveStreamContext* IngestService::LiveContext(const std::string& name) const {
  auto it = live_.find(name);
  return it != live_.end() ? it->second.get() : nullptr;
}

FleetIngestSummary IngestService::RunAll() {
  FleetIngestSummary summary;
  summary.reports.resize(jobs_.size());

  // Phase 1: run every stream's ingest pipeline on the worker pool. Each worker
  // builds its own CNN instance; results land in pre-sized slots so no locking is
  // needed beyond the pool's own synchronization.
  {
    WorkerPool pool(options_.num_worker_threads, std::max<size_t>(jobs_.size(), 1));
    for (size_t i = 0; i < jobs_.size(); ++i) {
      pool.Submit([this, i, &summary] {
        const IngestJob& job = jobs_[i];
        cnn::Cnn cheap(job.params.model, &job.run->catalog());
        IngestReport& report = summary.reports[i];
        report.name = job.name;
        core::IngestOptions opts = job.options;
        if (options_.num_shards > 0) {
          opts.num_shards = options_.num_shards;
        }
        if (!options_.persist_dir.empty()) {
          opts.persist_dir = options_.persist_dir + "/" + job.name;
        }
        opts.finalize_every_frames = FinalizeCadenceFor(job);
        if (auto live = live_.find(job.name); live != live_.end()) {
          opts.snapshot_slot = &live->second->slot;
        }
        report.result = core::RunIngest(*job.run, cheap, job.params, opts);
        const double video_millis = job.run->duration_sec() * 1000.0;
        report.gpu_occupancy =
            video_millis > 0.0 ? report.result.gpu_millis / video_millis : 0.0;
      });
    }
    pool.Drain();
    pool.Shutdown();
  }

  // Phase 2: deterministic cluster accounting, in registration order. Each stream's
  // inference workload is submitted as one batch of per-inference jobs arriving at
  // time zero — the replay upper-bounds queueing because live ingest spreads arrivals
  // over the recording.
  GpuCluster cluster(options_.num_gpus);
  for (size_t i = 0; i < jobs_.size(); ++i) {
    const IngestJob& job = jobs_[i];
    IngestReport& report = summary.reports[i];
    cnn::Cnn cheap(job.params.model, &job.run->catalog());
    report.cluster_finish_millis = cluster.SubmitBatch(
        0.0, report.result.cnn_invocations, cheap.inference_cost_millis());
    summary.total_gpu_occupancy += report.gpu_occupancy;

    metrics_->IncrementCounter("ingest.detections", report.result.detections);
    metrics_->IncrementCounter("ingest.cnn_invocations", report.result.cnn_invocations);
    metrics_->IncrementCounter("ingest.suppressed", report.result.suppressed);
    metrics_->Observe("ingest.gpu_occupancy", report.gpu_occupancy);
  }
  summary.cluster = cluster.Stats();
  summary.min_gpus_for_realtime =
      std::max(1, static_cast<int>(std::ceil(summary.total_gpu_occupancy)));
  metrics_->SetGauge("ingest.min_gpus_for_realtime", summary.min_gpus_for_realtime);
  return summary;
}

double IngestService::CostPerStreamMonthly(double gpu_occupancy) const {
  return gpu_occupancy * options_.dollars_per_gpu_month;
}

}  // namespace focus::runtime
