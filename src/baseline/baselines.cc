#include "src/baseline/baselines.h"

#include <algorithm>

namespace focus::baseline {

IngestAllResult RunIngestAll(const video::StreamRun& run, const cnn::Cnn& gt_cnn) {
  IngestAllResult result;
  std::map<common::ClassId, std::vector<std::pair<common::FrameIndex, common::FrameIndex>>> raw;
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    for (const video::Detection& d : dets) {
      ++result.detections;
      result.ingest_gpu_millis += gt_cnn.inference_cost_millis();
      common::ClassId label = gt_cnn.Top1(d);
      auto& runs = raw[label];
      if (!runs.empty() && runs.back().second == frame) {
        continue;  // Already recorded for this frame.
      }
      if (!runs.empty() && runs.back().second == frame - 1) {
        runs.back().second = frame;
      } else {
        runs.emplace_back(frame, frame);
      }
    }
  });
  for (auto& [cls, runs] : raw) {
    result.frames_by_class[cls] = core::MergeFrameRuns(std::move(runs));
  }
  return result;
}

core::QueryResult QueryIngestAll(const IngestAllResult& index, common::ClassId cls) {
  core::QueryResult result;
  result.queried = cls;
  auto it = index.frames_by_class.find(cls);
  if (it != index.frames_by_class.end()) {
    result.frame_runs = it->second;
    for (const auto& [first, last] : result.frame_runs) {
      result.frames_returned += last - first + 1;
    }
  }
  // Query latency of Ingest-all is zero (§6.1): a pure index lookup.
  result.gpu_millis = 0.0;
  return result;
}

core::QueryResult RunQueryAll(const video::StreamRun& run, const cnn::Cnn& gt_cnn,
                              common::ClassId cls, common::TimeRange range) {
  core::QueryResult result;
  result.queried = cls;
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs;
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (!dets.empty() && !range.ContainsFrame(frame, run.fps())) {
      return;
    }
    for (const video::Detection& d : dets) {
      result.gpu_millis += gt_cnn.inference_cost_millis();
      ++result.centroids_classified;
      if (gt_cnn.Top1(d) == cls) {
        if (!runs.empty() && runs.back().second >= frame - 1) {
          runs.back().second = std::max(runs.back().second, frame);
        } else {
          runs.emplace_back(frame, frame);
        }
      }
    }
  });
  result.frame_runs = core::MergeFrameRuns(std::move(runs));
  for (const auto& [first, last] : result.frame_runs) {
    result.frames_returned += last - first + 1;
  }
  return result;
}

common::GpuMillis QueryAllCostMillis(const video::StreamRun& run, const cnn::Cnn& gt_cnn,
                                     common::TimeRange range) {
  int64_t detections = 0;
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (!dets.empty() && !range.ContainsFrame(frame, run.fps())) {
      return;
    }
    detections += static_cast<int64_t>(dets.size());
  });
  return static_cast<double>(detections) * gt_cnn.inference_cost_millis();
}

QueryTimeOnlyResult RunFocusQueryTimeOnly(const video::StreamRun& run,
                                          const cnn::Cnn& ingest_cnn, const cnn::Cnn& gt_cnn,
                                          const core::IngestParams& params, common::ClassId cls,
                                          const core::IngestOptions& options) {
  QueryTimeOnlyResult result;
  // All of Focus's ingest work happens lazily, inside the query.
  core::IngestResult ingest = core::RunIngest(run, ingest_cnn, params, options);
  core::QueryEngine engine(&ingest.index, &ingest_cnn, &gt_cnn);
  result.query = engine.Query(cls, params.k, {}, run.fps());
  result.total_gpu_millis = ingest.gpu_millis + result.query.gpu_millis;
  return result;
}

}  // namespace focus::baseline
