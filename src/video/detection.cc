#include "src/video/detection.h"

#include <algorithm>

namespace focus::video {

float IoU(const BBox& a, const BBox& b) {
  float ix = std::max(a.x, b.x);
  float iy = std::max(a.y, b.y);
  float ix2 = std::min(a.x + a.w, b.x + b.w);
  float iy2 = std::min(a.y + a.h, b.y + b.h);
  float iw = std::max(0.0f, ix2 - ix);
  float ih = std::max(0.0f, iy2 - iy);
  float inter = iw * ih;
  float uni = a.Area() + b.Area() - inter;
  if (uni <= 0.0f) {
    return 0.0f;
  }
  return inter / uni;
}

}  // namespace focus::video
