// Crash-recovery tests for the mmap-backed persistent clustering state: a
// clusterer recovered from arena + undo log + meta snapshot must be
// indistinguishable from one that processed the same stream prefix without the
// crash — subsequent assignments, cluster tables, and (through the pipeline)
// the final top-K index are byte-identical to an uninterrupted run (the
// `identical: true` discipline of PRs 1-3 applied to durability).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/cluster/sharded_clusterer.h"
#include "src/cnn/model_zoo.h"
#include "src/common/feature_vector.h"
#include "src/common/rng.h"
#include "src/core/ingest_pipeline.h"
#include "src/storage/arena_file.h"
#include "src/video/stream_generator.h"

namespace focus::cluster {
namespace {

namespace fs = std::filesystem;

// A deterministic detection stream: noisy observations of well-separated unit
// archetypes, with object locality (every object sticks to one archetype) so
// the fast path, AddSuppressed, and member-run merging are all exercised.
struct SyntheticStream {
  std::vector<video::Detection> detections;
  std::vector<common::FeatureVec> features;
  std::vector<bool> suppressed;
};

SyntheticStream MakeStream(size_t n, size_t dim, size_t num_objects, size_t num_archetypes,
                           uint64_t seed) {
  common::Pcg32 rng(common::DeriveSeed(seed, 0xA7EA));
  std::vector<common::FeatureVec> archetypes;
  archetypes.reserve(num_archetypes);
  for (size_t a = 0; a < num_archetypes; ++a) {
    archetypes.push_back(common::RandomUnitVector(dim, rng));
  }
  SyntheticStream out;
  out.detections.reserve(n);
  out.features.reserve(n);
  out.suppressed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t object = i % num_objects;
    video::Detection d;
    d.object_id = static_cast<common::ObjectId>(object);
    d.frame = static_cast<common::FrameIndex>(i / num_objects);
    out.detections.push_back(d);
    out.features.push_back(
        common::PerturbedUnitVector(archetypes[object % num_archetypes], 0.15, rng));
    // Every few repeat observations of an object ride the pixel-diff path.
    out.suppressed.push_back(i >= num_objects && (i % 5) == 0);
  }
  return out;
}

ClustererOptions SmallOptions(ClustererOptions::Mode mode) {
  ClustererOptions opts;
  opts.threshold = 0.5;
  opts.max_active = 24;  // Small cap so retirement (Remove + slot reuse) happens.
  opts.mode = mode;
  opts.lru_probes = 8;
  return opts;
}

int64_t Feed(IncrementalClusterer& clusterer, const SyntheticStream& stream, size_t i) {
  return stream.suppressed[i]
             ? clusterer.AddSuppressed(stream.detections[i], stream.features[i])
             : clusterer.Add(stream.detections[i], stream.features[i]);
}

int64_t Feed(ShardedClusterer& clusterer, const SyntheticStream& stream, size_t i) {
  return stream.suppressed[i]
             ? clusterer.AddSuppressed(stream.detections[i], stream.features[i])
             : clusterer.Add(stream.detections[i], stream.features[i]);
}

void ExpectSameClusters(const std::vector<Cluster>& a, const std::vector<Cluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].active, b[i].active);
    EXPECT_EQ(a[i].centroid, b[i].centroid) << "cluster " << a[i].id;
    EXPECT_EQ(a[i].representative.object_id, b[i].representative.object_id);
    EXPECT_EQ(a[i].representative.frame, b[i].representative.frame);
    ASSERT_EQ(a[i].members.size(), b[i].members.size());
    for (size_t m = 0; m < a[i].members.size(); ++m) {
      EXPECT_EQ(a[i].members[m].object, b[i].members[m].object);
      EXPECT_EQ(a[i].members[m].first_frame, b[i].members[m].first_frame);
      EXPECT_EQ(a[i].members[m].last_frame, b[i].members[m].last_frame);
    }
  }
}

class ArenaPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("arena_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// Simulates what a kernel crash leaves behind: garbage in the arena rows past
// the committed count (uncommitted appends partially flushed) and a torn,
// half-written frame at the undo log's tail (an append interrupted mid-write,
// whose row mutation therefore never executed).
void ScribbleCrashDebris(const std::string& arena_path, const std::string& undo_path) {
  auto arena = storage::ArenaFile::Open(arena_path);
  ASSERT_TRUE(arena.ok());
  if ((*arena)->initialized()) {
    std::vector<float> garbage((*arena)->dim(), 123456.75f);
    for (uint64_t row = (*arena)->committed_rows();
         row < std::min((*arena)->capacity_rows(), (*arena)->committed_rows() + 8); ++row) {
      (*arena)->WriteRow(row, -77, -77, -1.0f, garbage.data());
    }
  }
  std::ofstream f(undo_path, std::ios::binary | std::ios::app);
  f.write("\x80\x01\x00\x00\xde\xad", 6);  // Half a frame.
}

TEST_F(ArenaPersistenceTest, RecoveredAssignmentsByteIdenticalExactMode) {
  for (auto mode : {ClustererOptions::Mode::kExact, ClustererOptions::Mode::kFast}) {
    SCOPED_TRACE(mode == ClustererOptions::Mode::kExact ? "exact" : "fast");
    const std::string dir =
        Dir(mode == ClustererOptions::Mode::kExact ? "exact" : "fast");
    const SyntheticStream stream = MakeStream(1200, 32, 40, 12, 7);
    const size_t checkpoint_at = 500;
    const size_t crash_at = 800;

    // Reference: uninterrupted volatile run over the whole stream.
    IncrementalClusterer reference(SmallOptions(mode));
    std::vector<int64_t> ref_assignments(stream.detections.size());
    for (size_t i = 0; i < stream.detections.size(); ++i) {
      ref_assignments[i] = Feed(reference, stream, i);
    }

    // Persistent run: checkpoint mid-stream, keep mutating, crash (abandon).
    {
      auto victim = std::make_unique<IncrementalClusterer>(SmallOptions(mode));
      auto recovery = victim->OpenOrRecover(dir, "clusterer");
      ASSERT_TRUE(recovery.ok());
      EXPECT_FALSE(recovery->recovered);
      for (size_t i = 0; i < checkpoint_at; ++i) {
        int64_t assigned = Feed(*victim, stream, i);
        ASSERT_EQ(assigned, ref_assignments[i]) << "pre-checkpoint divergence at " << i;
      }
      ASSERT_TRUE(victim->Checkpoint(static_cast<int64_t>(checkpoint_at)).ok());
      for (size_t i = checkpoint_at; i < crash_at; ++i) {
        Feed(*victim, stream, i);  // The doomed window past the checkpoint.
      }
      // Crash: no final checkpoint; the object is simply dropped.
    }
    ScribbleCrashDebris(dir + "/clusterer.arena", dir + "/clusterer.undo");

    // Recover and replay from the checkpointed position.
    IncrementalClusterer recovered(SmallOptions(mode));
    auto recovery = recovered.OpenOrRecover(dir, "clusterer");
    ASSERT_TRUE(recovery.ok()) << recovery.error().message;
    ASSERT_TRUE(recovery->recovered);
    ASSERT_EQ(recovery->position, static_cast<int64_t>(checkpoint_at));
    for (size_t i = checkpoint_at; i < stream.detections.size(); ++i) {
      ASSERT_EQ(Feed(recovered, stream, i), ref_assignments[i])
          << "post-recovery divergence at " << i;
    }
    EXPECT_EQ(recovered.total_assignments(), reference.total_assignments());
    EXPECT_EQ(recovered.FastHitRate(), reference.FastHitRate());
    ExpectSameClusters(recovered.clusters(), reference.clusters());
  }
}

// Exhaustive crash sweep, replacing hand-picked crash points: a 200-frame
// stream is crashed at *every* frame boundary — every prefix of the stream,
// checkpointed on its natural cadence, scribbled with crash debris, recovered,
// and replayed to the end — and every recovery must be byte-identical to the
// uninterrupted reference.
TEST_F(ArenaPersistenceTest, CrashAtEveryFrameResumesByteIdentical) {
  constexpr size_t kFrames = 200;
  constexpr size_t kObjectsPerFrame = 6;  // frame = i / num_objects in MakeStream.
  constexpr int64_t kCheckpointEveryFrames = 7;  // Deliberately off-cadence.
  const SyntheticStream stream =
      MakeStream(kFrames * kObjectsPerFrame, 16, kObjectsPerFrame, 4, 29);

  IncrementalClusterer reference(SmallOptions(ClustererOptions::Mode::kFast));
  std::vector<int64_t> ref_assignments(stream.detections.size());
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    ref_assignments[i] = Feed(reference, stream, i);
  }

  for (size_t crash_frame = 0; crash_frame < kFrames; ++crash_frame) {
    const std::string dir = Dir("sweep-" + std::to_string(crash_frame));
    const size_t crash_at = crash_frame * kObjectsPerFrame;
    int64_t checkpointed_position = 0;
    {
      IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kFast));
      ASSERT_TRUE(victim.OpenOrRecover(dir, "c").ok());
      for (size_t i = 0; i < crash_at; ++i) {
        Feed(victim, stream, i);
        const size_t next = i + 1;
        if (next % (kObjectsPerFrame * kCheckpointEveryFrames) == 0) {
          checkpointed_position = static_cast<int64_t>(next);
          ASSERT_TRUE(victim.Checkpoint(checkpointed_position).ok());
        }
      }
      // Crash: drop the victim mid-window, no final checkpoint.
    }
    ScribbleCrashDebris(dir + "/c.arena", dir + "/c.undo");

    IncrementalClusterer recovered(SmallOptions(ClustererOptions::Mode::kFast));
    auto recovery = recovered.OpenOrRecover(dir, "c");
    ASSERT_TRUE(recovery.ok()) << "crash frame " << crash_frame << ": "
                               << recovery.error().message;
    ASSERT_EQ(recovery->recovered, checkpointed_position > 0);
    ASSERT_EQ(recovery->position, checkpointed_position);
    for (size_t i = static_cast<size_t>(recovery->position); i < stream.detections.size();
         ++i) {
      ASSERT_EQ(Feed(recovered, stream, i), ref_assignments[i])
          << "crash frame " << crash_frame << ", divergence at " << i;
    }
    ASSERT_EQ(recovered.total_assignments(), reference.total_assignments());
    ExpectSameClusters(recovered.clusters(), reference.clusters());
    fs::remove_all(dir);  // Keep the sweep's disk footprint one dir at a time.
  }
}

// Torn-tail sweep: the undo log is truncated at *every byte offset* spanning
// the last record appended before the crash — every torn tail a kernel crash
// can actually leave. Appends are write-ahead: the guarded row mutation only
// executes after the append returns, so a crash tearing the append leaves the
// arena in its pre-mutation state — the debris is therefore captured *before*
// the last logging feed, with the undo tail replayed on top at every cut.
// Each truncation must recover to the checkpoint and replay byte-identically.
TEST_F(ArenaPersistenceTest, TruncatedUndoTailAtEveryByteOffsetRecovers) {
  const SyntheticStream stream = MakeStream(900, 16, 30, 8, 33);
  const size_t checkpoint_at = 600;

  IncrementalClusterer reference(SmallOptions(ClustererOptions::Mode::kExact));
  std::vector<int64_t> ref_assignments(stream.detections.size());
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    ref_assignments[i] = Feed(reference, stream, i);
  }

  const std::string dir = Dir("undo-sweep");
  const std::string undo_path = dir + "/c.undo";
  const std::string base = Dir("undo-sweep-base");      // State before the last append.
  const std::string staging = Dir("undo-sweep-staging");
  std::string undo_after;  // Full undo contents right after the last append.
  {
    IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kExact));
    ASSERT_TRUE(victim.OpenOrRecover(dir, "c").ok());
    for (size_t i = 0; i < checkpoint_at; ++i) {
      Feed(victim, stream, i);
    }
    ASSERT_TRUE(victim.Checkpoint(static_cast<int64_t>(checkpoint_at)).ok());
    // Mutate into the fresh undo window. Pre-images log once per row per
    // window, so not every feed appends; keep the pre-feed state of the *last*
    // feed that did (the writer flushes per append, and mmap'd arena writes
    // read back through the file, so mid-run copies are exact).
    auto read_file = [](const std::string& path) {
      std::ifstream in(path, std::ios::binary);
      return std::string(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    };
    for (size_t i = checkpoint_at; i < checkpoint_at + 120; ++i) {
      fs::remove_all(staging);
      fs::copy(dir, staging, fs::copy_options::recursive);
      const uintmax_t before = fs::file_size(undo_path);
      Feed(victim, stream, i);
      if (fs::file_size(undo_path) > before) {
        fs::remove_all(base);
        fs::rename(staging, base);
        undo_after = read_file(undo_path);
      }
    }
    fs::remove_all(staging);
    // Crash.
  }
  ASSERT_TRUE(fs::exists(base)) << "no feed logged a pre-image";
  const uintmax_t base_undo_size = fs::file_size(base + "/c.undo");
  ASSERT_GT(undo_after.size(), base_undo_size);

  for (uintmax_t cut = base_undo_size; cut <= undo_after.size(); ++cut) {
    fs::remove_all(dir);
    fs::copy(base, dir, fs::copy_options::recursive);
    std::ofstream undo(undo_path, std::ios::binary | std::ios::trunc);
    undo.write(undo_after.data(), static_cast<std::streamsize>(cut));
    undo.close();

    IncrementalClusterer recovered(SmallOptions(ClustererOptions::Mode::kExact));
    auto recovery = recovered.OpenOrRecover(dir, "c");
    ASSERT_TRUE(recovery.ok()) << "cut " << cut << ": " << recovery.error().message;
    ASSERT_TRUE(recovery->recovered);
    ASSERT_EQ(recovery->position, static_cast<int64_t>(checkpoint_at));
    for (size_t i = checkpoint_at; i < stream.detections.size(); ++i) {
      ASSERT_EQ(Feed(recovered, stream, i), ref_assignments[i])
          << "cut " << cut << ", divergence at " << i;
    }
    ExpectSameClusters(recovered.clusters(), reference.clusters());
  }
  fs::remove_all(base);
}

TEST_F(ArenaPersistenceTest, CrashBeforeFirstCheckpointRecoversFresh) {
  const std::string dir = Dir("nocheckpoint");
  const SyntheticStream stream = MakeStream(200, 16, 10, 4, 11);
  {
    IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kExact));
    auto recovery = victim.OpenOrRecover(dir, "c");
    ASSERT_TRUE(recovery.ok());
    for (size_t i = 0; i < stream.detections.size(); ++i) {
      Feed(victim, stream, i);
    }
    // Crash before any Checkpoint: nothing was committed.
  }
  IncrementalClusterer recovered(SmallOptions(ClustererOptions::Mode::kExact));
  auto recovery = recovered.OpenOrRecover(dir, "c");
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery->recovered);
  EXPECT_EQ(recovery->position, 0);
  EXPECT_EQ(recovered.num_clusters(), 0u);
}

TEST_F(ArenaPersistenceTest, EmptyCheckpointRoundTrips) {
  const std::string dir = Dir("empty");
  {
    IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kExact));
    ASSERT_TRUE(victim.OpenOrRecover(dir, "c").ok());
    // Checkpoint before the first detection ever arrives (an idle stream).
    ASSERT_TRUE(victim.Checkpoint(0).ok());
  }
  IncrementalClusterer recovered(SmallOptions(ClustererOptions::Mode::kExact));
  auto recovery = recovered.OpenOrRecover(dir, "c");
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery->recovered);
  EXPECT_EQ(recovery->position, 0);
  EXPECT_EQ(recovered.num_clusters(), 0u);
  // And it keeps working after recovery.
  const SyntheticStream stream = MakeStream(50, 16, 5, 2, 3);
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    Feed(recovered, stream, i);
  }
  EXPECT_GT(recovered.num_clusters(), 0u);
}

TEST_F(ArenaPersistenceTest, FirstDetectionAfterEmptyCheckpointRecovers) {
  // The crash window that used to brick recovery: a checkpoint commits the
  // *empty* state (generation 0, arena still uninitialized), the first
  // detection then initializes the arena, and the worker crashes before the
  // next checkpoint. Recovery must roll the initialized-but-uncommitted arena
  // back to the empty checkpoint, not refuse it as corruption.
  const std::string dir = Dir("late-first-add");
  const SyntheticStream stream = MakeStream(300, 16, 12, 4, 21);
  {
    IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kExact));
    ASSERT_TRUE(victim.OpenOrRecover(dir, "c").ok());
    ASSERT_TRUE(victim.Checkpoint(0).ok());  // Idle stream: empty checkpoint.
    for (size_t i = 0; i < stream.detections.size(); ++i) {
      Feed(victim, stream, i);  // Arena initialized + grown, never committed.
    }
    // Crash.
  }
  IncrementalClusterer reference(SmallOptions(ClustererOptions::Mode::kExact));
  IncrementalClusterer recovered(SmallOptions(ClustererOptions::Mode::kExact));
  auto recovery = recovered.OpenOrRecover(dir, "c");
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery->recovered);
  EXPECT_EQ(recovery->position, 0);
  EXPECT_EQ(recovered.num_clusters(), 0u);
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    ASSERT_EQ(Feed(recovered, stream, i), Feed(reference, stream, i)) << "at " << i;
  }
  ExpectSameClusters(recovered.clusters(), reference.clusters());

  // Same window at the sharded layer: shard 4's meta records generation 0 for
  // any shard whose first object arrives after a checkpoint.
  ShardedClustererOptions sopts;
  sopts.base = SmallOptions(ClustererOptions::Mode::kExact);
  sopts.num_shards = 4;
  const std::string sdir = Dir("late-first-add-sharded");
  {
    ShardedClusterer victim(sopts);
    ASSERT_TRUE(victim.OpenOrRecover(sdir).ok());
    ASSERT_TRUE(victim.Checkpoint(0).ok());
    for (size_t i = 0; i < stream.detections.size(); ++i) {
      Feed(victim, stream, i);
    }
    // Crash.
  }
  ShardedClusterer sharded_reference(sopts);
  ShardedClusterer sharded_recovered(sopts);
  auto sharded_recovery = sharded_recovered.OpenOrRecover(sdir);
  ASSERT_TRUE(sharded_recovery.ok()) << sharded_recovery.error().message;
  EXPECT_EQ(sharded_recovery->position, 0);
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    ASSERT_EQ(Feed(sharded_recovered, stream, i), Feed(sharded_reference, stream, i));
  }
  ExpectSameClusters(sharded_recovered.FinalizeClusters(), sharded_reference.FinalizeClusters());
}

TEST_F(ArenaPersistenceTest, CrashBetweenMetaCommitAndLogRotationRecovers) {
  // The checkpoint sequence is commit header -> write meta (the commit point)
  // -> rotate undo log. A crash between the last two leaves the *previous*
  // window's marker and pre-images in the log while header and meta already
  // describe the new checkpoint; recovery must treat those records as stale
  // (they are baked into the commit), not as corruption.
  const std::string dir = Dir("pre-rotation-crash");
  const SyntheticStream stream = MakeStream(900, 16, 30, 8, 17);
  const size_t first_checkpoint = 300;
  const size_t second_checkpoint = 600;

  IncrementalClusterer reference(SmallOptions(ClustererOptions::Mode::kExact));
  std::vector<int64_t> ref_assignments(stream.detections.size());
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    ref_assignments[i] = Feed(reference, stream, i);
  }

  const std::string undo_path = dir + "/c.undo";
  const std::string undo_backup = dir + "/c.undo.prerotation";
  {
    IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kExact));
    ASSERT_TRUE(victim.OpenOrRecover(dir, "c").ok());
    for (size_t i = 0; i < first_checkpoint; ++i) {
      Feed(victim, stream, i);
    }
    ASSERT_TRUE(victim.Checkpoint(static_cast<int64_t>(first_checkpoint)).ok());
    for (size_t i = first_checkpoint; i < second_checkpoint; ++i) {
      Feed(victim, stream, i);  // Logs pre-images into the first window.
    }
    fs::copy_file(undo_path, undo_backup);  // The log as of just before rotation.
    ASSERT_TRUE(victim.Checkpoint(static_cast<int64_t>(second_checkpoint)).ok());
  }
  // Simulate the crash window: header + meta describe the second checkpoint,
  // but the undo log was never rotated.
  fs::copy_file(undo_backup, undo_path, fs::copy_options::overwrite_existing);
  fs::remove(undo_backup);

  IncrementalClusterer recovered(SmallOptions(ClustererOptions::Mode::kExact));
  auto recovery = recovered.OpenOrRecover(dir, "c");
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  ASSERT_TRUE(recovery->recovered);
  ASSERT_EQ(recovery->position, static_cast<int64_t>(second_checkpoint));
  for (size_t i = second_checkpoint; i < stream.detections.size(); ++i) {
    ASSERT_EQ(Feed(recovered, stream, i), ref_assignments[i]) << "at " << i;
  }
  ExpectSameClusters(recovered.clusters(), reference.clusters());
}

TEST_F(ArenaPersistenceTest, MismatchedOptionsRefuseRecovery) {
  const std::string dir = Dir("mismatch");
  {
    IncrementalClusterer victim(SmallOptions(ClustererOptions::Mode::kExact));
    ASSERT_TRUE(victim.OpenOrRecover(dir, "c").ok());
    const SyntheticStream stream = MakeStream(100, 16, 10, 4, 5);
    for (size_t i = 0; i < stream.detections.size(); ++i) {
      Feed(victim, stream, i);
    }
    ASSERT_TRUE(victim.Checkpoint(100).ok());
  }
  ClustererOptions different = SmallOptions(ClustererOptions::Mode::kExact);
  different.threshold = 0.7;  // Not what the checkpoint was built with.
  IncrementalClusterer recovered(different);
  auto recovery = recovered.OpenOrRecover(dir, "c");
  ASSERT_FALSE(recovery.ok());
  EXPECT_EQ(recovery.error().code, common::ErrorCode::kFailedPrecondition);
}

TEST_F(ArenaPersistenceTest, ShardedRecoveryByteIdenticalAtFourShards) {
  const std::string dir = Dir("sharded");
  const SyntheticStream stream = MakeStream(2000, 32, 60, 10, 13);
  const size_t checkpoint_at = 900;
  const size_t crash_at = 1400;

  ShardedClustererOptions sopts;
  sopts.base = SmallOptions(ClustererOptions::Mode::kFast);
  sopts.num_shards = 4;
  sopts.merge_interval = 512;

  ShardedClusterer reference(sopts);
  std::vector<int64_t> ref_assignments(stream.detections.size());
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    ref_assignments[i] = Feed(reference, stream, i);
  }

  {
    auto victim = std::make_unique<ShardedClusterer>(sopts);
    auto recovery = victim->OpenOrRecover(dir);
    ASSERT_TRUE(recovery.ok());
    EXPECT_FALSE(recovery->recovered);
    for (size_t i = 0; i < checkpoint_at; ++i) {
      ASSERT_EQ(Feed(*victim, stream, i), ref_assignments[i]);
    }
    ASSERT_TRUE(victim->Checkpoint(static_cast<int64_t>(checkpoint_at), "cursor-blob").ok());
    for (size_t i = checkpoint_at; i < crash_at; ++i) {
      Feed(*victim, stream, i);
    }
    // Crash mid-window.
  }
  for (size_t s = 0; s < sopts.num_shards; ++s) {
    ScribbleCrashDebris(dir + "/shard-" + std::to_string(s) + ".arena",
                        dir + "/shard-" + std::to_string(s) + ".undo");
  }

  ShardedClusterer recovered(sopts);
  auto recovery = recovered.OpenOrRecover(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  ASSERT_TRUE(recovery->recovered);
  EXPECT_EQ(recovery->position, static_cast<int64_t>(checkpoint_at));
  EXPECT_EQ(recovery->user_state, "cursor-blob");
  for (size_t i = checkpoint_at; i < stream.detections.size(); ++i) {
    ASSERT_EQ(Feed(recovered, stream, i), ref_assignments[i])
        << "post-recovery divergence at " << i;
  }
  EXPECT_EQ(recovered.total_assignments(), reference.total_assignments());
  EXPECT_EQ(recovered.merges_folded(), reference.merges_folded());

  std::vector<Cluster> ref_table = reference.FinalizeClusters();
  std::vector<Cluster> rec_table = recovered.FinalizeClusters();
  ExpectSameClusters(rec_table, ref_table);
}

class PipelinePersistenceTest : public ArenaPersistenceTest {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(17);
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    run_ = new video::StreamRun(catalog_, profile, 60.0, 30.0, 3);
  }
  static void TearDownTestSuite() {
    delete run_;
    delete catalog_;
    run_ = nullptr;
    catalog_ = nullptr;
  }

  static core::IngestParams Params() {
    core::IngestParams params;
    params.model = cnn::GenericCheapCandidates(5)[1];
    params.k = 3;
    params.cluster_threshold = 0.6;
    return params;
  }

  static void ExpectSameResult(const core::IngestResult& a, const core::IngestResult& b) {
    EXPECT_EQ(a.detections, b.detections);
    EXPECT_EQ(a.cnn_invocations, b.cnn_invocations);
    EXPECT_EQ(a.suppressed, b.suppressed);
    EXPECT_DOUBLE_EQ(a.gpu_millis, b.gpu_millis);
    EXPECT_EQ(a.num_clusters, b.num_clusters);
    ASSERT_EQ(a.index.num_clusters(), b.index.num_clusters());
    for (size_t i = 0; i < a.index.num_clusters(); ++i) {
      const index::ClusterEntry& ca = a.index.clusters()[i];
      const index::ClusterEntry& cb = b.index.clusters()[i];
      EXPECT_EQ(ca.cluster_id, cb.cluster_id);
      EXPECT_EQ(ca.size, cb.size);
      EXPECT_EQ(ca.topk_classes, cb.topk_classes);
      EXPECT_EQ(ca.topk_ranks, cb.topk_ranks);
      ASSERT_EQ(ca.members.size(), cb.members.size());
      for (size_t m = 0; m < ca.members.size(); ++m) {
        EXPECT_EQ(ca.members[m].object, cb.members[m].object);
        EXPECT_EQ(ca.members[m].first_frame, cb.members[m].first_frame);
        EXPECT_EQ(ca.members[m].last_frame, cb.members[m].last_frame);
      }
    }
  }

  static video::ClassCatalog* catalog_;
  static video::StreamRun* run_;
};

video::ClassCatalog* PipelinePersistenceTest::catalog_ = nullptr;
video::StreamRun* PipelinePersistenceTest::run_ = nullptr;

TEST_F(PipelinePersistenceTest, ResumedIngestMatchesUninterruptedAndVolatile) {
  for (int num_shards : {1, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    cnn::Cnn cheap(Params().model, catalog_);

    core::IngestOptions volatile_opts;
    volatile_opts.num_shards = num_shards;
    const core::IngestResult plain = core::RunIngest(*run_, cheap, Params(), volatile_opts);

    core::IngestOptions persist_opts = volatile_opts;
    persist_opts.checkpoint_every_frames = 300;
    persist_opts.persist_dir = Dir("uninterrupted-" + std::to_string(num_shards));
    const core::IngestResult uninterrupted =
        core::RunIngestResumable(*run_, cheap, Params(), persist_opts);
    EXPECT_EQ(uninterrupted.resumed_from_frame, 0);
    // The persistent path must not change results vs volatile ingest.
    ExpectSameResult(uninterrupted, plain);

    // Crash at mid-stream, then resume: byte-identical to uninterrupted.
    core::IngestOptions crash_opts = persist_opts;
    crash_opts.persist_dir = Dir("crashed-" + std::to_string(num_shards));
    crash_opts.crash_after_frames = run_->num_frames() / 2;
    const core::IngestResult partial =
        core::RunIngestResumable(*run_, cheap, Params(), crash_opts);
    EXPECT_EQ(partial.index.num_clusters(), 0u);  // Crashed: nothing finalized.

    core::IngestOptions resume_opts = crash_opts;
    resume_opts.crash_after_frames = -1;
    const core::IngestResult resumed =
        core::RunIngestResumable(*run_, cheap, Params(), resume_opts);
    EXPECT_GT(resumed.resumed_from_frame, 0);
    ExpectSameResult(resumed, uninterrupted);

    // Re-running a sealed stream is a no-op resume with the same result.
    const core::IngestResult rerun =
        core::RunIngestResumable(*run_, cheap, Params(), resume_opts);
    EXPECT_EQ(rerun.resumed_from_frame, run_->num_frames());
    ExpectSameResult(rerun, uninterrupted);
  }
}

TEST_F(PipelinePersistenceTest, PooledShardDispatchIsDeterministicAcrossRuns) {
  // Sharded resumable ingest dispatches each frame's assignments through a
  // WorkerPool (one ordered task per shard). The object-id partition fixes
  // every shard's input subsequence, so thread interleaving must not leak into
  // the output: repeated runs are byte-identical to each other and to the
  // volatile sharded path, at 1 and 4 shards.
  for (int num_shards : {1, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    cnn::Cnn cheap(Params().model, catalog_);
    core::IngestOptions volatile_opts;
    volatile_opts.num_shards = num_shards;
    const core::IngestResult plain = core::RunIngest(*run_, cheap, Params(), volatile_opts);

    core::IngestOptions persist_opts = volatile_opts;
    persist_opts.checkpoint_every_frames = 150;
    core::IngestResult first;
    for (int attempt = 0; attempt < 2; ++attempt) {
      persist_opts.persist_dir = Dir("pooled-" + std::to_string(num_shards) + "-" +
                                     std::to_string(attempt));
      const core::IngestResult run =
          core::RunIngestResumable(*run_, cheap, Params(), persist_opts);
      ExpectSameResult(run, plain);
      if (attempt == 0) {
        first = run;
      } else {
        ExpectSameResult(run, first);
      }
    }
  }
}

TEST_F(PipelinePersistenceTest, TightCheckpointCadenceStaysByteIdentical) {
  // checkpoint_every_frames at or below the reuse-map eviction gap: the
  // post-resume eviction sweeps run before a long-idle (but still live-mapped)
  // entry would naturally re-register, so the recovered run must see the same
  // idle gaps — last_seen is checkpointed with the maps.
  cnn::Cnn cheap(Params().model, catalog_);
  core::IngestOptions opts;
  opts.checkpoint_every_frames = 6;  // <= the eviction gap of 8.
  opts.persist_dir = Dir("tight-uninterrupted");
  const core::IngestResult uninterrupted =
      core::RunIngestResumable(*run_, cheap, Params(), opts);

  core::IngestOptions crash_opts = opts;
  crash_opts.persist_dir = Dir("tight-crashed");
  crash_opts.crash_after_frames = run_->num_frames() / 2;
  core::RunIngestResumable(*run_, cheap, Params(), crash_opts);
  crash_opts.crash_after_frames = -1;
  const core::IngestResult resumed =
      core::RunIngestResumable(*run_, cheap, Params(), crash_opts);
  EXPECT_GT(resumed.resumed_from_frame, 0);
  ExpectSameResult(resumed, uninterrupted);
}

}  // namespace
}  // namespace focus::cluster
