#include "src/video/flaky_stream.h"

#include "src/common/rng.h"

namespace focus::video {

SweepStats FlakyStreamRun::ForEachFrame(const FrameCallback& callback) const {
  const int attempt = attempts_++;
  common::Pcg32 rng(common::DeriveSeed(options_.seed, static_cast<uint64_t>(attempt)));
  const common::FrameIndex abort_at =
      attempt < static_cast<int>(options_.restart_at_frames.size())
          ? options_.restart_at_frames[static_cast<size_t>(attempt)]
          : -1;
  bool aborted = false;
  common::FrameIndex flap_until = 0;

  SweepStats stats =
      StreamRun::ForEachFrame([&](common::FrameIndex frame, const std::vector<Detection>& dets) {
        if (aborted) {
          return;  // The uplink is gone; swallow the rest of the recording.
        }
        if (abort_at >= 0 && frame >= abort_at) {
          aborted = true;
          return;
        }
        if (frame < flap_until) {
          return;  // Camera dark.
        }
        if (options_.flap_probability > 0.0 && rng.NextBool(options_.flap_probability)) {
          flap_until = frame + options_.flap_length_frames;
          return;
        }
        if (options_.drop_probability > 0.0 && rng.NextBool(options_.drop_probability)) {
          return;
        }
        callback(frame, dets);
        if (options_.duplicate_probability > 0.0 &&
            rng.NextBool(options_.duplicate_probability)) {
          callback(frame, dets);
        }
      });
  stats.aborted = aborted;
  return stats;
}

}  // namespace focus::video
