// Bounded multi-producer multi-consumer task queue.
//
// The coordination primitive behind the §5 worker-process model: ingest workers pull
// per-stream work items, and query workers pull centroid-classification shards. The
// queue is bounded so a slow consumer applies backpressure to producers instead of
// letting work pile up unboundedly (the paper's ingest must keep up with live video).
#ifndef FOCUS_SRC_RUNTIME_TASK_QUEUE_H_
#define FOCUS_SRC_RUNTIME_TASK_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace focus::runtime {

template <typename T>
class TaskQueue {
 public:
  // |capacity| bounds the number of queued items; 0 is invalid.
  explicit TaskQueue(size_t capacity) : capacity_(capacity) { FOCUS_CHECK(capacity > 0); }

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Blocks until there is room, then enqueues. Returns false iff the queue was
  // closed (the item is dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking enqueue; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained; nullopt
  // means "closed and empty" (the consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Batch variant of Pop(): blocks until at least one item is available (or the
  // queue is closed and drained), then appends up to |max_items| items to |out|
  // in FIFO order and returns how many were taken. Returns 0 iff the queue is
  // closed and empty — which is why |max_items| must be >= 1: a zero-size batch
  // would alias the consumer-exit sentinel on an open queue. One lock
  // acquisition per batch amortizes lock and wakeup traffic for consumers that
  // can accept several work items at once (e.g. ingest workers pulling
  // per-detection tasks).
  size_t PopBatch(std::vector<T>& out, size_t max_items) {
    FOCUS_CHECK(max_items >= 1);
    size_t taken = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      while (taken < max_items && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    if (taken > 1) {
      not_full_.notify_all();
    } else if (taken == 1) {
      not_full_.notify_one();
    }
    return taken;
  }

  // Closes the queue: producers fail, consumers drain the backlog then get nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_TASK_QUEUE_H_
