file(REMOVE_RECURSE
  "libfocus_lib.a"
)
