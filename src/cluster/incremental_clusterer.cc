#include "src/cluster/incremental_clusterer.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "src/common/simd_distance.h"

namespace focus::cluster {

namespace {

// How many trailing member runs to scan when extending an object's frame run.
constexpr size_t kRunMergeScan = 8;

void AppendMember(Cluster& cluster, const video::Detection& detection) {
  // Extend an existing run when this is the next sampled frame of the same object.
  size_t scanned = 0;
  for (auto it = cluster.members.rbegin();
       it != cluster.members.rend() && scanned < kRunMergeScan; ++it, ++scanned) {
    if (it->object == detection.object_id) {
      if (detection.frame == it->last_frame + 1) {
        it->last_frame = detection.frame;
        return;
      }
      break;  // Same object but non-contiguous: new run.
    }
  }
  MemberRun run;
  run.object = detection.object_id;
  run.first_frame = detection.frame;
  run.last_frame = detection.frame;
  cluster.members.push_back(run);
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(ClustererOptions options) : options_(options) {
  store_.SetHeadDim(options_.head_dim);
}

void IncrementalClusterer::Reset(ClustererOptions options) {
  options_ = options;
  clusters_.clear();
  store_.Reset();
  store_.SetHeadDim(options_.head_dim);
  retire_heap_.clear();
  last_cluster_of_object_.clear();
  lru_.clear();
  total_assignments_ = 0;
  fast_hits_ = 0;
  fast_lookups_ = 0;
}

double IncrementalClusterer::FastHitRate() const {
  return fast_lookups_ > 0 ? static_cast<double>(fast_hits_) / static_cast<double>(fast_lookups_)
                           : 0.0;
}

int64_t IncrementalClusterer::CreateCluster(const video::Detection& detection,
                                            const common::FeatureVec& feature) {
  // Retire *before* inserting: retiring after could evict the just-created
  // size-1 cluster while it is still handed out as the assignment target.
  if (store_.size() >= options_.max_active) {
    RetireSmallest();
  }
  Cluster c;
  c.id = static_cast<int64_t>(clusters_.size());
  c.centroid = feature;
  c.size = 1;
  c.representative = detection;
  AppendMember(c, detection);
  clusters_.push_back(std::move(c));
  const int64_t id = clusters_.back().id;
  store_.Add(id, clusters_.back().centroid.data(), clusters_.back().centroid.size(), 1);
  retire_heap_.emplace_back(1, id);
  std::push_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
  TouchLru(id);
  return id;
}

void IncrementalClusterer::Join(Cluster& cluster, const video::Detection& detection,
                                const common::FeatureVec& feature) {
  // Running-mean centroid update.
  double w = 1.0 / static_cast<double>(cluster.size + 1);
  for (size_t i = 0; i < cluster.centroid.size(); ++i) {
    cluster.centroid[i] =
        static_cast<float>(cluster.centroid[i] * (1.0 - w) + feature[i] * w);
  }
  ++cluster.size;
  AppendMember(cluster, detection);
  store_.Update(cluster.id, cluster.centroid.data());
  store_.SetSize(cluster.id, cluster.size);
}

void IncrementalClusterer::RetireSmallest() {
  // Lazy heap: a popped entry whose size is stale (the cluster grew since push)
  // is re-keyed at its current size; the first fresh pop is the minimum over
  // current sizes (sizes only grow), with ties on the smaller id — the same
  // cluster the seed's first-seen min_element scan picked.
  while (!retire_heap_.empty()) {
    std::pop_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
    const auto [size_at_push, id] = retire_heap_.back();
    retire_heap_.pop_back();
    Cluster& c = clusters_[static_cast<size_t>(id)];
    if (!c.active) {
      continue;
    }
    if (c.size != size_at_push) {
      retire_heap_.emplace_back(c.size, id);
      std::push_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
      continue;
    }
    c.active = false;
    store_.Remove(id);
    return;
  }
}

void IncrementalClusterer::TouchLru(int64_t id) {
  // Move-to-front with dedup: leaving stale occurrences in place would let one
  // hot cluster occupy several of the lru_probes slots in Add's probe loop,
  // silently narrowing the set of distinct clusters the fast path considers.
  if (!lru_.empty() && lru_.front() == id) {
    return;
  }
  auto it = std::find(lru_.begin(), lru_.end(), id);
  if (it != lru_.end()) {
    lru_.erase(it);
  }
  lru_.push_front(id);
  if (lru_.size() > options_.lru_probes) {
    lru_.pop_back();
  }
}

float IncrementalClusterer::ActiveDistance(int64_t id, const common::FeatureVec& feature,
                                           float bound) const {
  const float* row = store_.CentroidOf(id);
  if (row == nullptr) {
    return std::numeric_limits<float>::max();
  }
  return common::simd::SquaredL2Bounded(feature.data(), row, feature.size(), bound);
}

int64_t IncrementalClusterer::Add(const video::Detection& detection,
                                  const common::FeatureVec& feature) {
  ++total_assignments_;
  const float threshold_sq = static_cast<float>(options_.threshold * options_.threshold);

  if (options_.mode == ClustererOptions::Mode::kFast) {
    ++fast_lookups_;
    // 1. The cluster this object joined most recently.
    auto it = last_cluster_of_object_.find(detection.object_id);
    if (it != last_cluster_of_object_.end() &&
        ActiveDistance(it->second, feature, threshold_sq) <= threshold_sq) {
      Cluster& c = clusters_[static_cast<size_t>(it->second)];
      Join(c, detection, feature);
      ++fast_hits_;
      return c.id;
    }
    // 2. Recently used clusters. Retired ids are dropped from the deque as they
    // are encountered, without charging a probe: every one of the lru_probes
    // attempts goes to a distinct live cluster.
    size_t probes = 0;
    for (auto it = lru_.begin(); it != lru_.end() && probes < options_.lru_probes;) {
      const int64_t id = *it;
      if (!clusters_[static_cast<size_t>(id)].active) {
        it = lru_.erase(it);
        continue;
      }
      ++probes;
      if (ActiveDistance(id, feature, threshold_sq) <= threshold_sq) {
        Cluster& c = clusters_[static_cast<size_t>(id)];
        Join(c, detection, feature);
        last_cluster_of_object_[detection.object_id] = c.id;
        TouchLru(c.id);
        ++fast_hits_;
        return c.id;
      }
      ++it;
    }
  }

  // Full scan: closest active cluster within T (norm prune + batched SIMD over
  // the contiguous store; first-seen tie semantics preserved via smallest-id).
  float best_dist = 0.0f;
  const int64_t best =
      store_.FindNearest(feature.data(), feature.size(), threshold_sq, &best_dist);
  if (best >= 0) {
    Cluster& c = clusters_[static_cast<size_t>(best)];
    Join(c, detection, feature);
    last_cluster_of_object_[detection.object_id] = c.id;
    TouchLru(c.id);
    return c.id;
  }

  int64_t id = CreateCluster(detection, feature);
  last_cluster_of_object_[detection.object_id] = id;
  return id;
}

int64_t IncrementalClusterer::AddSuppressed(const video::Detection& detection,
                                            const common::FeatureVec& feature) {
  ++total_assignments_;
  auto it = last_cluster_of_object_.find(detection.object_id);
  if (it != last_cluster_of_object_.end()) {
    Cluster& c = clusters_[static_cast<size_t>(it->second)];
    if (c.active) {
      // Membership only: the crop did not change, so the previous classification and
      // feature are reused and the centroid is left untouched.
      ++c.size;
      store_.SetSize(c.id, c.size);
      AppendMember(c, detection);
      return c.id;
    }
  }
  return Add(detection, feature);
}

}  // namespace focus::cluster
