// WorkerPool stress tests targeting the Drain() wakeup protocol.
//
// The seed's WorkerMain incremented completed_ and notified *without holding
// drain_mutex_*: a drainer could evaluate its wait predicate (count still
// short), lose the CPU, miss the final increment-and-notify, and then block on
// drain_cv_ forever — a classic lost wakeup. These tests hammer the window:
// fleets of near-empty tasks and thousands of Submit/Drain cycles from several
// driver threads, which is exactly the traffic pattern of sharded
// per-detection ingest. The hang needs a worker to land its increment inside
// the few-hundred-instruction gap between the drainer's predicate check and
// its waiter registration, so it fires under real parallelism (multi-core
// hosts, where worker and drainer truly overlap); the ctest TIMEOUT set in
// CMakeLists.txt turns any hang into a visible failure rather than a wedged
// suite. On the fixed pool the suite finishes in well under a second.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/runtime/worker_pool.h"

namespace focus::runtime {
namespace {

TEST(WorkerPoolStressTest, ManyShortTasksManyDrainCycles) {
  WorkerPool pool(4, /*queue_capacity=*/64, /*pop_batch=*/4);
  std::atomic<int64_t> executed{0};
  constexpr int kCycles = 2000;
  constexpr int kTasksPerCycle = 8;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (int t = 0; t < kTasksPerCycle; ++t) {
      ASSERT_TRUE(pool.Submit([&] { executed.fetch_add(1, std::memory_order_relaxed); }));
    }
    pool.Drain();
    // Everything submitted before this Drain() must have finished by now.
    ASSERT_GE(executed.load(), static_cast<int64_t>(cycle + 1) * kTasksPerCycle);
  }
  EXPECT_EQ(executed.load(), static_cast<int64_t>(kCycles) * kTasksPerCycle);
  EXPECT_EQ(pool.tasks_completed(), static_cast<int64_t>(kCycles) * kTasksPerCycle);
}

TEST(WorkerPoolStressTest, ConcurrentSubmitDrainCyclesFromMultipleThreads) {
  WorkerPool pool(4, /*queue_capacity=*/256, /*pop_batch=*/8);
  std::atomic<int64_t> executed{0};
  constexpr int kDrivers = 4;
  constexpr int kCyclesPerDriver = 400;
  constexpr int kTasksPerCycle = 16;
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&] {
      for (int cycle = 0; cycle < kCyclesPerDriver; ++cycle) {
        for (int t = 0; t < kTasksPerCycle; ++t) {
          ASSERT_TRUE(pool.Submit([&] { executed.fetch_add(1, std::memory_order_relaxed); }));
        }
        // Waits for at least this driver's own submissions so far; other
        // drivers keep submitting concurrently, which is the documented
        // Drain() contract and the hardest case for the wakeup protocol.
        pool.Drain();
      }
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  pool.Drain();
  const int64_t expected =
      static_cast<int64_t>(kDrivers) * kCyclesPerDriver * kTasksPerCycle;
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(pool.tasks_completed(), expected);
}

TEST(WorkerPoolStressTest, SingleWorkerSingleTaskCyclesMaximizeRaceWindow) {
  // One worker, one task per cycle: every Drain() depends on exactly one
  // increment-and-notify, so a single lost wakeup hangs immediately — later
  // cycles cannot rescue a stuck Drain() because the stuck driver is the only
  // producer. The race window is narrow (the increment must land between the
  // drainer's predicate check and its waiter registration), hence the high
  // cycle count.
  WorkerPool pool(1, /*queue_capacity=*/4, /*pop_batch=*/1);
  std::atomic<int64_t> executed{0};
  constexpr int kCycles = 50000;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ASSERT_TRUE(pool.Submit([&] { executed.fetch_add(1, std::memory_order_relaxed); }));
    pool.Drain();
    ASSERT_EQ(executed.load(), cycle + 1);
  }
  EXPECT_EQ(pool.tasks_completed(), kCycles);
}

}  // namespace
}  // namespace focus::runtime
