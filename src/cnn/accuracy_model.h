// Calibrated accuracy model: how a CNN's architecture maps to its error statistics.
//
// The paper's techniques depend on a CNN through exactly three behaviours:
//   1. the rank at which the GT-CNN's top-1 class appears in the cheap CNN's ranked
//      output (drives top-K index recall, Fig. 5);
//   2. the noise of the penultimate-layer feature vector (drives clustering quality,
//      §2.2.3 / §4.2);
//   3. frame-to-frame output stability (the paper's GT-CNN "sometimes gives different
//      answers to the exact same object in consecutive frames", §6.1).
//
// This file defines those statistics as explicit functions of model capacity and task
// difficulty, calibrated against the paper's anchors:
//   - ResNet18@224 / -3 layers@112 / -5 layers@56 (7x/28x/58x cheaper generic models)
//     reach ~90% recall at K around 60/100/200 on a 1000-class space (Fig. 5);
//   - stream-specialized models over a few dozen classes reach the 95% recall target
//     at K = 2-4 (§4.3);
//   - the GT-CNN itself is ~97% stable top-1 (motivating the paper's one-second
//     segment smoothing).
//
// Rank model: with probability |top1_accuracy| the true class is rank 1; otherwise
// its log-rank is uniform on (0, log_rank_tail], giving the analytic recall curve
//   RecallAtK(K) = top1 + (1 - top1) * ln(K) / log_rank_tail.
#ifndef FOCUS_SRC_CNN_ACCURACY_MODEL_H_
#define FOCUS_SRC_CNN_ACCURACY_MODEL_H_

#include "src/cnn/model_desc.h"
#include "src/common/rng.h"

namespace focus::cnn {

struct AccuracyParams {
  // Probability that the true class is the top-1 output.
  double top1_accuracy = 0.5;
  // ln of the maximum rank the true class can fall to when it misses top-1.
  double log_rank_tail = 4.0;
  // Std-dev of the Gaussian noise the model adds to the true appearance when
  // extracting features.
  double feature_noise = 0.1;
  // Per-frame probability that the model re-draws its rank for the same object
  // (output flicker between consecutive frames).
  double flicker_prob = 0.15;
};

// Model capacity in (0, 1]: concave in depth and input resolution (doubling either
// helps, with diminishing returns).
double ModelCapacity(const ModelDesc& desc);

// Task difficulty in (0, ~1]: grows with the log of the label-space size and with the
// appearance variability of the training distribution (§4.3: specialized streams are
// visually constrained, making the task easier).
double TaskDifficulty(const ModelDesc& desc);

// The calibrated error statistics for a model.
AccuracyParams ComputeAccuracy(const ModelDesc& desc);

// Analytic P(true class within top K) under |params| for a label space of
// |label_space| classes. K is clamped to [1, label_space].
double RecallAtK(const AccuracyParams& params, int k, int label_space);

// Samples a rank in [1, label_space] from the rank model.
int SampleRank(const AccuracyParams& params, int label_space, common::Pcg32& rng);

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_ACCURACY_MODEL_H_
