file(REMOVE_RECURSE
  "CMakeFiles/bench_drift_retrain.dir/bench/bench_drift_retrain.cc.o"
  "CMakeFiles/bench_drift_retrain.dir/bench/bench_drift_retrain.cc.o.d"
  "bench_drift_retrain"
  "bench_drift_retrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drift_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
