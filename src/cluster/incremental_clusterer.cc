#include "src/cluster/incremental_clusterer.h"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <limits>
#include <utility>

#include "src/cluster/cluster_codec.h"
#include "src/common/logging.h"
#include "src/common/simd_distance.h"
#include "src/storage/arena_file.h"
#include "src/storage/record_log.h"
#include "src/storage/serializer.h"
#include "src/storage/snapshot_store.h"

namespace focus::cluster {

namespace {

// Version tag of the <stem>.meta checkpoint snapshot.
constexpr uint32_t kMetaVersion = 1;

// How many trailing member runs to scan when extending an object's frame run.
constexpr size_t kRunMergeScan = 8;

void AppendMember(Cluster& cluster, const video::Detection& detection) {
  // Extend an existing run when this is the next sampled frame of the same object.
  size_t scanned = 0;
  for (auto it = cluster.members.rbegin();
       it != cluster.members.rend() && scanned < kRunMergeScan; ++it, ++scanned) {
    if (it->object == detection.object_id) {
      if (detection.frame == it->last_frame + 1) {
        it->last_frame = detection.frame;
        return;
      }
      break;  // Same object but non-contiguous: new run.
    }
  }
  MemberRun run;
  run.object = detection.object_id;
  run.first_frame = detection.frame;
  run.last_frame = detection.frame;
  cluster.members.push_back(run);
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(ClustererOptions options) : options_(options) {
  store_.SetHeadDim(options_.head_dim);
}

IncrementalClusterer::~IncrementalClusterer() = default;

void IncrementalClusterer::Reset(ClustererOptions options) {
  // A persistent clusterer must not be recycled: its checkpoint files would
  // keep describing the dropped state.
  FOCUS_CHECK(arena_file_ == nullptr);
  options_ = options;
  clusters_.clear();
  store_.Reset();
  store_.SetHeadDim(options_.head_dim);
  retired_store_.Reset();
  retire_heap_.clear();
  last_cluster_of_object_.clear();
  lru_.clear();
  total_assignments_ = 0;
  fast_hits_ = 0;
  fast_lookups_ = 0;
}

double IncrementalClusterer::FastHitRate() const {
  return fast_lookups_ > 0 ? static_cast<double>(fast_hits_) / static_cast<double>(fast_lookups_)
                           : 0.0;
}

int64_t IncrementalClusterer::CreateCluster(const video::Detection& detection,
                                            const common::FeatureVec& feature) {
  // Retire *before* inserting: retiring after could evict the just-created
  // size-1 cluster while it is still handed out as the assignment target.
  if (store_.size() >= options_.max_active) {
    RetireSmallest();
  }
  Cluster c;
  c.id = static_cast<int64_t>(clusters_.size());
  c.centroid = feature;
  c.size = 1;
  c.representative = detection;
  AppendMember(c, detection);
  clusters_.push_back(std::move(c));
  const int64_t id = clusters_.back().id;
  store_.Add(id, clusters_.back().centroid.data(), clusters_.back().centroid.size(), 1);
  retire_heap_.emplace_back(1, id);
  std::push_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
  TouchLru(id);
  return id;
}

void IncrementalClusterer::Join(Cluster& cluster, const video::Detection& detection,
                                const common::FeatureVec& feature) {
  // Running-mean centroid update.
  double w = 1.0 / static_cast<double>(cluster.size + 1);
  for (size_t i = 0; i < cluster.centroid.size(); ++i) {
    cluster.centroid[i] =
        static_cast<float>(cluster.centroid[i] * (1.0 - w) + feature[i] * w);
  }
  ++cluster.size;
  AppendMember(cluster, detection);
  store_.Update(cluster.id, cluster.centroid.data());
  store_.SetSize(cluster.id, cluster.size);
}

void IncrementalClusterer::RetireSmallest() {
  // Lazy heap: a popped entry whose size is stale (the cluster grew since push)
  // is re-keyed at its current size; the first fresh pop is the minimum over
  // current sizes (sizes only grow), with ties on the smaller id — the same
  // cluster the seed's first-seen min_element scan picked.
  while (!retire_heap_.empty()) {
    std::pop_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
    const auto [size_at_push, id] = retire_heap_.back();
    retire_heap_.pop_back();
    Cluster& c = clusters_[static_cast<size_t>(id)];
    if (!c.active) {
      continue;
    }
    if (c.size != size_at_push) {
      retire_heap_.emplace_back(c.size, id);
      std::push_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
      continue;
    }
    c.active = false;
    store_.Remove(id);
    if (retired_targets_) {
      // Freeze the centroid as a merge target: a duplicate appearance in
      // another shard may only show up after this retirement.
      retired_store_.Add(id, c.centroid.data(), c.centroid.size(), c.size);
    }
    return;
  }
}

void IncrementalClusterer::EnableRetiredMergeTargets() {
  FOCUS_CHECK(clusters_.empty());
  retired_targets_ = true;
}

void IncrementalClusterer::TouchLru(int64_t id) {
  // Move-to-front with dedup: leaving stale occurrences in place would let one
  // hot cluster occupy several of the lru_probes slots in Add's probe loop,
  // silently narrowing the set of distinct clusters the fast path considers.
  if (!lru_.empty() && lru_.front() == id) {
    return;
  }
  auto it = std::find(lru_.begin(), lru_.end(), id);
  if (it != lru_.end()) {
    lru_.erase(it);
  }
  lru_.push_front(id);
  if (lru_.size() > options_.lru_probes) {
    lru_.pop_back();
  }
}

float IncrementalClusterer::ActiveDistance(int64_t id, const common::FeatureVec& feature,
                                           float bound) const {
  const float* row = store_.CentroidOf(id);
  if (row == nullptr) {
    return std::numeric_limits<float>::max();
  }
  return common::simd::SquaredL2Bounded(feature.data(), row, feature.size(), bound);
}

int64_t IncrementalClusterer::Add(const video::Detection& detection,
                                  const common::FeatureVec& feature) {
  ++total_assignments_;
  const float threshold_sq = static_cast<float>(options_.threshold * options_.threshold);

  if (options_.mode == ClustererOptions::Mode::kFast) {
    ++fast_lookups_;
    // 1. The cluster this object joined most recently.
    auto it = last_cluster_of_object_.find(detection.object_id);
    if (it != last_cluster_of_object_.end() &&
        ActiveDistance(it->second, feature, threshold_sq) <= threshold_sq) {
      Cluster& c = clusters_[static_cast<size_t>(it->second)];
      Join(c, detection, feature);
      ++fast_hits_;
      return c.id;
    }
    // 2. Recently used clusters. Retired ids are dropped from the deque as they
    // are encountered, without charging a probe: every one of the lru_probes
    // attempts goes to a distinct live cluster.
    size_t probes = 0;
    for (auto it = lru_.begin(); it != lru_.end() && probes < options_.lru_probes;) {
      const int64_t id = *it;
      if (!clusters_[static_cast<size_t>(id)].active) {
        it = lru_.erase(it);
        continue;
      }
      ++probes;
      if (ActiveDistance(id, feature, threshold_sq) <= threshold_sq) {
        Cluster& c = clusters_[static_cast<size_t>(id)];
        Join(c, detection, feature);
        last_cluster_of_object_[detection.object_id] = c.id;
        TouchLru(c.id);
        ++fast_hits_;
        return c.id;
      }
      ++it;
    }
  }

  // Full scan: closest active cluster within T (norm prune + batched SIMD over
  // the contiguous store; first-seen tie semantics preserved via smallest-id).
  float best_dist = 0.0f;
  const int64_t best =
      store_.FindNearest(feature.data(), feature.size(), threshold_sq, &best_dist);
  if (best >= 0) {
    Cluster& c = clusters_[static_cast<size_t>(best)];
    Join(c, detection, feature);
    last_cluster_of_object_[detection.object_id] = c.id;
    TouchLru(c.id);
    return c.id;
  }

  int64_t id = CreateCluster(detection, feature);
  last_cluster_of_object_[detection.object_id] = id;
  return id;
}

std::string IncrementalClusterer::EncodeBookkeeping() const {
  storage::Encoder enc;
  // Options echo, validated on restore: recovering under different clustering
  // parameters would silently change semantics mid-stream.
  enc.PutDouble(options_.threshold);
  enc.PutVarint(options_.max_active);
  enc.PutU8(options_.mode == ClustererOptions::Mode::kFast ? 1 : 0);
  enc.PutVarint(options_.lru_probes);
  enc.PutVarint(options_.head_dim);

  // Cluster table. Ids are the table index; active centroids live in the
  // arena, so only retired clusters carry their centroid here (needed by the
  // sharded finalize, which folds centroids of clusters retired after a merge).
  enc.PutVarint(clusters_.size());
  for (const Cluster& c : clusters_) {
    enc.PutU8(c.active ? 1 : 0);
    enc.PutSignedVarint(c.size);
    EncodeDetection(enc, c.representative);
    enc.PutVarint(c.members.size());
    for (const MemberRun& run : c.members) {
      enc.PutSignedVarint(run.object);
      enc.PutSignedVarint(run.first_frame);
      enc.PutSignedVarint(run.last_frame);
    }
    if (!c.active) {
      EncodeFeatureVec(enc, c.centroid);
    }
  }

  enc.PutVarint(last_cluster_of_object_.size());
  for (const auto& [object, cluster] : last_cluster_of_object_) {
    enc.PutSignedVarint(object);
    enc.PutSignedVarint(cluster);
  }
  enc.PutVarint(lru_.size());
  for (int64_t id : lru_) {
    enc.PutSignedVarint(id);
  }
  enc.PutSignedVarint(total_assignments_);
  enc.PutSignedVarint(fast_hits_);
  enc.PutSignedVarint(fast_lookups_);
  return enc.TakeBytes();
}

common::Result<bool> IncrementalClusterer::DecodeBookkeeping(std::string_view bookkeeping) {
  storage::Decoder dec(bookkeeping);
  auto corrupt = [] { return common::Error{common::ErrorCode::kIo, "clusterer meta corrupt"}; };

  double threshold = 0.0;
  uint64_t max_active = 0;
  uint8_t mode = 0;
  uint64_t lru_probes = 0;
  uint64_t head_dim = 0;
  if (!dec.GetDouble(&threshold) || !dec.GetVarint(&max_active) || !dec.GetU8(&mode) ||
      !dec.GetVarint(&lru_probes) || !dec.GetVarint(&head_dim)) {
    return corrupt();
  }
  const bool fast = options_.mode == ClustererOptions::Mode::kFast;
  if (threshold != options_.threshold || max_active != options_.max_active ||
      (mode != 0) != fast || lru_probes != options_.lru_probes ||
      head_dim != options_.head_dim) {
    return common::FailedPrecondition(
        "clusterer options do not match the checkpointed run");
  }

  uint64_t num_clusters = 0;
  if (!dec.GetVarint(&num_clusters) || num_clusters > dec.remaining()) {
    return corrupt();
  }
  clusters_.clear();
  clusters_.reserve(static_cast<size_t>(num_clusters));
  for (uint64_t i = 0; i < num_clusters; ++i) {
    Cluster c;
    c.id = static_cast<int64_t>(i);
    uint8_t active = 0;
    uint64_t num_runs = 0;
    if (!dec.GetU8(&active) || !dec.GetSignedVarint(&c.size) ||
        !DecodeDetection(dec, &c.representative) || !dec.GetVarint(&num_runs) ||
        num_runs > dec.remaining()) {
      return corrupt();
    }
    c.active = active != 0;
    c.members.reserve(static_cast<size_t>(num_runs));
    for (uint64_t r = 0; r < num_runs; ++r) {
      MemberRun run;
      if (!dec.GetSignedVarint(&run.object) || !dec.GetSignedVarint(&run.first_frame) ||
          !dec.GetSignedVarint(&run.last_frame)) {
        return corrupt();
      }
      c.members.push_back(run);
    }
    if (c.active) {
      // The live centroid is the arena row recovered into the store.
      const float* row = store_.CentroidOf(c.id);
      if (row == nullptr) {
        return corrupt();
      }
      c.centroid.assign(row, row + store_.dim());
    } else if (!DecodeFeatureVec(dec, &c.centroid)) {
      return corrupt();
    }
    clusters_.push_back(std::move(c));
  }
  size_t active_count = 0;
  for (const Cluster& c : clusters_) {
    if (c.active) {
      ++active_count;
    }
  }
  if (active_count != store_.size()) {
    return corrupt();
  }
  if (retired_targets_) {
    // Derived state: re-freeze every retired centroid (ascending id; merge
    // results are slot-order independent, see retired_store()).
    for (const Cluster& c : clusters_) {
      if (!c.active) {
        retired_store_.Add(c.id, c.centroid.data(), c.centroid.size(), c.size);
      }
    }
  }

  uint64_t num_objects = 0;
  if (!dec.GetVarint(&num_objects) || num_objects > dec.remaining()) {
    return corrupt();
  }
  last_cluster_of_object_.clear();
  last_cluster_of_object_.reserve(static_cast<size_t>(num_objects));
  for (uint64_t i = 0; i < num_objects; ++i) {
    int64_t object = 0;
    int64_t cluster = 0;
    if (!dec.GetSignedVarint(&object) || !dec.GetSignedVarint(&cluster)) {
      return corrupt();
    }
    last_cluster_of_object_.emplace(object, cluster);
  }
  uint64_t lru_len = 0;
  if (!dec.GetVarint(&lru_len) || lru_len > dec.remaining()) {
    return corrupt();
  }
  lru_.clear();
  for (uint64_t i = 0; i < lru_len; ++i) {
    int64_t id = 0;
    if (!dec.GetSignedVarint(&id)) {
      return corrupt();
    }
    lru_.push_back(id);
  }
  if (!dec.GetSignedVarint(&total_assignments_) || !dec.GetSignedVarint(&fast_hits_) ||
      !dec.GetSignedVarint(&fast_lookups_) || !dec.Done()) {
    return corrupt();
  }

  // Rebuild the retire heap from current sizes. The lazy heap's selection is
  // always the minimum over *current* (size, id) of active clusters — stale
  // entries re-key on pop — so a freshly keyed heap retires the same clusters
  // in the same order as the checkpointed one.
  retire_heap_.clear();
  for (const Cluster& c : clusters_) {
    if (c.active) {
      retire_heap_.emplace_back(c.size, c.id);
    }
  }
  std::make_heap(retire_heap_.begin(), retire_heap_.end(), std::greater<>());
  return true;
}

common::Result<bool> IncrementalClusterer::AttachPersistence(
    std::unique_ptr<storage::ArenaFile> arena, const std::string& undo_path) {
  FOCUS_CHECK(clusters_.empty() && store_.empty() && arena_file_ == nullptr);
  auto writer = storage::RecordLogWriter::Open(undo_path, /*truncate=*/true, options_.undo_fsync);
  if (!writer.ok()) {
    return writer.error();
  }
  arena_file_ = std::move(arena);
  arena_file_->SetFsyncPolicy(options_.arena_fsync);
  undo_path_ = undo_path;
  undo_writer_ =
      std::make_unique<storage::RecordLogWriter>(std::move(writer).value());
  store_.AttachArena(arena_file_.get(), undo_writer_.get());
  return true;
}

common::Result<bool> IncrementalClusterer::RestorePersistent(
    std::unique_ptr<storage::ArenaFile> arena, const std::string& undo_path,
    std::string_view bookkeeping) {
  FOCUS_CHECK(clusters_.empty() && store_.empty() && arena_file_ == nullptr);
  // Append mode: the old window's records stay until the caller's re-seal
  // checkpoint rotates the log; no mutation happens in between.
  auto writer = storage::RecordLogWriter::Open(undo_path, /*truncate=*/false, options_.undo_fsync);
  if (!writer.ok()) {
    return writer.error();
  }
  arena_file_ = std::move(arena);
  arena_file_->SetFsyncPolicy(options_.arena_fsync);
  undo_path_ = undo_path;
  undo_writer_ =
      std::make_unique<storage::RecordLogWriter>(std::move(writer).value());
  store_.AttachArena(arena_file_.get(), undo_writer_.get());
  return DecodeBookkeeping(bookkeeping);
}

common::Result<uint64_t> IncrementalClusterer::CommitArena() {
  FOCUS_CHECK(arena_file_ != nullptr);
  if (!arena_file_->initialized()) {
    // No detection has fixed the arena shape yet (a checkpoint before the
    // first Add): generation 0 denotes the empty state.
    return uint64_t{0};
  }
  return store_.CommitCheckpoint();
}

common::Result<bool> IncrementalClusterer::RotateUndoLog(uint64_t generation) {
  FOCUS_CHECK(arena_file_ != nullptr);
  auto writer = storage::RecordLogWriter::Open(undo_path_, /*truncate=*/true, options_.undo_fsync);
  if (!writer.ok()) {
    return writer.error();
  }
  undo_writer_ =
      std::make_unique<storage::RecordLogWriter>(std::move(writer).value());
  storage::ArenaUndo marker;
  marker.kind = storage::ArenaUndo::Kind::kMarker;
  marker.generation = generation;
  marker.rows = arena_file_->initialized() ? arena_file_->committed_rows() : 0;
  if (auto appended = undo_writer_->Append(marker.Encode()); !appended.ok()) {
    return appended.error();
  }
  store_.SetUndoWriter(undo_writer_.get());
  return true;
}

common::Result<ClustererRecovery> IncrementalClusterer::OpenOrRecover(
    const std::string& dir, const std::string& stem) {
  FOCUS_CHECK(clusters_.empty() && store_.empty() && arena_file_ == nullptr);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return common::Error{common::ErrorCode::kIo,
                         "create persist dir: " + dir + ": " + ec.message()};
  }
  const std::string arena_path = dir + "/" + stem + ".arena";
  const std::string undo_path = dir + "/" + stem + ".undo";
  meta_path_ = dir + "/" + stem + ".meta";

  if (!storage::FileExists(meta_path_)) {
    // No committed checkpoint: fresh persistent state. Stale arena/undo files
    // from a run that crashed before its first checkpoint are dropped.
    std::filesystem::remove(arena_path, ec);
    std::filesystem::remove(undo_path, ec);
    auto arena = storage::ArenaFile::Open(arena_path);
    if (!arena.ok()) {
      return arena.error();
    }
    if (auto attached = AttachPersistence(std::move(arena).value(), undo_path);
        !attached.ok()) {
      return attached.error();
    }
    return ClustererRecovery{};
  }

  auto blob = storage::ReadFile(meta_path_);
  if (!blob.ok()) {
    return blob.error();
  }
  storage::Decoder dec(*blob);
  uint32_t version = 0;
  uint64_t generation = 0;
  int64_t position = 0;
  std::string user_state;
  std::string bookkeeping;
  size_t payload_end = 0;
  uint32_t crc = 0;
  if (!dec.GetU32(&version) || version != kMetaVersion || !dec.GetU64(&generation) ||
      !dec.GetSignedVarint(&position) || !dec.GetString(&user_state) ||
      !dec.GetString(&bookkeeping) || (payload_end = dec.offset(), !dec.GetU32(&crc)) ||
      storage::Crc32(std::string_view(blob->data(), payload_end)) != crc) {
    return common::Error{common::ErrorCode::kIo, "clusterer meta corrupt: " + meta_path_};
  }

  bool needs_reseal = false;
  auto arena = storage::OpenArenaAtCheckpoint(arena_path, undo_path, generation, &needs_reseal);
  if (!arena.ok()) {
    return arena.error();
  }
  if (auto restored = RestorePersistent(std::move(arena).value(), undo_path, bookkeeping);
      !restored.ok()) {
    return restored.error();
  }
  // Re-seal when anything was undone: after a rollback the arena header may
  // sit a generation ahead of the adopted state, so a fresh checkpoint makes
  // header, meta, and undo window mutually consistent again before any
  // mutation. A clean recovery (header at the meta's generation, empty undo
  // window) skips this — the on-disk state already is the checkpoint, which
  // keeps rolling restarts O(read + page-in).
  if (needs_reseal) {
    if (auto sealed = Checkpoint(position, user_state); !sealed.ok()) {
      return sealed.error();
    }
  }
  ClustererRecovery out;
  out.recovered = true;
  out.position = position;
  out.user_state = std::move(user_state);
  return out;
}

common::Result<bool> IncrementalClusterer::Checkpoint(int64_t position,
                                                      std::string_view user_state) {
  FOCUS_CHECK(arena_file_ != nullptr);
  auto generation = CommitArena();
  if (!generation.ok()) {
    return generation.error();
  }
  storage::Encoder enc;
  enc.PutU32(kMetaVersion);
  enc.PutU64(*generation);
  enc.PutSignedVarint(position);
  enc.PutString(user_state);
  enc.PutString(EncodeBookkeeping());
  const uint32_t crc = storage::Crc32(enc.bytes());
  enc.PutU32(crc);
  // The atomic rename of the meta snapshot is the commit point of the whole
  // checkpoint: a crash on either side recovers to a consistent generation.
  if (auto wrote = storage::WriteFileAtomic(meta_path_, enc.bytes()); !wrote.ok()) {
    return wrote;
  }
  return RotateUndoLog(*generation);
}

int64_t IncrementalClusterer::AddSuppressed(const video::Detection& detection,
                                            const common::FeatureVec& feature) {
  ++total_assignments_;
  auto it = last_cluster_of_object_.find(detection.object_id);
  if (it != last_cluster_of_object_.end()) {
    Cluster& c = clusters_[static_cast<size_t>(it->second)];
    if (c.active) {
      // Membership only: the crop did not change, so the previous classification and
      // feature are reused and the centroid is left untouched.
      ++c.size;
      store_.SetSize(c.id, c.size);
      AppendMember(c, detection);
      return c.id;
    }
  }
  return Add(detection, feature);
}

}  // namespace focus::cluster
