// No-fault overhead of the robustness machinery (docs/robustness.md).
//
// The fault-injection sites, the typed-error (Result) plumbing, and the
// IngestService supervision loop are all compiled into the production ingest
// path and run on every frame of every stream — so their cost with *no plan
// armed and no faults occurring* is the price of robustness, and it must stay
// negligible. Two comparisons, interleaved best-of-N on the same stream:
//
//   - checked:    core::RunIngestChecked vs core::RunIngest (volatile). Same
//                 pipeline; the checked wrapper adds the typed-error path the
//                 supervisor consumes.
//   - supervised: a 1-stream IngestService::RunAll (supervision loop, health
//                 registry, cluster accounting) vs core::RunIngest direct.
//
// Both must produce byte-identical results to the direct run (`identical`),
// and the tracked guardrail is the wrapped/direct wall ratio
// (`wrapped_over_direct`, target < 1.05). Emits BENCH_chaos.json.
// FOCUS_BENCH_CHAOS_SEC overrides the stream duration (default 60 s).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/runtime/ingest_service.h"
#include "src/storage/index_codec.h"
#include "src/video/stream_generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

namespace core = focus::core;

core::IngestParams Params() {
  core::IngestParams params;
  params.model = focus::cnn::GenericCheapCandidates(5)[1];
  params.k = 4;
  params.cluster_threshold = 0.6;
  return params;
}

std::string IndexBytes(const core::IngestResult& result) {
  focus::storage::IndexSnapshotHeader header;
  header.stream_name = "bench";
  header.k = 4;
  header.model = Params().model;
  return focus::storage::EncodeIndexSnapshot(header, result.index);
}

bool SameResult(const core::IngestResult& a, const core::IngestResult& b) {
  return a.detections == b.detections && a.cnn_invocations == b.cnn_invocations &&
         a.suppressed == b.suppressed && a.gpu_millis == b.gpu_millis &&
         IndexBytes(a) == IndexBytes(b);
}

struct OverheadResult {
  std::string path;
  double direct_ms = 0.0;
  double wrapped_ms = 0.0;
  double wrapped_over_direct = 0.0;  // Guardrail: < 1.05 target, gated at 15%.
  bool identical = false;
};

}  // namespace

int main() {
  double duration_sec = 60.0;
  if (const char* env = std::getenv("FOCUS_BENCH_CHAOS_SEC")) {
    duration_sec = std::atof(env);
  }

  focus::video::ClassCatalog catalog(17);
  focus::video::StreamProfile profile;
  if (!focus::video::FindProfile("auburn_c", &profile)) {
    std::fprintf(stderr, "FAIL: profile auburn_c missing\n");
    return 1;
  }
  focus::video::StreamRun run(&catalog, profile, duration_sec, 30.0, 11);
  focus::cnn::Cnn cheap(Params().model, &catalog);

  // Interleaved best-of-N: timing noise on shared hosts is strictly additive,
  // so min(direct) vs min(wrapped) estimates the true ratio. The generator
  // sweep is the same fixed simulator overhead on every side; it stays *in*
  // both numbers (both strategies pay it identically), which biases the ratio
  // toward 1 — i.e. under-reports the machinery's relative cost by the same
  // factor a real frame-read would.
  constexpr int kReps = 5;

  const core::IngestResult reference = core::RunIngest(run, cheap, Params());

  OverheadResult checked;
  checked.path = "checked";
  core::IngestResult checked_result;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = Clock::now();
    const core::IngestResult direct = core::RunIngest(run, cheap, Params());
    const double direct_ms = MillisSince(t0);
    t0 = Clock::now();
    auto outcome = core::RunIngestChecked(run, cheap, Params());
    const double wrapped_ms = MillisSince(t0);
    if (!outcome.ok()) {
      std::fprintf(stderr, "FAIL: checked ingest errored with no fault armed: %s\n",
                   outcome.error().message.c_str());
      return 1;
    }
    checked_result = *std::move(outcome);
    (void)direct;
    checked.direct_ms = rep == 0 ? direct_ms : std::min(checked.direct_ms, direct_ms);
    checked.wrapped_ms = rep == 0 ? wrapped_ms : std::min(checked.wrapped_ms, wrapped_ms);
  }
  checked.wrapped_over_direct =
      checked.direct_ms > 0.0 ? checked.wrapped_ms / checked.direct_ms : 0.0;
  checked.identical = SameResult(checked_result, reference);

  OverheadResult supervised;
  supervised.path = "supervised";
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = Clock::now();
    const core::IngestResult direct = core::RunIngest(run, cheap, Params());
    const double direct_ms = MillisSince(t0);
    (void)direct;

    focus::runtime::IngestServiceOptions options;
    options.num_worker_threads = 1;
    focus::runtime::IngestService service(options);
    focus::runtime::IngestJob job;
    job.name = "bench";
    job.run = &run;
    job.params = Params();
    service.AddStream(job);
    t0 = Clock::now();
    const focus::runtime::FleetIngestSummary summary = service.RunAll();
    const double wrapped_ms = MillisSince(t0);
    supervised.identical = summary.reports.size() == 1 &&
                           summary.reports[0].health.state ==
                               focus::runtime::StreamState::kHealthy &&
                           SameResult(summary.reports[0].result, reference);
    supervised.direct_ms = rep == 0 ? direct_ms : std::min(supervised.direct_ms, direct_ms);
    supervised.wrapped_ms = rep == 0 ? wrapped_ms : std::min(supervised.wrapped_ms, wrapped_ms);
  }
  supervised.wrapped_over_direct =
      supervised.direct_ms > 0.0 ? supervised.wrapped_ms / supervised.direct_ms : 0.0;

  const std::vector<OverheadResult> results = {checked, supervised};
  std::printf("no-fault robustness overhead (%.0f s stream, best of %d interleaved reps)\n",
              duration_sec, kReps);
  std::printf("%12s %11s %11s %14s %10s\n", "path", "direct ms", "wrapped ms", "wrapped/direct",
              "identical");
  bool ok = true;
  for (const OverheadResult& r : results) {
    std::printf("%12s %11.1f %11.1f %13.3fx %10s\n", r.path.c_str(), r.direct_ms, r.wrapped_ms,
                r.wrapped_over_direct, r.identical ? "yes" : "NO");
    ok = ok && r.identical;
    if (r.wrapped_over_direct > 1.05) {
      std::printf("  note: %s overhead %.1f%% exceeds the 5%% target (15%% guardrail gates it)\n",
                  r.path.c_str(), 100.0 * (r.wrapped_over_direct - 1.0));
    }
  }

  FILE* f = std::fopen("BENCH_chaos.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"chaos\",\n  \"overhead\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const OverheadResult& r = results[i];
      std::fprintf(f,
                   "    {\"path\": \"%s\", \"direct_ms\": %.2f, \"wrapped_ms\": %.2f, "
                   "\"wrapped_over_direct\": %.4f, \"identical\": %s}%s\n",
                   r.path.c_str(), r.direct_ms, r.wrapped_ms, r.wrapped_over_direct,
                   r.identical ? "true" : "false", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_chaos.json\n");
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: wrapped ingest diverged from the direct run with no fault armed\n");
    return 1;
  }
  return 0;
}
