#include "src/common/rng.h"

#include <cmath>

namespace focus::common {

uint32_t Pcg32::NextBounded(uint32_t n) {
  if (n <= 1) {
    return 0;
  }
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t m = static_cast<uint64_t>(Next()) * n;
  uint32_t low = static_cast<uint32_t>(m);
  if (low < n) {
    uint32_t threshold = static_cast<uint32_t>(-static_cast<int32_t>(n)) % n;
    while (low < threshold) {
      m = static_cast<uint64_t>(Next()) * n;
      low = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

int64_t Pcg32::NextInt(int64_t lo, int64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span <= std::numeric_limits<uint32_t>::max()) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint32_t>(span)));
  }
  // Wide range: rejection sample over 64 bits.
  uint64_t limit = std::numeric_limits<uint64_t>::max() - std::numeric_limits<uint64_t>::max() % span;
  uint64_t v = Next64();
  while (v >= limit) {
    v = Next64();
  }
  return lo + static_cast<int64_t>(v % span);
}

double Pcg32::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Pcg32::NextExponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

uint32_t Pcg32::NextPoisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth's multiplication method.
    double limit = std::exp(-mean);
    double product = NextDouble();
    uint32_t count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  double v = NextGaussian(mean, std::sqrt(mean)) + 0.5;
  if (v < 0.0) {
    return 0;
  }
  return static_cast<uint32_t>(v);
}

}  // namespace focus::common
