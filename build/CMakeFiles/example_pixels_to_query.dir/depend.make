# Empty dependencies file for example_pixels_to_query.
# This may be replaced when dependencies are built.
