# Empty dependencies file for example_traffic_investigation.
# This may be replaced when dependencies are built.
