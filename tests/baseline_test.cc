// Unit tests for the Ingest-all / Query-all baselines and the query-time-only Focus
// variant (§6.1 "Baselines", §6.7).
#include <gtest/gtest.h>

#include "src/baseline/baselines.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/core/accuracy_evaluator.h"
#include "src/video/stream_generator.h"

namespace focus::baseline {
namespace {

constexpr uint64_t kSeed = 42;

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() : catalog_(kSeed), gt_(cnn::GtCnnDesc(kSeed), &catalog_) {
    video::StreamProfile profile;
    video::FindProfile("jacksonh", &profile);
    run_ = std::make_unique<video::StreamRun>(&catalog_, profile, 240.0, 30.0, 9);
    truth_ = std::make_unique<cnn::SegmentGroundTruth>(*run_, gt_);
    dominant_ = truth_->DominantClasses(0.5, 2);
  }

  video::ClassCatalog catalog_;
  cnn::Cnn gt_;
  std::unique_ptr<video::StreamRun> run_;
  std::unique_ptr<cnn::SegmentGroundTruth> truth_;
  std::vector<common::ClassId> dominant_;
};

TEST_F(BaselineFixture, IngestAllChargesEveryDetection) {
  IngestAllResult result = RunIngestAll(*run_, gt_);
  EXPECT_GT(result.detections, 0);
  EXPECT_NEAR(result.ingest_gpu_millis,
              static_cast<double>(result.detections) * gt_.inference_cost_millis(), 1e-6);
  EXPECT_FALSE(result.frames_by_class.empty());
}

TEST_F(BaselineFixture, IngestAllQueryIsFreeAndExact) {
  ASSERT_FALSE(dominant_.empty());
  IngestAllResult index = RunIngestAll(*run_, gt_);
  core::QueryResult qr = QueryIngestAll(index, dominant_[0]);
  EXPECT_EQ(qr.gpu_millis, 0.0);  // §6.1: "The query latency of Ingest-all is 0".
  EXPECT_GT(qr.frames_returned, 0);
  // Exact by construction: its segment-level accuracy against the GT truth is 1.0.
  core::AccuracyEvaluator evaluator(truth_.get(), run_->fps());
  core::PrecisionRecall pr = evaluator.Evaluate(dominant_[0], qr);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST_F(BaselineFixture, QueryAllChargesEveryDetectionInRange) {
  ASSERT_FALSE(dominant_.empty());
  core::QueryResult full = RunQueryAll(*run_, gt_, dominant_[0]);
  EXPECT_GT(full.centroids_classified, 0);
  EXPECT_NEAR(full.gpu_millis, QueryAllCostMillis(*run_, gt_), 1e-6);

  common::TimeRange window{30.0, 90.0};
  core::QueryResult windowed = RunQueryAll(*run_, gt_, dominant_[0], window);
  EXPECT_LT(windowed.centroids_classified, full.centroids_classified);
  for (const auto& [first, last] : windowed.frame_runs) {
    EXPECT_TRUE(window.ContainsFrame(first, run_->fps()));
    EXPECT_TRUE(window.ContainsFrame(last, run_->fps()));
  }
}

TEST_F(BaselineFixture, QueryAllMatchesIngestAllResults) {
  // Both baselines run the same GT-CNN over the same detections, so they must return
  // identical frame sets for the same class.
  ASSERT_FALSE(dominant_.empty());
  IngestAllResult index = RunIngestAll(*run_, gt_);
  core::QueryResult via_index = QueryIngestAll(index, dominant_[0]);
  core::QueryResult via_scan = RunQueryAll(*run_, gt_, dominant_[0]);
  EXPECT_EQ(via_index.frame_runs, via_scan.frame_runs);
}

TEST_F(BaselineFixture, QueryTimeOnlyFocusIsFasterThanQueryAll) {
  ASSERT_FALSE(dominant_.empty());
  cnn::ClassDistributionEstimate est = cnn::EstimateClassDistribution(*run_, gt_, 240.0, 5);
  cnn::SpecializationOptions sopts;
  sopts.ls = 20;
  sopts.layers = 12;
  sopts.input_px = 56;
  core::IngestParams params;
  params.model = cnn::TrainSpecializedModel(est, sopts, 0.5, kSeed);
  params.k = 4;
  params.cluster_threshold = 0.6;
  cnn::Cnn cheap(params.model, &catalog_);

  QueryTimeOnlyResult lazy = RunFocusQueryTimeOnly(*run_, cheap, gt_, params, dominant_[0]);
  double query_all = QueryAllCostMillis(*run_, gt_);
  EXPECT_GT(lazy.total_gpu_millis, 0.0);
  // §6.7: deferring all Focus work to query time still beats Query-all comfortably.
  EXPECT_LT(lazy.total_gpu_millis, query_all / 4.0);
  EXPECT_GT(lazy.query.frames_returned, 0);
}

}  // namespace
}  // namespace focus::baseline
