// Multi-stream ingest service: the §5 worker fleet around the core ingest pipeline.
//
// "Focus's ingest-time work is distributed across many machines, with each machine
// running one worker process for each video stream's ingestion." This service runs
// one ingest worker per registered stream on a thread pool, accounts each stream's
// inference workload on a shared virtual GPU cluster, and answers the provisioning
// question behind the paper's cost claims: how many GPUs does it take to ingest all
// streams in real time, and what does each stream cost per month.
//
// Determinism: the per-stream ingest itself is deterministic; GPU-cluster accounting
// is applied after the parallel phase in stream registration order, so the reported
// schedule does not depend on thread interleaving.
#ifndef FOCUS_SRC_RUNTIME_INGEST_SERVICE_H_
#define FOCUS_SRC_RUNTIME_INGEST_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/core/config.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/metrics.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {

// One registered stream with its tuned ingest configuration.
struct IngestJob {
  std::string name;
  const video::StreamRun* run = nullptr;  // Must outlive the service.
  core::IngestParams params;
  core::IngestOptions options;
};

// Supervision state of one stream's ingest worker.
enum class StreamState {
  kHealthy,   // Running (or finished) clean.
  kDegraded,  // Failed at least once; restarted and currently retrying.
  kDown,      // Restart budget exhausted, or the failure is not retryable.
};

const char* StreamStateName(StreamState state);

struct StreamHealth {
  StreamState state = StreamState::kHealthy;
  // Failures since the last successful completion (reset on success).
  int consecutive_failures = 0;
  // Worker restarts consumed by supervision.
  int restarts = 0;
  std::string last_error;  // Message of the most recent failure; empty if none.
  common::ErrorCode last_code = common::ErrorCode::kInternal;  // Valid when last_error set.
};

// Per-stream outcome.
struct IngestReport {
  std::string name;
  core::IngestResult result;
  // GPU-seconds of cheap-CNN work per second of video: < 1.0 / num_streams_per_gpu
  // means the stream ingests in real time on its share of a device.
  double gpu_occupancy = 0.0;
  // Virtual wall time to replay the whole recording's inference workload on the
  // shared cluster (includes queueing behind other streams).
  common::GpuMillis cluster_finish_millis = 0.0;
  // Final supervision state. kDown carries |error| and a default-constructed
  // (empty) result — the stream's last-good epoch snapshot, if any, remains
  // queryable through LatestSnapshot (degraded serving, docs/robustness.md).
  StreamHealth health;
  std::optional<common::Error> error;
};

// Query-side context of one live (still-ingesting) stream: the RCU slot its
// ingest worker publishes epoch snapshots through, plus everything a snapshot
// query needs — the ingest model (label-space mapping), the GT-CNN (centroid
// verdicts), and the recording fps (time-range planning). Stable from
// AddStream() on; the slot is safe to read concurrently with RunAll().
struct LiveStreamContext {
  core::SnapshotSlot slot;
  std::unique_ptr<cnn::Cnn> ingest_cnn;
  std::unique_ptr<cnn::Cnn> gt_cnn;
  double fps = 30.0;
};

struct IngestServiceOptions {
  int num_worker_threads = 4;
  int num_gpus = 1;
  // Intra-stream clustering shards (core::IngestOptions::num_shards): > 0
  // overrides every registered job so a hot deployment can be re-sharded in
  // one place; 0 leaves each job's own setting untouched.
  int num_shards = 0;
  // Root directory for durable per-stream clustering state (mmap'd centroid
  // arenas + checkpoints, docs/persistence.md). Non-empty gives every
  // registered stream the subdirectory <persist_dir>/<job name> and routes its
  // ingest through the resumable path: a crashed/restarted worker resumes the
  // stream from its recovered frame position instead of frame 0 (see
  // IngestResult::resumed_from_frame in each report). Empty (default) keeps
  // ingest volatile. Stream names must be unique and filesystem-safe.
  std::string persist_dir;
  // Dollars per GPU-month used by CostPerStreamMonthly (the paper quotes Azure
  // pricing where Ingest-all costs ~$250/month/stream).
  double dollars_per_gpu_month = 250.0;
  // Windowed streaming finalize cadence
  // (core::IngestOptions::finalize_every_frames): > 0 overrides every
  // registered job, gives each stream a LiveStreamContext, and publishes an
  // epoch-numbered canonical snapshot every N sampled frames so queries can
  // run against the stream while RunAll() is still ingesting it
  // (LatestSnapshot). 0 leaves each job's own setting untouched (jobs that
  // set their own cadence still get a context).
  int64_t finalize_every_frames = 0;
  // Worker supervision (docs/robustness.md): a worker that fails with a
  // retryable error (common::IsRetryable) is restarted up to this many times
  // per stream — resuming from its checkpoint on the persistent path, from
  // frame 0 otherwise — before the stream is marked Down.
  int max_worker_restarts = 3;
};

struct FleetIngestSummary {
  std::vector<IngestReport> reports;  // In registration order.
  GpuClusterStats cluster;
  // Sum of per-stream occupancies: total GPUs needed for real-time ingest.
  double total_gpu_occupancy = 0.0;
  int min_gpus_for_realtime = 0;

  common::GpuMillis total_gpu_millis() const {
    common::GpuMillis total = 0;
    for (const IngestReport& r : reports) {
      total += r.result.gpu_millis;
    }
    return total;
  }
};

class IngestService {
 public:
  explicit IngestService(IngestServiceOptions options, MetricsRegistry* metrics = nullptr);

  // Registers a stream; returns its job index. |job.run| must stay valid until
  // RunAll() returns.
  size_t AddStream(IngestJob job);

  // Ingests every registered stream (parallel across |num_worker_threads|), then
  // replays the combined inference workload on a fresh |num_gpus| cluster.
  FleetIngestSummary RunAll();

  // Monthly cost of one stream whose ingest occupies |gpu_occupancy| of a device.
  double CostPerStreamMonthly(double gpu_occupancy) const;

  // --- Live query-over-ingest (docs/live_query.md) ---
  //
  // The newest published canonical snapshot of |name|, or null before the
  // first epoch / for streams without a live context. Thread-safe and safe to
  // call concurrently with RunAll(): snapshots publish through an RCU pointer
  // swap, and the returned shared_ptr keeps the epoch alive for as long as the
  // caller's query runs.
  std::shared_ptr<const core::LiveSnapshot> LatestSnapshot(const std::string& name) const;

  // The live-query context of |name| (slot + models + fps), or null. Stable
  // once AddStream returned; the server's QUERY verb uses it to execute
  // snapshot queries.
  const LiveStreamContext* LiveContext(const std::string& name) const;

  // Current supervision state of |name|; a stream that never failed (or was
  // never registered) reads Healthy. Thread-safe and safe to call while
  // RunAll() is ingesting — the query side uses it to decide STALE framing.
  StreamHealth Health(const std::string& name) const;

  // Health of every stream that has registered at least one failure or
  // restart. Streams running clean are omitted (they read Healthy).
  std::map<std::string, StreamHealth> FleetHealth() const;

  const IngestServiceOptions& options() const { return options_; }

 private:
  // Cadence for |job| under the service-wide override.
  int64_t FinalizeCadenceFor(const IngestJob& job) const;

  void RecordFailure(const std::string& name, const common::Error& error, bool down);
  void RecordRestart(const std::string& name);
  void RecordSuccess(const std::string& name);

  IngestServiceOptions options_;
  MetricsRegistry* metrics_;
  std::vector<IngestJob> jobs_;
  // One context per live stream (jobs whose effective finalize cadence > 0),
  // keyed by stream name. Built in AddStream — before RunAll's workers start —
  // and never mutated afterwards, so concurrent lookups need no locking.
  std::map<std::string, std::unique_ptr<LiveStreamContext>> live_;
  // Supervision registry: mutated by worker threads, readable concurrently by
  // the query side.
  mutable std::mutex health_mu_;
  std::map<std::string, StreamHealth> health_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_INGEST_SERVICE_H_
