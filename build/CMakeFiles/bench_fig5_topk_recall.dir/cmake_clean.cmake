file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_topk_recall.dir/bench/bench_fig5_topk_recall.cc.o"
  "CMakeFiles/bench_fig5_topk_recall.dir/bench/bench_fig5_topk_recall.cc.o.d"
  "bench_fig5_topk_recall"
  "bench_fig5_topk_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_topk_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
