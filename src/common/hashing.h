// Deterministic, platform-independent hashing helpers.
//
// std::hash is implementation-defined and therefore unsuitable for deriving simulation
// seeds; these helpers give stable results across toolchains.
#ifndef FOCUS_SRC_COMMON_HASHING_H_
#define FOCUS_SRC_COMMON_HASHING_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"

namespace focus::common {

// FNV-1a 64-bit over a byte string.
constexpr uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Order-dependent combination of two 64-bit hashes.
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Convenience: combine an arbitrary number of 64-bit values.
template <typename... Rest>
constexpr uint64_t HashCombine(uint64_t a, uint64_t b, uint64_t c, Rest... rest) {
  return HashCombine(HashCombine(a, b), c, rest...);
}

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_HASHING_H_
