// Unit tests for the incremental clusterer (§4.2).
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/common/rng.h"

namespace focus::cluster {
namespace {

video::Detection Det(common::ObjectId object, common::FrameIndex frame) {
  video::Detection d;
  d.object_id = object;
  d.frame = frame;
  return d;
}

common::FeatureVec Vec(std::initializer_list<float> values) { return common::FeatureVec(values); }

ClustererOptions ExactOptions(double threshold) {
  ClustererOptions opts;
  opts.threshold = threshold;
  opts.mode = ClustererOptions::Mode::kExact;
  return opts;
}

TEST(ClustererTest, FirstObjectFormsFirstCluster) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  int64_t id = clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(clusterer.num_clusters(), 1u);
}

TEST(ClustererTest, NearbyPointsJoinFarPointsSplit) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  int64_t a = clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  int64_t b = clusterer.Add(Det(2, 0), Vec({1.0f, 0.1f}));  // Distance 0.1 < T.
  int64_t c = clusterer.Add(Det(3, 0), Vec({0.0f, 1.0f}));  // Distance ~1.4 > T.
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(clusterer.num_clusters(), 2u);
}

TEST(ClustererTest, AssignsToClosestCluster) {
  IncrementalClusterer clusterer(ExactOptions(1.0));
  clusterer.Add(Det(1, 0), Vec({0.0f, 0.0f}));
  clusterer.Add(Det(2, 0), Vec({2.0f, 0.0f}));  // Beyond T from cluster 0: new cluster.
  ASSERT_EQ(clusterer.num_clusters(), 2u);
  // 1.2 is within T of cluster 1 (distance 0.8) and beyond cluster 0 (1.2 > 1.0).
  int64_t id = clusterer.Add(Det(3, 0), Vec({1.2f, 0.0f}));
  EXPECT_EQ(id, 1);
}

TEST(ClustererTest, CentroidTracksRunningMean) {
  IncrementalClusterer clusterer(ExactOptions(2.0));
  clusterer.Add(Det(1, 0), Vec({0.0f, 0.0f}));
  clusterer.Add(Det(2, 0), Vec({1.0f, 0.0f}));
  const Cluster& c = clusterer.clusters()[0];
  EXPECT_NEAR(c.centroid[0], 0.5f, 1e-6);
  EXPECT_EQ(c.size, 2);
}

TEST(ClustererTest, MemberRunsMergeConsecutiveFrames) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  for (common::FrameIndex f = 0; f < 10; ++f) {
    clusterer.Add(Det(7, f), Vec({1.0f, 0.0f}));
  }
  const Cluster& c = clusterer.clusters()[0];
  ASSERT_EQ(c.members.size(), 1u);
  EXPECT_EQ(c.members[0].object, 7);
  EXPECT_EQ(c.members[0].first_frame, 0);
  EXPECT_EQ(c.members[0].last_frame, 9);
  EXPECT_EQ(c.members[0].FrameCount(), 10);
}

TEST(ClustererTest, InterleavedObjectsKeepSeparateRuns) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  for (common::FrameIndex f = 0; f < 6; ++f) {
    clusterer.Add(Det(1, f), Vec({1.0f, 0.0f}));
    clusterer.Add(Det(2, f), Vec({1.0f, 0.05f}));
  }
  const Cluster& c = clusterer.clusters()[0];
  ASSERT_EQ(c.members.size(), 2u);
  EXPECT_EQ(c.members[0].FrameCount(), 6);
  EXPECT_EQ(c.members[1].FrameCount(), 6);
}

TEST(ClustererTest, NonContiguousFramesOpenNewRun) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  clusterer.Add(Det(1, 5), Vec({1.0f, 0.0f}));  // Gap.
  const Cluster& c = clusterer.clusters()[0];
  ASSERT_EQ(c.members.size(), 2u);
}

TEST(ClustererTest, RepresentativeIsFoundingDetection) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  clusterer.Add(Det(11, 3), Vec({1.0f, 0.0f}));
  clusterer.Add(Det(12, 4), Vec({1.0f, 0.05f}));
  EXPECT_EQ(clusterer.clusters()[0].representative.object_id, 11);
  EXPECT_EQ(clusterer.clusters()[0].representative.frame, 3);
}

TEST(ClustererTest, MaxActiveCapRetiresSmallest) {
  ClustererOptions opts = ExactOptions(0.1);
  opts.max_active = 3;
  IncrementalClusterer clusterer(opts);
  // Grow cluster 0 with several members so it is never the smallest.
  for (common::FrameIndex f = 0; f < 5; ++f) {
    clusterer.Add(Det(1, f), Vec({0.0f, 0.0f}));
  }
  clusterer.Add(Det(2, 0), Vec({10.0f, 0.0f}));
  clusterer.Add(Det(3, 0), Vec({20.0f, 0.0f}));
  EXPECT_EQ(clusterer.num_active(), 3u);
  clusterer.Add(Det(4, 0), Vec({30.0f, 0.0f}));  // Forces retirement of a singleton.
  EXPECT_EQ(clusterer.num_active(), 3u);
  EXPECT_EQ(clusterer.num_clusters(), 4u);  // Retired clusters remain in the output.
  int active = 0;
  for (const Cluster& c : clusterer.clusters()) {
    if (c.active) {
      ++active;
    }
  }
  EXPECT_EQ(active, 3);
  // The big cluster survived.
  EXPECT_TRUE(clusterer.clusters()[0].active);
}

TEST(ClustererTest, SuppressedAddReusesPreviousCluster) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  clusterer.Add(Det(1, 0), Vec({1.0f, 0.0f}));
  common::FeatureVec before = clusterer.clusters()[0].centroid;
  int64_t id = clusterer.AddSuppressed(Det(1, 1), Vec({0.0f, 9.0f}));  // Feature ignored.
  EXPECT_EQ(id, 0);
  EXPECT_EQ(clusterer.clusters()[0].centroid, before);  // Centroid untouched.
  EXPECT_EQ(clusterer.clusters()[0].size, 2);
}

TEST(ClustererTest, SuppressedAddWithoutHistoryFallsBack) {
  IncrementalClusterer clusterer(ExactOptions(0.5));
  int64_t id = clusterer.AddSuppressed(Det(5, 0), Vec({1.0f, 0.0f}));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(clusterer.num_clusters(), 1u);
}

TEST(ClustererTest, FastModeApproximatesExactMode) {
  // Run the same synthetic workload through both modes; cluster counts must be close
  // and same-object assignments identical in the common case.
  common::Pcg32 rng(13);
  constexpr int kObjects = 60;
  constexpr int kFramesPerObject = 40;
  constexpr size_t kDim = 16;

  std::vector<common::FeatureVec> base(kObjects);
  for (auto& v : base) {
    v = common::RandomUnitVector(kDim, rng);
  }

  ClustererOptions exact = ExactOptions(0.4);
  ClustererOptions fast = exact;
  fast.mode = ClustererOptions::Mode::kFast;
  IncrementalClusterer a(exact);
  IncrementalClusterer b(fast);
  common::Pcg32 noise(29);
  for (int f = 0; f < kFramesPerObject; ++f) {
    for (int o = 0; o < kObjects; ++o) {
      common::FeatureVec v = common::PerturbedUnitVector(base[o], 0.05, noise);
      a.Add(Det(o, f), v);
      b.Add(Det(o, f), v);
    }
  }
  double ratio = static_cast<double>(b.num_clusters()) / static_cast<double>(a.num_clusters());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
  EXPECT_GT(b.FastHitRate(), 0.8);
}

TEST(ClustererTest, NewClusterAtCapacityIsNotRetiredItself) {
  // Regression: when the active set is full and every existing cluster is
  // bigger, creating a new cluster used to retire the just-created size-1
  // cluster — which was then still returned (and LRU'd) as the assignment
  // target. The retire must evict one of the *old* clusters instead.
  ClustererOptions opts = ExactOptions(0.1);
  opts.max_active = 2;
  IncrementalClusterer clusterer(opts);
  for (common::FrameIndex f = 0; f < 3; ++f) {
    clusterer.Add(Det(1, f), Vec({0.0f, 0.0f}));  // Cluster 0, size 3.
  }
  for (common::FrameIndex f = 0; f < 2; ++f) {
    clusterer.Add(Det(2, f), Vec({10.0f, 0.0f}));  // Cluster 1, size 2.
  }
  int64_t id = clusterer.Add(Det(3, 0), Vec({20.0f, 0.0f}));  // At capacity.
  EXPECT_EQ(id, 2);
  EXPECT_TRUE(clusterer.clusters()[static_cast<size_t>(id)].active);
  EXPECT_EQ(clusterer.num_active(), 2u);
  // The smallest *pre-existing* cluster (id 1, size 2) was the one retired.
  EXPECT_FALSE(clusterer.clusters()[1].active);
  EXPECT_TRUE(clusterer.clusters()[0].active);
  // And the new cluster accepts members, as an active cluster must.
  EXPECT_EQ(clusterer.Add(Det(3, 1), Vec({20.0f, 0.01f})), id);
}

TEST(ClustererTest, RetireHeapMatchesLinearMinScan) {
  // The lazy min-size heap must retire exactly the cluster the seed's
  // min_element scan picked: smallest size, smallest id on ties — including
  // after sizes grew since the cluster entered the heap.
  ClustererOptions opts = ExactOptions(0.1);
  opts.max_active = 4;
  IncrementalClusterer clusterer(opts);
  clusterer.Add(Det(1, 0), Vec({0.0f, 0.0f}));    // id 0
  clusterer.Add(Det(2, 0), Vec({10.0f, 0.0f}));   // id 1
  clusterer.Add(Det(3, 0), Vec({20.0f, 0.0f}));   // id 2
  clusterer.Add(Det(4, 0), Vec({30.0f, 0.0f}));   // id 3
  // Grow ids 0 and 1 after insertion (stale heap entries at size 1).
  for (common::FrameIndex f = 1; f < 4; ++f) {
    clusterer.Add(Det(1, f), Vec({0.0f, 0.0f}));
    clusterer.Add(Det(2, f), Vec({10.0f, 0.0f}));
  }
  // ids 2 and 3 are tied at size 1; the smaller id must be retired.
  clusterer.Add(Det(5, 0), Vec({40.0f, 0.0f}));
  EXPECT_FALSE(clusterer.clusters()[2].active);
  EXPECT_TRUE(clusterer.clusters()[0].active);
  EXPECT_TRUE(clusterer.clusters()[1].active);
  EXPECT_TRUE(clusterer.clusters()[3].active);
}

// Scalar double-precision reference of the seed's exact-mode assignment loop
// (in-order scan, strict-< tie keeping, bounded distances).
class SeedReferenceClusterer {
 public:
  explicit SeedReferenceClusterer(double threshold) : threshold_sq_(threshold * threshold) {}

  int64_t Add(const common::FeatureVec& feature) {
    int64_t best = -1;
    double best_dist = std::numeric_limits<double>::max();
    double bound = threshold_sq_;
    for (size_t c = 0; c < centroids_.size(); ++c) {
      double d = common::SquaredL2DistanceBounded(centroids_[c], feature, bound);
      if (d <= bound && d < best_dist) {
        best_dist = d;
        best = static_cast<int64_t>(c);
        bound = d;
      }
    }
    if (best >= 0) {
      common::FeatureVec& mean = centroids_[static_cast<size_t>(best)];
      double w = 1.0 / static_cast<double>(sizes_[static_cast<size_t>(best)] + 1);
      for (size_t i = 0; i < mean.size(); ++i) {
        mean[i] = static_cast<float>(mean[i] * (1.0 - w) + feature[i] * w);
      }
      ++sizes_[static_cast<size_t>(best)];
      return best;
    }
    centroids_.push_back(feature);
    sizes_.push_back(1);
    return static_cast<int64_t>(centroids_.size()) - 1;
  }

 private:
  double threshold_sq_;
  std::vector<common::FeatureVec> centroids_;
  std::vector<int64_t> sizes_;
};

TEST(ClustererTest, AssignmentsIdenticalToSeedReferenceOnFixedStream) {
  // The SoA/SIMD scan must reproduce the seed implementation's assignment
  // sequence exactly on a fixed-seed stream (dims straddling the head tile).
  for (size_t dim : {16u, 64u, 96u, 200u}) {
    common::Pcg32 rng(2000 + dim);
    constexpr int kArchetypes = 40;
    std::vector<common::FeatureVec> base(kArchetypes);
    for (auto& v : base) {
      v = common::RandomUnitVector(dim, rng);
    }
    SeedReferenceClusterer ref(0.5);
    IncrementalClusterer clusterer(ExactOptions(0.5));
    for (int i = 0; i < 1500; ++i) {
      const common::FeatureVec v =
          common::PerturbedUnitVector(base[rng.Next() % kArchetypes], 0.2, rng);
      int64_t want = ref.Add(v);
      int64_t got = clusterer.Add(Det(i, i), v);
      ASSERT_EQ(got, want) << "dim=" << dim << " i=" << i;
    }
  }
}

TEST(ClustererTest, ResetReusesClustererAcrossRuns) {
  common::Pcg32 rng(57);
  std::vector<common::FeatureVec> stream;
  for (int i = 0; i < 200; ++i) {
    stream.push_back(common::RandomUnitVector(32, rng));
  }
  // A fresh clusterer and a Reset clusterer must produce identical clusterings.
  IncrementalClusterer fresh(ExactOptions(0.6));
  IncrementalClusterer reused(ExactOptions(1.5));  // Different options first.
  for (int i = 0; i < 100; ++i) {
    reused.Add(Det(i, i), stream[static_cast<size_t>(i)]);
  }
  reused.Reset(ExactOptions(0.6));
  EXPECT_EQ(reused.num_clusters(), 0u);
  EXPECT_EQ(reused.num_active(), 0u);
  EXPECT_EQ(reused.total_assignments(), 0);
  for (int i = 0; i < 200; ++i) {
    int64_t a = fresh.Add(Det(i, i), stream[static_cast<size_t>(i)]);
    int64_t b = reused.Add(Det(i, i), stream[static_cast<size_t>(i)]);
    ASSERT_EQ(a, b) << "i=" << i;
  }
  EXPECT_EQ(fresh.num_clusters(), reused.num_clusters());
}

TEST(ClustererTest, ThresholdControlsGranularity) {
  common::Pcg32 rng(31);
  std::vector<common::FeatureVec> points;
  common::FeatureVec center = common::RandomUnitVector(16, rng);
  for (int i = 0; i < 200; ++i) {
    points.push_back(common::PerturbedUnitVector(center, 0.3, rng));
  }
  size_t tight_clusters = 0;
  size_t loose_clusters = 0;
  {
    IncrementalClusterer tight(ExactOptions(0.15));
    for (size_t i = 0; i < points.size(); ++i) {
      tight.Add(Det(static_cast<common::ObjectId>(i), 0), points[i]);
    }
    tight_clusters = tight.num_clusters();
  }
  {
    IncrementalClusterer loose(ExactOptions(1.0));
    for (size_t i = 0; i < points.size(); ++i) {
      loose.Add(Det(static_cast<common::ObjectId>(i), 0), points[i]);
    }
    loose_clusters = loose.num_clusters();
  }
  EXPECT_GT(tight_clusters, loose_clusters);
  EXPECT_LE(loose_clusters, 3u);
}

}  // namespace
}  // namespace focus::cluster
