// Figure 9: the trade-off flexibility per stream — Focus-Opt-Ingest vs
// Focus-Opt-Query, each reported as (I, Q) = (ingest cheaper-by, query faster-by),
// for the 9 representative streams. The tuner grid is measured once per stream and
// both policies are selections over it.
// Paper: Opt-Ingest averages (95x, 35x); Opt-Query averages (15x, 49x).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/core/parameter_tuner.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  bench::PrintHeader("Figure 9: Opt-Ingest vs Opt-Query trade-offs per stream");
  std::printf("%-12s | %-30s | %-30s\n", "", "Focus-Opt-Ingest", "Focus-Opt-Query");
  std::printf("%-12s | %13s %14s | %13s %14s\n", "Stream", "IngestCheaper", "QueryFaster",
              "IngestCheaper", "QueryFaster");

  std::vector<double> oi_i, oi_q, oq_i, oq_q;
  for (const std::string& name : video::RepresentativeNineStreams()) {
    video::StreamRun run = bench::MakeRun(catalog, name, config);
    video::StreamProfile profile;
    video::FindProfile(name, &profile);
    core::ParameterTuner tuner(&catalog, &gt, {});
    std::vector<core::EvaluatedConfig> grid =
        tuner.EvaluateGrid(run, profile.appearance_variability);

    core::TuningResult opt_i =
        core::SelectFromEvaluated(grid, core::AccuracyTarget{}, core::Policy::kOptIngest);
    core::TuningResult opt_q =
        core::SelectFromEvaluated(grid, core::AccuracyTarget{}, core::Policy::kOptQuery);
    if (!opt_i.found || !opt_q.found) {
      std::printf("%-12s | (no viable configuration)\n", name.c_str());
      continue;
    }
    bench::StreamOutcome a =
        bench::DeployConfig(catalog, run, opt_i.chosen().params, gt, core::Policy::kOptIngest);
    bench::StreamOutcome b =
        bench::DeployConfig(catalog, run, opt_q.chosen().params, gt, core::Policy::kOptQuery);

    std::printf("%-12s | %12.1fx %13.1fx | %12.1fx %13.1fx\n", name.c_str(),
                a.ingest_cheaper_by, a.query_faster_by, b.ingest_cheaper_by, b.query_faster_by);
    oi_i.push_back(a.ingest_cheaper_by);
    oi_q.push_back(a.query_faster_by);
    oq_i.push_back(b.ingest_cheaper_by);
    oq_q.push_back(b.query_faster_by);
  }
  std::printf("%-12s | %12.1fx %13.1fx | %12.1fx %13.1fx\n", "Average", common::Mean(oi_i),
              common::Mean(oi_q), common::Mean(oq_i), common::Mean(oq_q));
  std::printf("\nPaper: Opt-Ingest avg (95x cheaper, 35x faster); Opt-Query avg (15x, 49x).\n"
              "Checkpoint: Opt-Ingest has the cheaper ingest of the two on every stream.\n");
  return 0;
}
