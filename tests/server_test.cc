// Tests for the query-server frontend: protocol parsing (strictness, options,
// errors), request handling against a real one-camera fleet, payload framing, and
// concurrent read-only query handling through a worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "src/cnn/ground_truth.h"
#include "src/runtime/worker_pool.h"
#include "src/server/query_server.h"

namespace focus::server {
namespace {

// --- ParseRequest ---

TEST(ProtocolTest, ParsesPingCamerasClasses) {
  auto ping = ParseRequest("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, Verb::kPing);

  auto cameras = ParseRequest("  CAMERAS  ");
  ASSERT_TRUE(cameras.ok());
  EXPECT_EQ(cameras->verb, Verb::kCameras);

  auto classes = ParseRequest("CLASSES ped");
  ASSERT_TRUE(classes.ok());
  EXPECT_EQ(classes->verb, Verb::kClasses);
  EXPECT_EQ(classes->class_filter, "ped");
}

TEST(ProtocolTest, ParsesFullQuery) {
  auto request = ParseRequest("QUERY north car BEGIN 60 END 120.5 KX 2");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->verb, Verb::kQuery);
  EXPECT_EQ(request->camera, "north");
  EXPECT_EQ(request->class_name, "car");
  EXPECT_DOUBLE_EQ(request->range.begin_sec, 60.0);
  EXPECT_DOUBLE_EQ(request->range.end_sec, 120.5);
  EXPECT_EQ(request->kx, 2);
}

TEST(ProtocolTest, QueryDefaultsAreOpenEnded) {
  auto request = ParseRequest("QUERY cam car");
  ASSERT_TRUE(request.ok());
  EXPECT_DOUBLE_EQ(request->range.begin_sec, 0.0);
  EXPECT_LT(request->range.end_sec, 0.0);
  EXPECT_EQ(request->kx, -1);
}

TEST(ProtocolTest, ParsesHealthWithOptionalCamera) {
  auto fleet_wide = ParseRequest("HEALTH");
  ASSERT_TRUE(fleet_wide.ok());
  EXPECT_EQ(fleet_wide->verb, Verb::kHealth);
  EXPECT_TRUE(fleet_wide->camera.empty());

  auto one = ParseRequest("HEALTH north");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->verb, Verb::kHealth);
  EXPECT_EQ(one->camera, "north");

  EXPECT_FALSE(ParseRequest("HEALTH north extra").ok());
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("FROB x").ok());               // Unknown verb.
  EXPECT_FALSE(ParseRequest("PING extra").ok());           // Trailing junk.
  EXPECT_FALSE(ParseRequest("QUERY cam").ok());            // Missing class.
  EXPECT_FALSE(ParseRequest("QUERY cam car BEGIN").ok());  // Option without value.
  EXPECT_FALSE(ParseRequest("QUERY cam car BEGIN abc").ok());
  EXPECT_FALSE(ParseRequest("QUERY cam car FOO 3").ok());  // Unknown option.
  EXPECT_FALSE(ParseRequest("QUERY cam car KX 0").ok());   // Non-positive Kx.
  EXPECT_FALSE(ParseRequest("QUERY cam car BEGIN 100 END 50").ok());  // Inverted range.
  EXPECT_FALSE(ParseRequest("STATS").ok());
  EXPECT_FALSE(ParseRequest("CLASSES a b").ok());
}

TEST(ProtocolTest, ResponsesAreFramed) {
  EXPECT_EQ(OkResponse(""), "OK");
  EXPECT_EQ(OkResponse("PONG"), "OK PONG");
  std::string err = ErrResponse(common::ErrorCode::kNotFound, "nope");
  EXPECT_EQ(err, "ERR NotFound nope");
}

// --- QueryServer over a real fleet ---

class QueryServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(29);
    fleet_ = new core::FocusFleet();
    core::FocusOptions options;
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    ASSERT_TRUE(
        fleet_->AddCamera("north", catalog_, profile, 120.0, 30.0, 77, options).ok());

    const core::FocusStream* north = fleet_->Find("north");
    cnn::SegmentGroundTruth truth(north->run(), north->gt_cnn());
    auto dominant = truth.DominantClasses(0.95, 1);
    ASSERT_FALSE(dominant.empty());
    dominant_name_ = new std::string(catalog_->Name(dominant[0]));
  }

  static void TearDownTestSuite() {
    delete dominant_name_;
    delete fleet_;
    delete catalog_;
    dominant_name_ = nullptr;
    fleet_ = nullptr;
    catalog_ = nullptr;
  }

  static video::ClassCatalog* catalog_;
  static core::FocusFleet* fleet_;
  static std::string* dominant_name_;
};

video::ClassCatalog* QueryServerTest::catalog_ = nullptr;
core::FocusFleet* QueryServerTest::fleet_ = nullptr;
std::string* QueryServerTest::dominant_name_ = nullptr;

TEST_F(QueryServerTest, PingPongs) {
  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  EXPECT_EQ(server.HandleLine("PING"), "OK PONG");
  EXPECT_EQ(metrics.counter("server.requests"), 1);
}

TEST_F(QueryServerTest, CamerasListsTheFleet) {
  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  EXPECT_EQ(server.HandleLine("CAMERAS"), "OK 1\nnorth");
}

TEST_F(QueryServerTest, QueryReturnsFramesAndRuns) {
  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  std::string response = server.HandleLine("QUERY north " + *dominant_name_);
  ASSERT_EQ(response.rfind("OK FRAMES ", 0), 0u) << response;

  // Every RUN line parses as two ordered frame numbers.
  std::istringstream lines(response);
  std::string line;
  std::getline(lines, line);  // Summary.
  int64_t runs = 0;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string tag;
    int64_t first = 0;
    int64_t last = 0;
    ASSERT_TRUE(fields >> tag >> first >> last) << line;
    EXPECT_EQ(tag, "RUN");
    EXPECT_LE(first, last);
    ++runs;
  }
  EXPECT_GT(runs, 0);
  EXPECT_EQ(metrics.counter("server.queries"), 1);
}

TEST_F(QueryServerTest, QueryAgreesWithDirectFleetCall) {
  QueryServer server(fleet_, catalog_);
  std::string response =
      server.HandleLine("QUERY north " + *dominant_name_ + " BEGIN 30 END 90");
  auto direct = fleet_->Query(catalog_->IdForName(*dominant_name_), {"north"},
                              common::TimeRange{30.0, 90.0});
  ASSERT_TRUE(direct.ok());
  std::ostringstream expected;
  expected << "OK FRAMES " << direct->hits[0].result.frames_returned;
  EXPECT_EQ(response.rfind(expected.str(), 0), 0u) << response;
}

TEST_F(QueryServerTest, ErrorsAreFramedNotThrown) {
  QueryServer server(fleet_, catalog_);
  EXPECT_EQ(server.HandleLine("QUERY nowhere car").rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(server.HandleLine("QUERY north not_a_class").rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(server.HandleLine("gibberish").rfind("ERR InvalidArgument", 0), 0u);
}

TEST_F(QueryServerTest, ClassesFilterBoundsThePayload) {
  QueryServer server(fleet_, catalog_);
  std::string all = server.HandleLine("CLASSES");
  EXPECT_EQ(all.rfind("OK 1000", 0), 0u) << all.substr(0, 40);
  EXPECT_NE(all.find("first 50 shown"), std::string::npos);

  std::string none = server.HandleLine("CLASSES zzz_no_such_class");
  EXPECT_EQ(none, "OK 0");
}

TEST_F(QueryServerTest, StatsDescribesTheDeployment) {
  QueryServer server(fleet_, catalog_);
  std::string response = server.HandleLine("STATS north");
  EXPECT_EQ(response.rfind("OK MODEL ", 0), 0u);
  EXPECT_NE(response.find(" CLUSTERS "), std::string::npos);
  EXPECT_NE(response.find(" INGEST_GPU_MS "), std::string::npos);
}

TEST_F(QueryServerTest, ConcurrentQueriesAreConsistent) {
  QueryServer server(fleet_, catalog_);
  const std::string request = "QUERY north " + *dominant_name_;
  const std::string expected = server.HandleLine(request);

  std::atomic<int> mismatches{0};
  {
    runtime::WorkerPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] {
        if (server.HandleLine(request) != expected) {
          mismatches.fetch_add(1);
        }
      });
    }
    pool.Drain();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace focus::server
