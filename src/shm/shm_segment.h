// POSIX shared-memory segment: the mapping primitive under the epoch plane.
//
// A SharedSegment is one named shm object (`shm_open`) mapped read-write into
// this process. The creator sizes it once (`ftruncate`) and maps the whole
// range up front; /dev/shm backs pages lazily on first touch, so a generously
// sized segment costs only the bytes actually written. Fixing the size at
// creation keeps every attached process's mapping stable for the segment's
// lifetime — a pointer into the mapping never moves, which is what lets the
// epoch plane hand out zero-copy views across processes (src/shm/epoch_plane.h
// allocates regions append-only inside this fixed arena and re-points region
// descriptors instead of ever growing the file).
//
// Lifetime: destroying a SharedSegment unmaps and closes but never unlinks —
// the name outlives any one attach, which is the point of a multi-process
// plane. Unlink(name) removes the name explicitly (the owner's teardown);
// attached mappings survive an unlink until they detach, per POSIX.
#ifndef FOCUS_SRC_SHM_SHM_SEGMENT_H_
#define FOCUS_SRC_SHM_SHM_SEGMENT_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/common/result.h"

namespace focus::shm {

class SharedSegment {
 public:
  // Creates (or replaces) the shm object |name| at exactly |bytes| and maps
  // it. |name| must start with '/' and contain no further slashes. An
  // existing object of the same name is unlinked first so a restarted
  // publisher never adopts a stale layout.
  static common::Result<std::unique_ptr<SharedSegment>> Create(const std::string& name,
                                                               size_t bytes);

  // Attaches to an existing object and maps its current size.
  static common::Result<std::unique_ptr<SharedSegment>> Open(const std::string& name);

  // Removes |name| from the namespace (attached mappings stay valid).
  static void Unlink(const std::string& name);

  ~SharedSegment();

  SharedSegment(const SharedSegment&) = delete;
  SharedSegment& operator=(const SharedSegment&) = delete;

  void* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& name() const { return name_; }

  char* bytes() const { return static_cast<char*>(data_); }

 private:
  SharedSegment(std::string name, int fd, void* data, size_t size)
      : name_(std::move(name)), fd_(fd), data_(data), size_(size) {}

  std::string name_;
  int fd_ = -1;
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace focus::shm

#endif  // FOCUS_SRC_SHM_SHM_SEGMENT_H_
