file(REMOVE_RECURSE
  "CMakeFiles/codec_property_test.dir/tests/codec_property_test.cc.o"
  "CMakeFiles/codec_property_test.dir/tests/codec_property_test.cc.o.d"
  "codec_property_test"
  "codec_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
