// Cluster-assignment throughput: scalar AoS full scan (the seed implementation)
// vs the SoA CentroidStore with norm-pruned, SIMD-batched candidate search.
//
// The per-detection assignment scan is the hottest loop of ingest (§4.2 runs it
// once per detection against up to max_active centroids), so this bench tracks
// the speedup of the store-based scan across feature dimensionality and active-
// set size, and — because the optimization must not change results — verifies
// that both implementations produce identical assignment sequences on the same
// fixed-seed stream.
//
// Workload: |active| well-separated unit archetypes (random unit vectors in high
// dimension are near-orthogonal, pairwise distance ~= sqrt(2)); one warmup
// detection per archetype populates the active set, then every measured
// detection is a noisy observation of a random archetype, which joins its
// archetype's cluster under T = 0.5 — exactly the steady-state geometry the
// simulator's ingest produces.
//
// Emits BENCH_cluster_assign.json next to the binary. FOCUS_BENCH_ASSIGNS
// overrides the measured detections per configuration (default 2000).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/common/feature_vector.h"
#include "src/common/rng.h"

namespace {

using focus::cluster::ClustererOptions;
using focus::cluster::IncrementalClusterer;
using focus::common::FeatureVec;

// The seed's assignment path, kept verbatim as the baseline: array-of-structs
// centroids (one heap-allocated vector each), scalar double-precision bounded
// distances, linear min-size retire scan. Membership bookkeeping is omitted —
// it is identical in both implementations and outside the scan under test.
class ReferenceClusterer {
 public:
  ReferenceClusterer(double threshold, size_t max_active)
      : threshold_sq_(threshold * threshold), max_active_(max_active) {}

  int64_t Add(const FeatureVec& feature) {
    int64_t best = -1;
    double best_dist = std::numeric_limits<double>::max();
    double bound = threshold_sq_;
    for (int64_t id : active_ids_) {
      const Centroid& c = centroids_[static_cast<size_t>(id)];
      double d = focus::common::SquaredL2DistanceBounded(c.mean, feature, bound);
      if (d <= bound && d < best_dist) {
        best_dist = d;
        best = id;
        bound = d;
      }
    }
    if (best >= 0) {
      Join(centroids_[static_cast<size_t>(best)], feature);
      return best;
    }
    // Retire-before-insert, matching IncrementalClusterer::CreateCluster.
    if (active_ids_.size() >= max_active_) {
      RetireSmallest();
    }
    Centroid c;
    c.mean = feature;
    c.size = 1;
    int64_t id = static_cast<int64_t>(centroids_.size());
    centroids_.push_back(std::move(c));
    active_ids_.push_back(id);
    return id;
  }

 private:
  struct Centroid {
    FeatureVec mean;
    int64_t size = 0;
  };

  void Join(Centroid& c, const FeatureVec& feature) {
    double w = 1.0 / static_cast<double>(c.size + 1);
    for (size_t i = 0; i < c.mean.size(); ++i) {
      c.mean[i] = static_cast<float>(c.mean[i] * (1.0 - w) + feature[i] * w);
    }
    ++c.size;
  }

  void RetireSmallest() {
    auto it = active_ids_.begin();
    for (auto cur = active_ids_.begin(); cur != active_ids_.end(); ++cur) {
      if (centroids_[static_cast<size_t>(*cur)].size <
          centroids_[static_cast<size_t>(*it)].size) {
        it = cur;
      }
    }
    if (it != active_ids_.end()) {
      active_ids_.erase(it);
    }
  }

  double threshold_sq_;
  size_t max_active_;
  std::vector<Centroid> centroids_;
  std::vector<int64_t> active_ids_;
};

struct ConfigResult {
  size_t dim = 0;
  size_t active = 0;
  int64_t assigns = 0;
  bool unit_norm = true;                 // Near-unit vectors (the CNN-feature case).
  double ref_ns_per_assign = 0.0;
  double simd_ns_per_assign = 0.0;       // Dim-derived head tile (the default).
  double simd64_ns_per_assign = 0.0;     // Fixed 64-dim head tile (pre-PR3 policy).
  size_t head_dim = 0;                   // Width HeadDimFor picked for this dim.
  double speedup = 0.0;                  // scalar / simd (default policy).
  double speedup_head64 = 0.0;           // scalar / simd (fixed-64 policy).
  double prune_rate = 0.0;               // Norm prune (stage 1); ~0 on unit norms.
  double head_only_rate = 0.0;           // Resolved by the head tile (stage 2-3).
  bool identical = false;
};

focus::video::Detection Det(int64_t i) {
  focus::video::Detection d;
  d.object_id = i;
  d.frame = i;
  return d;
}

ConfigResult RunConfig(size_t dim, size_t active, int64_t assigns, bool unit_norm) {
  constexpr double kThreshold = 0.5;
  constexpr double kNoise = 0.2;

  focus::common::Pcg32 rng(focus::common::DeriveSeed(42, dim * 100003 + active));
  std::vector<FeatureVec> archetypes;
  archetypes.reserve(active);
  for (size_t i = 0; i < active; ++i) {
    archetypes.push_back(focus::common::RandomUnitVector(dim, rng));
  }
  // Non-unit workload: give every archetype its own magnitude, so centroid
  // norms spread across [0.6, 1.8] and the stage-1 norm prune actually fires
  // (near-unit CNN features never trigger it — all norms are ~1, so the norm
  // gap can't exceed T; the head tile is what prunes there). Observations keep
  // their archetype's magnitude; per-observation noise shrinks with the
  // magnitude so every observation still lands within T of its cluster.
  std::vector<double> magnitude(active, 1.0);
  if (!unit_norm) {
    for (size_t i = 0; i < active; ++i) {
      magnitude[i] = rng.NextDouble(0.6, 1.8);
    }
  }
  auto observe = [&](size_t archetype) {
    FeatureVec f =
        focus::common::PerturbedUnitVector(archetypes[archetype], kNoise * 0.5, rng);
    if (!unit_norm) {
      focus::common::ScaleInPlace(f, magnitude[archetype]);
    }
    return f;
  };
  // Warmup detections (one per archetype, creating the active set), then the
  // measured stream of noisy observations of random archetypes.
  std::vector<FeatureVec> stream;
  stream.reserve(active + static_cast<size_t>(assigns));
  if (unit_norm) {
    for (size_t i = 0; i < active; ++i) {
      stream.push_back(focus::common::PerturbedUnitVector(archetypes[i], kNoise, rng));
    }
    for (int64_t i = 0; i < assigns; ++i) {
      const FeatureVec& arch = archetypes[rng.Next() % active];
      stream.push_back(focus::common::PerturbedUnitVector(arch, kNoise, rng));
    }
  } else {
    for (size_t i = 0; i < active; ++i) {
      stream.push_back(observe(i));
    }
    for (int64_t i = 0; i < assigns; ++i) {
      stream.push_back(observe(rng.Next() % active));
    }
  }

  ConfigResult out;
  out.dim = dim;
  out.active = active;
  out.assigns = assigns;
  out.unit_norm = unit_norm;

  std::vector<int64_t> ref_assignments(stream.size());
  std::vector<int64_t> simd_assignments(stream.size());

  {
    ReferenceClusterer ref(kThreshold, active);
    for (size_t i = 0; i < active; ++i) {
      ref_assignments[i] = ref.Add(stream[i]);
    }
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = active; i < stream.size(); ++i) {
      ref_assignments[i] = ref.Add(stream[i]);
    }
    auto t1 = std::chrono::steady_clock::now();
    out.ref_ns_per_assign =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(assigns);
  }

  // Store path, twice: the dim-derived head tile (the default policy) and the
  // fixed 64-dim tile it replaced, on the identical workload — the tracked
  // before/after of the head-tile-width change. Head width is a cost knob only;
  // both must reproduce the reference assignments exactly.
  auto run_store = [&](size_t head_dim, std::vector<int64_t>* assignments_out,
                       double* ns_out, ConfigResult* stats_out) {
    ClustererOptions opts;
    opts.threshold = kThreshold;
    opts.max_active = active;
    opts.mode = ClustererOptions::Mode::kExact;  // Full scan: the path under test.
    opts.head_dim = head_dim;
    IncrementalClusterer clusterer(opts);
    for (size_t i = 0; i < active; ++i) {
      (*assignments_out)[i] = clusterer.Add(Det(static_cast<int64_t>(i)), stream[i]);
    }
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = active; i < stream.size(); ++i) {
      (*assignments_out)[i] = clusterer.Add(Det(static_cast<int64_t>(i)), stream[i]);
    }
    auto t1 = std::chrono::steady_clock::now();
    *ns_out =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(assigns);
    const auto& store = clusterer.centroid_store();
    if (stats_out != nullptr) {
      stats_out->head_dim = store.head_dim();
      stats_out->prune_rate = store.scan_candidates() > 0
                                  ? static_cast<double>(store.scan_pruned()) /
                                        static_cast<double>(store.scan_candidates())
                                  : 0.0;
      stats_out->head_only_rate = store.scan_candidates() > 0
                                      ? static_cast<double>(store.scan_head_only()) /
                                            static_cast<double>(store.scan_candidates())
                                      : 0.0;
    }
  };

  run_store(/*head_dim=*/0, &simd_assignments, &out.simd_ns_per_assign, &out);
  std::vector<int64_t> simd64_assignments(stream.size());
  run_store(/*head_dim=*/64, &simd64_assignments, &out.simd64_ns_per_assign, nullptr);

  out.identical =
      ref_assignments == simd_assignments && ref_assignments == simd64_assignments;
  out.speedup = out.simd_ns_per_assign > 0.0 ? out.ref_ns_per_assign / out.simd_ns_per_assign : 0.0;
  out.speedup_head64 =
      out.simd64_ns_per_assign > 0.0 ? out.ref_ns_per_assign / out.simd64_ns_per_assign : 0.0;
  return out;
}

}  // namespace

int main() {
  int64_t assigns = 2000;
  if (const char* env = std::getenv("FOCUS_BENCH_ASSIGNS")) {
    assigns = std::atoll(env);
  }

  const size_t dims[] = {128, 512, 1024};
  const size_t actives[] = {256, 4096};

  std::printf("cluster-assignment throughput: scalar AoS full scan vs SoA + SIMD scan\n");
  std::printf("%6s %7s %9s %5s %5s %14s %14s %14s %8s %9s %7s %7s %10s\n", "dim", "active",
              "assigns", "norm", "head", "scalar ns/add", "simd ns/add", "head64 ns/add",
              "speedup", "spd-h64", "prune", "head-o", "identical");

  std::vector<ConfigResult> results;
  bool all_identical = true;
  auto run_one = [&](size_t dim, size_t active, bool unit_norm) {
    ConfigResult r = RunConfig(dim, active, assigns, unit_norm);
    all_identical = all_identical && r.identical;
    std::printf(
        "%6zu %7zu %9lld %5s %5zu %14.0f %14.0f %14.0f %7.2fx %8.2fx %6.1f%% %6.1f%% %10s\n",
        r.dim, r.active, static_cast<long long>(r.assigns), r.unit_norm ? "unit" : "mix",
        r.head_dim, r.ref_ns_per_assign, r.simd_ns_per_assign, r.simd64_ns_per_assign,
        r.speedup, r.speedup_head64, 100.0 * r.prune_rate, 100.0 * r.head_only_rate,
        r.identical ? "yes" : "NO");
    results.push_back(r);
  };
  for (size_t dim : dims) {
    for (size_t active : actives) {
      run_one(dim, active, /*unit_norm=*/true);
    }
  }
  // One mixed-magnitude config: the workload where the stage-1 norm prune
  // carries the scan (near-unit configs report prune_rate ~0 by design — the
  // head tile is the pruning stage there, visible as head_only_rate).
  run_one(512, 4096, /*unit_norm=*/false);

  FILE* f = std::fopen("BENCH_cluster_assign.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"cluster_assign\",\n  \"configs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& r = results[i];
      std::fprintf(f,
                   "    {\"dim\": %zu, \"active\": %zu, \"assigns\": %lld, \"unit_norm\": %s, "
                   "\"head_dim\": %zu, "
                   "\"scalar_ns_per_assign\": %.1f, \"simd_ns_per_assign\": %.1f, "
                   "\"simd_head64_ns_per_assign\": %.1f, "
                   "\"speedup\": %.3f, \"speedup_head64\": %.3f, \"prune_rate\": %.4f, "
                   "\"head_only_rate\": %.4f, \"identical\": %s}%s\n",
                   r.dim, r.active, static_cast<long long>(r.assigns),
                   r.unit_norm ? "true" : "false", r.head_dim, r.ref_ns_per_assign,
                   r.simd_ns_per_assign, r.simd64_ns_per_assign, r.speedup, r.speedup_head64,
                   r.prune_rate, r.head_only_rate, r.identical ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_cluster_assign.json\n");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: assignment mismatch between scalar and SIMD paths\n");
    return 1;
  }
  return 0;
}
