
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baselines.cc" "CMakeFiles/focus_lib.dir/src/baseline/baselines.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/baseline/baselines.cc.o.d"
  "/root/repo/src/baseline/noscope.cc" "CMakeFiles/focus_lib.dir/src/baseline/noscope.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/baseline/noscope.cc.o.d"
  "/root/repo/src/cluster/centroid_store.cc" "CMakeFiles/focus_lib.dir/src/cluster/centroid_store.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cluster/centroid_store.cc.o.d"
  "/root/repo/src/cluster/incremental_clusterer.cc" "CMakeFiles/focus_lib.dir/src/cluster/incremental_clusterer.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cluster/incremental_clusterer.cc.o.d"
  "/root/repo/src/cnn/accuracy_model.cc" "CMakeFiles/focus_lib.dir/src/cnn/accuracy_model.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/accuracy_model.cc.o.d"
  "/root/repo/src/cnn/cnn.cc" "CMakeFiles/focus_lib.dir/src/cnn/cnn.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/cnn.cc.o.d"
  "/root/repo/src/cnn/compression.cc" "CMakeFiles/focus_lib.dir/src/cnn/compression.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/compression.cc.o.d"
  "/root/repo/src/cnn/cost_model.cc" "CMakeFiles/focus_lib.dir/src/cnn/cost_model.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/cost_model.cc.o.d"
  "/root/repo/src/cnn/ground_truth.cc" "CMakeFiles/focus_lib.dir/src/cnn/ground_truth.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/ground_truth.cc.o.d"
  "/root/repo/src/cnn/model_zoo.cc" "CMakeFiles/focus_lib.dir/src/cnn/model_zoo.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/model_zoo.cc.o.d"
  "/root/repo/src/cnn/specialization.cc" "CMakeFiles/focus_lib.dir/src/cnn/specialization.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/cnn/specialization.cc.o.d"
  "/root/repo/src/common/feature_vector.cc" "CMakeFiles/focus_lib.dir/src/common/feature_vector.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/common/feature_vector.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/focus_lib.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/focus_lib.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/simd_distance.cc" "CMakeFiles/focus_lib.dir/src/common/simd_distance.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/common/simd_distance.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/focus_lib.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/zipf.cc" "CMakeFiles/focus_lib.dir/src/common/zipf.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/common/zipf.cc.o.d"
  "/root/repo/src/core/accuracy_evaluator.cc" "CMakeFiles/focus_lib.dir/src/core/accuracy_evaluator.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/accuracy_evaluator.cc.o.d"
  "/root/repo/src/core/drift_monitor.cc" "CMakeFiles/focus_lib.dir/src/core/drift_monitor.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/drift_monitor.cc.o.d"
  "/root/repo/src/core/fleet.cc" "CMakeFiles/focus_lib.dir/src/core/fleet.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/fleet.cc.o.d"
  "/root/repo/src/core/focus_stream.cc" "CMakeFiles/focus_lib.dir/src/core/focus_stream.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/focus_stream.cc.o.d"
  "/root/repo/src/core/ingest_pipeline.cc" "CMakeFiles/focus_lib.dir/src/core/ingest_pipeline.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/ingest_pipeline.cc.o.d"
  "/root/repo/src/core/parameter_tuner.cc" "CMakeFiles/focus_lib.dir/src/core/parameter_tuner.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/parameter_tuner.cc.o.d"
  "/root/repo/src/core/pareto.cc" "CMakeFiles/focus_lib.dir/src/core/pareto.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/pareto.cc.o.d"
  "/root/repo/src/core/query_engine.cc" "CMakeFiles/focus_lib.dir/src/core/query_engine.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/query_engine.cc.o.d"
  "/root/repo/src/core/query_session.cc" "CMakeFiles/focus_lib.dir/src/core/query_session.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/core/query_session.cc.o.d"
  "/root/repo/src/index/kv_store.cc" "CMakeFiles/focus_lib.dir/src/index/kv_store.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/index/kv_store.cc.o.d"
  "/root/repo/src/index/topk_index.cc" "CMakeFiles/focus_lib.dir/src/index/topk_index.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/index/topk_index.cc.o.d"
  "/root/repo/src/runtime/gpu_device.cc" "CMakeFiles/focus_lib.dir/src/runtime/gpu_device.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/runtime/gpu_device.cc.o.d"
  "/root/repo/src/runtime/ingest_service.cc" "CMakeFiles/focus_lib.dir/src/runtime/ingest_service.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/runtime/ingest_service.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "CMakeFiles/focus_lib.dir/src/runtime/metrics.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/runtime/metrics.cc.o.d"
  "/root/repo/src/runtime/query_service.cc" "CMakeFiles/focus_lib.dir/src/runtime/query_service.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/runtime/query_service.cc.o.d"
  "/root/repo/src/runtime/worker_pool.cc" "CMakeFiles/focus_lib.dir/src/runtime/worker_pool.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/runtime/worker_pool.cc.o.d"
  "/root/repo/src/server/protocol.cc" "CMakeFiles/focus_lib.dir/src/server/protocol.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/server/protocol.cc.o.d"
  "/root/repo/src/server/query_server.cc" "CMakeFiles/focus_lib.dir/src/server/query_server.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/server/query_server.cc.o.d"
  "/root/repo/src/storage/index_codec.cc" "CMakeFiles/focus_lib.dir/src/storage/index_codec.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/storage/index_codec.cc.o.d"
  "/root/repo/src/storage/record_log.cc" "CMakeFiles/focus_lib.dir/src/storage/record_log.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/storage/record_log.cc.o.d"
  "/root/repo/src/storage/serializer.cc" "CMakeFiles/focus_lib.dir/src/storage/serializer.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/storage/serializer.cc.o.d"
  "/root/repo/src/storage/snapshot_store.cc" "CMakeFiles/focus_lib.dir/src/storage/snapshot_store.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/storage/snapshot_store.cc.o.d"
  "/root/repo/src/storage/video_vault.cc" "CMakeFiles/focus_lib.dir/src/storage/video_vault.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/storage/video_vault.cc.o.d"
  "/root/repo/src/video/class_catalog.cc" "CMakeFiles/focus_lib.dir/src/video/class_catalog.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/video/class_catalog.cc.o.d"
  "/root/repo/src/video/dataset.cc" "CMakeFiles/focus_lib.dir/src/video/dataset.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/video/dataset.cc.o.d"
  "/root/repo/src/video/detection.cc" "CMakeFiles/focus_lib.dir/src/video/detection.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/video/detection.cc.o.d"
  "/root/repo/src/video/renderer.cc" "CMakeFiles/focus_lib.dir/src/video/renderer.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/video/renderer.cc.o.d"
  "/root/repo/src/video/stream_generator.cc" "CMakeFiles/focus_lib.dir/src/video/stream_generator.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/video/stream_generator.cc.o.d"
  "/root/repo/src/video/stream_profile.cc" "CMakeFiles/focus_lib.dir/src/video/stream_profile.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/video/stream_profile.cc.o.d"
  "/root/repo/src/vision/background_model.cc" "CMakeFiles/focus_lib.dir/src/vision/background_model.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/vision/background_model.cc.o.d"
  "/root/repo/src/vision/blob_extractor.cc" "CMakeFiles/focus_lib.dir/src/vision/blob_extractor.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/vision/blob_extractor.cc.o.d"
  "/root/repo/src/vision/motion_detector.cc" "CMakeFiles/focus_lib.dir/src/vision/motion_detector.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/vision/motion_detector.cc.o.d"
  "/root/repo/src/vision/pixel_differ.cc" "CMakeFiles/focus_lib.dir/src/vision/pixel_differ.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/vision/pixel_differ.cc.o.d"
  "/root/repo/src/vision/tracker.cc" "CMakeFiles/focus_lib.dir/src/vision/tracker.cc.o" "gcc" "CMakeFiles/focus_lib.dir/src/vision/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
