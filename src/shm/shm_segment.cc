#include "src/shm/shm_segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace focus::shm {

namespace {

common::Error IoError(const std::string& what) {
  return common::Error{common::ErrorCode::kIo, what + ": " + std::strerror(errno)};
}

bool ValidName(const std::string& name) {
  return name.size() > 1 && name.size() < 255 && name[0] == '/' &&
         name.find('/', 1) == std::string::npos;
}

}  // namespace

common::Result<std::unique_ptr<SharedSegment>> SharedSegment::Create(const std::string& name,
                                                                     size_t bytes) {
  if (!ValidName(name)) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "shm name must be /<name> with no inner slashes: " + name};
  }
  if (bytes == 0) {
    return common::Error{common::ErrorCode::kInvalidArgument, "shm segment size must be > 0"};
  }
  ::shm_unlink(name.c_str());  // Never adopt a stale layout; ENOENT is fine.
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    return IoError("shm_open(" + name + ")");
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const common::Error error = IoError("ftruncate(" + name + ")");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return error;
  }
  void* data = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (data == MAP_FAILED) {
    const common::Error error = IoError("mmap(" + name + ")");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return error;
  }
  return std::unique_ptr<SharedSegment>(new SharedSegment(name, fd, data, bytes));
}

common::Result<std::unique_ptr<SharedSegment>> SharedSegment::Open(const std::string& name) {
  if (!ValidName(name)) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "shm name must be /<name> with no inner slashes: " + name};
  }
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    return errno == ENOENT
               ? common::Error{common::ErrorCode::kNotFound, "no shm segment " + name}
               : IoError("shm_open(" + name + ")");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    const common::Error error = IoError("fstat(" + name + ")");
    ::close(fd);
    return error;
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  void* data = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (data == MAP_FAILED) {
    const common::Error error = IoError("mmap(" + name + ")");
    ::close(fd);
    return error;
  }
  return std::unique_ptr<SharedSegment>(new SharedSegment(name, fd, data, bytes));
}

void SharedSegment::Unlink(const std::string& name) { ::shm_unlink(name.c_str()); }

SharedSegment::~SharedSegment() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

}  // namespace focus::shm
