// Single-stream sharded ingest throughput: sequential IncrementalClusterer vs
// ShardedClusterer over a WorkerPool at 1/2/4 shards.
//
// The clusterer is the per-stream serial bottleneck of ingest (ROADMAP item 1:
// one hot camera caps out at one core). Sharding detections by object id onto
// per-shard clusterer+CentroidStore instances attacks it twice:
//   - each shard's full scan covers only its own active set (~active/S
//     centroids), so total scan work drops with the shard count even on a
//     single core;
//   - shards run concurrently on the worker pool, so on multi-core hosts the
//     remaining work also parallelizes.
// This bench tracks detections/sec of both paths in the scan-bound regime
// (kExact full scan per assignment — the worst-case load that motivates
// sharding) and in the production kFast regime, verifies that 1-shard sharded
// assignment ids are identical to the sequential clusterer's, and that merged
// cluster sizes conserve the detection count at 4 shards.
//
// Workload: |active| tracked objects, each a noisy observation of its own
// near-orthogonal unit archetype (the steady-state ingest geometry; one
// cluster per object). Emits BENCH_sharded_ingest.json next to the binary.
// FOCUS_BENCH_SHARD_ASSIGNS overrides measured detections per configuration.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/cluster/sharded_clusterer.h"
#include "src/common/rng.h"
#include "src/runtime/worker_pool.h"

namespace {

using focus::cluster::ClustererOptions;
using focus::cluster::IncrementalClusterer;
using focus::cluster::ShardedClusterer;
using focus::cluster::ShardedClustererOptions;
using focus::common::FeatureVec;

struct Workload {
  std::vector<focus::video::Detection> detections;
  std::vector<FeatureVec> features;
};

Workload MakeWorkload(size_t dim, size_t active, int64_t assigns) {
  constexpr double kNoise = 0.2;
  focus::common::Pcg32 rng(focus::common::DeriveSeed(97, dim * 100003 + active));
  std::vector<FeatureVec> archetypes;
  archetypes.reserve(active);
  for (size_t i = 0; i < active; ++i) {
    archetypes.push_back(focus::common::RandomUnitVector(dim, rng));
  }
  Workload w;
  const size_t total = active + static_cast<size_t>(assigns);
  w.detections.reserve(total);
  w.features.reserve(total);
  // Warmup: one detection per object populates every shard's active set, then
  // the measured stream observes random objects.
  for (size_t i = 0; i < total; ++i) {
    const size_t object = i < active ? i : rng.Next() % active;
    focus::video::Detection d;
    d.object_id = static_cast<int64_t>(object);
    d.frame = static_cast<int64_t>(i);
    w.detections.push_back(d);
    w.features.push_back(focus::common::PerturbedUnitVector(archetypes[object], kNoise, rng));
  }
  return w;
}

struct ShardResult {
  size_t num_shards = 0;
  double ns_per_assign = 0.0;
  double detections_per_sec = 0.0;
  double speedup = 0.0;       // vs the sequential IncrementalClusterer.
  int64_t canonical_clusters = 0;
  bool sizes_conserved = false;
  bool identical = true;      // Only checked at num_shards == 1.
};

struct ConfigResult {
  std::string mode;
  size_t dim = 0;
  size_t active = 0;
  int64_t assigns = 0;
  double seq_ns_per_assign = 0.0;
  std::vector<ShardResult> shards;
};

ConfigResult RunConfig(ClustererOptions::Mode mode, const char* mode_name, size_t dim,
                       size_t active, int64_t assigns) {
  constexpr double kThreshold = 0.5;
  const Workload w = MakeWorkload(dim, active, assigns);
  const size_t warmup = active;
  const size_t total = w.detections.size();

  ConfigResult out;
  out.mode = mode_name;
  out.dim = dim;
  out.active = active;
  out.assigns = assigns;

  std::vector<int64_t> seq_ids(total);
  {
    ClustererOptions opts;
    opts.threshold = kThreshold;
    opts.max_active = active;
    opts.mode = mode;
    IncrementalClusterer clusterer(opts);
    for (size_t i = 0; i < warmup; ++i) {
      seq_ids[i] = clusterer.Add(w.detections[i], w.features[i]);
    }
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = warmup; i < total; ++i) {
      seq_ids[i] = clusterer.Add(w.detections[i], w.features[i]);
    }
    auto t1 = std::chrono::steady_clock::now();
    out.seq_ns_per_assign =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(assigns);
  }

  std::vector<ShardedClusterer::WorkItem> items(total);
  for (size_t i = 0; i < total; ++i) {
    items[i] = {&w.detections[i], &w.features[i], false};
  }

  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedClustererOptions sopts;
    sopts.base.threshold = kThreshold;
    sopts.base.max_active = active;
    sopts.base.mode = mode;
    sopts.num_shards = num_shards;
    sopts.merge_interval = 8192;
    ShardedClusterer sharded(sopts);
    focus::runtime::WorkerPool pool(static_cast<int>(num_shards), num_shards * 2,
                                    /*pop_batch=*/1);
    std::vector<int64_t> ids(total);

    constexpr size_t kBatch = 1024;
    for (size_t offset = 0; offset < warmup; offset += kBatch) {
      const size_t count = std::min(kBatch, warmup - offset);
      sharded.AssignBatch(items.data() + offset, count, &pool, ids.data() + offset);
    }
    // Fold the warmup backlog before the clock starts: warmup creates the
    // whole active set at once, so the first periodic (incremental) merge
    // pass would otherwise pay for every warmup cluster inside the measured
    // window — a bench artifact; live streams grow clusters gradually and
    // each periodic pass stays small (the measured window still runs its own
    // periodic passes).
    sharded.MergePass();
    auto t0 = std::chrono::steady_clock::now();
    for (size_t offset = warmup; offset < total; offset += kBatch) {
      const size_t count = std::min(kBatch, total - offset);
      sharded.AssignBatch(items.data() + offset, count, &pool, ids.data() + offset);
    }
    auto t1 = std::chrono::steady_clock::now();
    pool.Shutdown();

    ShardResult r;
    r.num_shards = num_shards;
    r.ns_per_assign =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(assigns);
    r.detections_per_sec = r.ns_per_assign > 0.0 ? 1e9 / r.ns_per_assign : 0.0;
    r.speedup = r.ns_per_assign > 0.0 ? out.seq_ns_per_assign / r.ns_per_assign : 0.0;
    if (num_shards == 1) {
      r.identical = ids == seq_ids;
    }
    const std::vector<focus::cluster::Cluster> canonical = sharded.FinalizeClusters();
    r.canonical_clusters = static_cast<int64_t>(canonical.size());
    int64_t folded_size = 0;
    for (const focus::cluster::Cluster& c : canonical) {
      folded_size += c.size;
    }
    r.sizes_conserved = folded_size == static_cast<int64_t>(total);
    out.shards.push_back(r);
  }
  return out;
}

}  // namespace

int main() {
  int64_t assigns = 20000;
  if (const char* env = std::getenv("FOCUS_BENCH_SHARD_ASSIGNS")) {
    assigns = std::atoll(env);
  }

  std::printf("single-stream ingest: sequential clusterer vs sharded clusterer + worker pool\n");
  std::printf("%6s %5s %7s %7s %14s %14s %12s %8s %6s %5s\n", "mode", "dim", "active", "shards",
              "seq ns/det", "shard ns/det", "dets/sec", "speedup", "consrv", "ident");

  std::vector<ConfigResult> results;
  // kExact at high dim/active is the scan-bound regime sharding targets; kFast
  // tracks that the production fast path at least breaks even under sharding.
  results.push_back(
      RunConfig(ClustererOptions::Mode::kExact, "exact", 512, 4096, assigns));
  results.push_back(
      RunConfig(ClustererOptions::Mode::kFast, "fast", 512, 4096, assigns));

  bool ok = true;
  double exact_speedup_at_4 = 0.0;
  for (const ConfigResult& cfg : results) {
    for (const ShardResult& r : cfg.shards) {
      std::printf("%6s %5zu %7zu %7zu %14.0f %14.0f %12.0f %7.2fx %6s %5s\n", cfg.mode.c_str(),
                  cfg.dim, cfg.active, r.num_shards, cfg.seq_ns_per_assign, r.ns_per_assign,
                  r.detections_per_sec, r.speedup, r.sizes_conserved ? "yes" : "NO",
                  r.identical ? "yes" : "NO");
      ok = ok && r.sizes_conserved && r.identical;
      if (cfg.mode == "exact" && r.num_shards == 4) {
        exact_speedup_at_4 = r.speedup;
      }
    }
  }

  FILE* f = std::fopen("BENCH_sharded_ingest.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"sharded_ingest\",\n  \"configs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& cfg = results[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"dim\": %zu, \"active\": %zu, \"assigns\": %lld, "
                   "\"seq_ns_per_assign\": %.1f, \"shards\": [\n",
                   cfg.mode.c_str(), cfg.dim, cfg.active, static_cast<long long>(cfg.assigns));
      for (size_t s = 0; s < cfg.shards.size(); ++s) {
        const ShardResult& r = cfg.shards[s];
        std::fprintf(f,
                     "      {\"num_shards\": %zu, \"ns_per_assign\": %.1f, "
                     "\"detections_per_sec\": %.0f, \"speedup\": %.3f, "
                     "\"canonical_clusters\": %lld, \"sizes_conserved\": %s, "
                     "\"identical\": %s}%s\n",
                     r.num_shards, r.ns_per_assign, r.detections_per_sec, r.speedup,
                     static_cast<long long>(r.canonical_clusters),
                     r.sizes_conserved ? "true" : "false", r.identical ? "true" : "false",
                     s + 1 < cfg.shards.size() ? "," : "");
      }
      std::fprintf(f, "    ]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_sharded_ingest.json\n");
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: sharded results diverged from the sequential clusterer\n");
    return 1;
  }
  if (exact_speedup_at_4 < 2.0) {
    std::fprintf(stderr, "WARN: exact-mode speedup at 4 shards is %.2fx (target >= 2x)\n",
                 exact_speedup_at_4);
  }
  return 0;
}
