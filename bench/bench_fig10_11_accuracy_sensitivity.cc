// Figures 10 and 11: sensitivity of Focus's gains to the accuracy target
// (95% / 97% / 98% / 99% precision and recall), over the 9 representative streams.
//
// Paper: ingest savings stay roughly flat (62x-64x average) because the same
// specialized model keeps being chosen; query speedups shrink (37x -> 15x -> 12x ->
// 8x on average) because higher recall forces a larger K and hence more candidate
// clusters per query.
//
// The configuration grid is measured once per stream and re-screened per target
// (ParameterTuner::EvaluateGrid + SelectFromEvaluated), exactly how the tuner
// internally works.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/core/parameter_tuner.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  const std::vector<double> targets = {0.95, 0.97, 0.98, 0.99};

  bench::PrintHeader("Figures 10+11: Sensitivity to accuracy target (Balance policy)");
  std::printf("%-12s", "Stream");
  for (double t : targets) {
    std::printf("   %3.0f%%:ing  %3.0f%%:qry", 100 * t, 100 * t);
  }
  std::printf("\n");

  std::vector<std::vector<double>> ing(targets.size()), qry(targets.size());
  for (const std::string& name : video::RepresentativeNineStreams()) {
    video::StreamRun run = bench::MakeRun(catalog, name, config);
    video::StreamProfile profile;
    video::FindProfile(name, &profile);
    core::ParameterTuner tuner(&catalog, &gt, {});
    std::vector<core::EvaluatedConfig> grid =
        tuner.EvaluateGrid(run, profile.appearance_variability);

    std::printf("%-12s", name.c_str());
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      core::AccuracyTarget target{targets[ti], targets[ti]};
      core::TuningResult tuned =
          core::SelectFromEvaluated(grid, target, core::Policy::kBalance);
      if (!tuned.found) {
        std::printf(" %9s %9s", "-", "-");
        continue;
      }
      // Deploy the chosen config on the full run and measure the factors.
      const core::IngestParams& params = tuned.chosen().params;
      cnn::Cnn cheap(params.model, &catalog);
      core::IngestResult ingest = core::RunIngest(run, cheap, params);
      core::QueryEngine engine(&ingest.index, &cheap, &gt);
      cnn::SegmentGroundTruth truth(run, gt);
      std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 12);
      double query_millis = 0.0;
      for (common::ClassId cls : dominant) {
        query_millis += engine.Query(cls, params.k, {}, run.fps()).gpu_millis;
      }
      double gt_all = static_cast<double>(ingest.detections) * gt.inference_cost_millis();
      double i_factor = ingest.gpu_millis > 0 ? gt_all / ingest.gpu_millis : 0.0;
      double q_factor = query_millis > 0
                            ? gt_all / (query_millis / static_cast<double>(dominant.size()))
                            : 0.0;
      ing[ti].push_back(i_factor);
      qry[ti].push_back(q_factor);
      std::printf(" %8.1fx %8.1fx", i_factor, q_factor);
    }
    std::printf("\n");
  }

  std::printf("%-12s", "Average");
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    std::printf(" %8.1fx %8.1fx", common::Mean(ing[ti]), common::Mean(qry[ti]));
  }
  std::printf("\n\nPaper checkpoints: ingest factors stay roughly flat with the target; query\n"
              "factors fall as the target rises (37x -> 15x -> 12x -> 8x on average).\n");
  return 0;
}
