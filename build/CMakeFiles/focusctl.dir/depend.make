# Empty dependencies file for focusctl.
# This may be replaced when dependencies are built.
