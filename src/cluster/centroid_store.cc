#include "src/cluster/centroid_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/logging.h"
#include "src/common/simd_distance.h"
#include "src/storage/arena_file.h"
#include "src/storage/record_log.h"

namespace focus::cluster {

namespace {

// Fractional + absolute slack on the norm prune. The lower bound
// (||c|| - ||q||)^2 is mathematically <= ||c - q||^2, but both norms carry float
// rounding; the slack guarantees the prune never drops a candidate the distance
// kernel would have accepted, so pruned and unpruned scans assign identically.
// (The head-partial prune needs no slack: a head partial is the exact prefix of
// the monotone distance accumulation, never larger than the full sum.)
constexpr float kPruneSlackMul = 1.0f + 1e-4f;
constexpr float kPruneSlackAdd = 1e-6f;

constexpr float kInf = std::numeric_limits<float>::max();

}  // namespace

size_t CentroidStore::HeadDimFor(size_t dim) {
  const size_t quarter = dim / 4;
  const size_t clamped = std::min(std::max(quarter, kMinHeadDim), kMaxHeadDim);
  return std::min(dim, clamped);
}

void CentroidStore::Reset() {
  dim_ = 0;
  head_dim_ = 0;
  arena_.clear();
  head_.clear();
  norms_.clear();
  sizes_.clear();
  ids_.clear();
  slot_of_id_.clear();
  file_ = nullptr;
  undo_ = nullptr;
  checkpoint_rows_ = 0;
  dirty_.clear();
  deferred_error_.reset();
  scan_candidates_ = 0;
  scan_pruned_ = 0;
  scan_head_only_ = 0;
}

void CentroidStore::BindColumns(size_t rows) {
  arena_.BindMap(file_->arena(), rows * dim_);
  head_.BindMap(file_->head(), rows * head_dim_);
  norms_.BindMap(file_->norms(), rows);
  sizes_.BindMap(file_->sizes(), rows);
  ids_.BindMap(file_->ids(), rows);
}

void CentroidStore::AttachArena(storage::ArenaFile* file, storage::RecordLogWriter* undo) {
  FOCUS_CHECK(empty() && dim_ == 0);
  FOCUS_CHECK(file != nullptr);
  file_ = file;
  undo_ = undo;
  checkpoint_rows_ = 0;
  dirty_.clear();
  if (!file_->initialized()) {
    return;  // Shaped at the first Add (FixDim).
  }
  // Recovery: adopt the file's shape and committed rows verbatim — including
  // the stored norms, so recovered scans are bit-identical to the checkpointed
  // store's — and rebuild the dense id->slot map.
  dim_ = file_->dim();
  head_dim_ = file_->head_dim();
  const size_t rows = static_cast<size_t>(file_->committed_rows());
  BindColumns(rows);
  slot_of_id_.clear();
  for (size_t s = 0; s < rows; ++s) {
    const int64_t id = ids_[s];
    FOCUS_CHECK(id >= 0);
    if (static_cast<size_t>(id) >= slot_of_id_.size()) {
      slot_of_id_.resize(static_cast<size_t>(id) + 1, kNoSlot);
    }
    slot_of_id_[static_cast<size_t>(id)] = static_cast<int32_t>(s);
  }
  checkpoint_rows_ = rows;
  dirty_.assign(rows, false);
}

common::Result<uint64_t> CentroidStore::CommitCheckpoint() {
  if (deferred_error_.has_value()) {
    // A write-ahead append failed earlier in this window (the store detached to
    // heap mode); the durable state must not advance past the missing pre-image.
    return *deferred_error_;
  }
  FOCUS_CHECK(file_ != nullptr);
  auto committed = file_->Commit(ids_.size());
  if (!committed.ok()) {
    return committed;
  }
  checkpoint_rows_ = ids_.size();
  dirty_.assign(checkpoint_rows_, false);
  return committed;
}

void CentroidStore::FixDim(size_t dim) {
  dim_ = dim;
  head_dim_ = head_override_ > 0 ? std::min(dim, head_override_) : HeadDimFor(dim);
  if (file_ != nullptr) {
    auto initialized = file_->Initialize(dim_, head_dim_);
    if (!initialized.ok()) {
      // The arena could not be shaped; the columns are still on the heap.
      // Finish the attempt in memory and fail the next CommitCheckpoint.
      deferred_error_ = initialized.error();
      file_ = nullptr;
      undo_ = nullptr;
      return;
    }
    BindColumns(0);
  }
}

void CentroidStore::EnsureRowCapacity(size_t rows) {
  if (file_ == nullptr || rows <= file_->capacity_rows()) {
    return;
  }
  auto reserved = file_->Reserve(rows);
  if (!reserved.ok()) {
    // The file could not grow (transient truncate failure). When the old
    // mapping survived — it does for a refused ftruncate, which fails before
    // anything is unmapped — the attempt continues on the heap and the error
    // surfaces at the next CommitCheckpoint. A mapping actually lost mid-swap
    // is unsalvageable: the columns' bytes are gone.
    FOCUS_CHECK(file_->mapped());
    deferred_error_ = reserved.error();
    DetachFromFile();
    return;
  }
  // The mapping may have moved; refresh every column's base pointer.
  arena_.Rebind(file_->arena());
  head_.Rebind(file_->head());
  norms_.Rebind(file_->norms());
  sizes_.Rebind(file_->sizes());
  ids_.Rebind(file_->ids());
}

void CentroidStore::PrepareRowMutation(size_t row) {
  if (file_ == nullptr || undo_ == nullptr || row >= checkpoint_rows_ || dirty_[row]) {
    return;
  }
  // Write-ahead: the pre-image must be in the log before the row is touched.
  // The row may sit beyond the current logical size (a slot freed by Remove
  // being re-filled); its mapped bytes still hold the checkpointed content.
  storage::ArenaUndo record;
  record.kind = storage::ArenaUndo::Kind::kRow;
  record.row = row;
  record.id = file_->ids()[row];
  record.size = file_->sizes()[row];
  record.norm = file_->norms()[row];
  record.centroid.assign(file_->arena() + row * dim_, file_->arena() + (row + 1) * dim_);
  auto appended = undo_->Append(record.Encode());
  if (!appended.ok()) {
    // Without a durable pre-image this row must not be overwritten in the
    // mapped file — recovery could no longer restore the checkpoint. Freeze
    // the file (it stays rollback-able as-is), finish the attempt on the heap,
    // and surface the failure at the next CommitCheckpoint.
    deferred_error_ = appended.error();
    DetachFromFile();
    return;
  }
  dirty_[row] = true;
}

void CentroidStore::DetachFromFile() {
  arena_.DetachToHeap();
  head_.DetachToHeap();
  norms_.DetachToHeap();
  sizes_.DetachToHeap();
  ids_.DetachToHeap();
  file_ = nullptr;
  undo_ = nullptr;
  checkpoint_rows_ = 0;
  dirty_.clear();
}

int32_t CentroidStore::SlotOf(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= slot_of_id_.size()) {
    return kNoSlot;
  }
  return slot_of_id_[static_cast<size_t>(id)];
}

void CentroidStore::Add(int64_t id, const float* centroid, size_t dim, int64_t size) {
  assert(id >= 0);
  assert(SlotOf(id) == kNoSlot);
  if (dim_ == 0) {
    FixDim(dim);
  }
  assert(dim == dim_ && dim_ > 0);
  const int32_t slot = static_cast<int32_t>(ids_.size());
  EnsureRowCapacity(ids_.size() + 1);
  PrepareRowMutation(static_cast<size_t>(slot));
  arena_.append(centroid, dim_);
  head_.append(centroid, head_dim_);
  norms_.push_back(std::sqrt(common::simd::NormSquared(centroid, dim_)));
  sizes_.push_back(size);
  ids_.push_back(id);
  if (static_cast<size_t>(id) >= slot_of_id_.size()) {
    slot_of_id_.resize(static_cast<size_t>(id) + 1, kNoSlot);
  }
  slot_of_id_[static_cast<size_t>(id)] = slot;
}

bool CentroidStore::Contains(int64_t id) const { return SlotOf(id) != kNoSlot; }

void CentroidStore::Remove(int64_t id) {
  const int32_t slot = SlotOf(id);
  if (slot == kNoSlot) {
    return;
  }
  const size_t s = static_cast<size_t>(slot);
  const size_t last = ids_.size() - 1;
  if (s != last) {
    PrepareRowMutation(s);
    std::memcpy(arena_.data() + s * dim_, arena_.data() + last * dim_,
                dim_ * sizeof(float));
    std::memcpy(head_.data() + s * head_dim_, head_.data() + last * head_dim_,
                head_dim_ * sizeof(float));
    norms_[s] = norms_[last];
    sizes_[s] = sizes_[last];
    ids_[s] = ids_[last];
    slot_of_id_[static_cast<size_t>(ids_[s])] = slot;
  }
  arena_.resize_down(last * dim_);
  head_.resize_down(last * head_dim_);
  norms_.pop_back();
  sizes_.pop_back();
  ids_.pop_back();
  slot_of_id_[static_cast<size_t>(id)] = kNoSlot;
}

void CentroidStore::Update(int64_t id, const float* centroid) {
  const int32_t slot = SlotOf(id);
  assert(slot != kNoSlot);
  const size_t s = static_cast<size_t>(slot);
  PrepareRowMutation(s);
  std::memcpy(arena_.data() + s * dim_, centroid, dim_ * sizeof(float));
  std::memcpy(head_.data() + s * head_dim_, centroid, head_dim_ * sizeof(float));
  norms_[s] = std::sqrt(common::simd::NormSquared(centroid, dim_));
}

void CentroidStore::SetSize(int64_t id, int64_t size) {
  const int32_t slot = SlotOf(id);
  assert(slot != kNoSlot);
  PrepareRowMutation(static_cast<size_t>(slot));
  sizes_[static_cast<size_t>(slot)] = size;
}

const float* CentroidStore::CentroidOf(int64_t id) const {
  const int32_t slot = SlotOf(id);
  if (slot == kNoSlot) {
    return nullptr;
  }
  return arena_.data() + static_cast<size_t>(slot) * dim_;
}

float CentroidStore::ResumeDistance(const float* query, size_t slot, float head_partial,
                                    float bound) const {
  if (head_dim_ == dim_) {
    return head_partial;
  }
  const float tail_bound = bound - head_partial;
  const float tail = common::simd::SquaredL2Bounded(
      query + head_dim_, arena_.data() + slot * dim_ + head_dim_, dim_ - head_dim_,
      tail_bound);
  if (tail > tail_bound) {
    // Early-exited: |tail| is only a partial sum, so head_partial + tail says
    // nothing about the true distance beyond "> bound" — and can even round
    // back to exactly |bound| when the kernel overshot by less than an ulp.
    // Return an explicit rejection instead of a fabricated distance.
    return kInf;
  }
  return head_partial + tail;
}

int64_t CentroidStore::FindNearest(const float* query, size_t dim, float threshold_sq,
                                   float* out_dist_sq) const {
  const size_t n = ids_.size();
  if (n == 0) {
    return -1;
  }
  assert(dim == dim_);
  (void)dim;
  scan_candidates_ += static_cast<int64_t>(n);

  float bound = threshold_sq;
  const float query_norm = std::sqrt(common::simd::NormSquared(query, dim_));
  const float prune_limit = bound * kPruneSlackMul + kPruneSlackAdd;

  if (head_dist_.size() < n) {
    head_dist_.resize(n);
  }

  // Head pass: one contiguous batched sweep computes every candidate's partial
  // distance over the first head_dim_ dims; norm-pruned candidates are skipped.
  int64_t pruned = 0;
  for (size_t s = 0; s < n; ++s) {
    if (common::simd::NormLowerBound(norms_[s], query_norm) > prune_limit) {
      head_dist_[s] = kInf;
      ++pruned;
    } else {
      head_dist_[s] = -1.0f;  // Survivor marker (distances are non-negative).
    }
  }
  scan_pruned_ += pruned;
  if (pruned == 0) {
    common::simd::SquaredL2Batch(query, head_.data(), n, head_dim_, kInf,
                                 head_dist_.data());
  } else {
    for (size_t s = 0; s < n; ++s) {
      if (head_dist_[s] < 0.0f) {
        head_dist_[s] =
            common::simd::SquaredL2(query, head_.data() + s * head_dim_, head_dim_);
      }
    }
  }

  // Probe: complete the candidate with the smallest head partial first. In
  // steady state that is the cluster the detection belongs to, so the bound
  // tightens from T^2 to the eventual best distance before anything else is
  // resumed — after which almost every other candidate's head partial already
  // exceeds the bound and its remaining dims are never read.
  size_t probe = 0;
  for (size_t s = 1; s < n; ++s) {
    if (head_dist_[s] < head_dist_[probe]) {
      probe = s;
    }
  }

  float best_dist = kInf;
  int64_t best_id = -1;
  int64_t resumed = 0;
  if (head_dist_[probe] <= bound) {
    ++resumed;
    const float d = ResumeDistance(query, probe, head_dist_[probe], bound);
    if (d <= bound) {
      best_dist = d;
      best_id = ids_[probe];
      bound = d;
    }
  }

  // Resume pass over the other candidates under the tightened bound. A head
  // partial is an exact prefix of the full monotone accumulation, so skipping
  // head_dist_ > bound can never drop a candidate the full kernel would accept.
  for (size_t s = 0; s < n; ++s) {
    if (s == probe || head_dist_[s] > bound) {
      continue;
    }
    ++resumed;
    const float d = ResumeDistance(query, s, head_dist_[s], bound);
    if (d > bound) {
      continue;
    }
    const int64_t id = ids_[s];
    // Ties go to the smallest id == the seed scan's first-seen semantics.
    if (d < best_dist || (d == best_dist && id < best_id)) {
      best_dist = d;
      best_id = id;
      bound = d;
    }
  }
  // Head-only = had a head partial computed but was never resumed past it.
  scan_head_only_ += static_cast<int64_t>(n) - pruned - resumed;

  if (best_id >= 0 && out_dist_sq != nullptr) {
    *out_dist_sq = best_dist;
  }
  return best_id;
}

void CentroidStore::ForEachWithin(const float* query, size_t dim, float threshold_sq,
                                  const std::function<void(int64_t)>& fn) const {
  const size_t n = ids_.size();
  if (n == 0) {
    return;
  }
  assert(dim == dim_);
  (void)dim;
  const float query_norm = std::sqrt(common::simd::NormSquared(query, dim_));
  const float prune_limit = threshold_sq * kPruneSlackMul + kPruneSlackAdd;
  for (size_t s = 0; s < n; ++s) {
    // Same conservative norm prune as FindNearest; survivors pay one bounded
    // full-dim kernel. The bound stays at threshold_sq for every slot — no
    // tightening — so all qualifying candidates are reported. An early-exited
    // kernel returns a partial sum > threshold_sq and is rejected; a partial
    // that rounds back to exactly the bound over-includes, which is safe here.
    if (common::simd::NormLowerBound(norms_[s], query_norm) > prune_limit) {
      continue;
    }
    const float d = common::simd::SquaredL2Bounded(query, arena_.data() + s * dim_, dim_,
                                                   threshold_sq);
    if (d <= threshold_sq) {
      fn(ids_[s]);
    }
  }
}

}  // namespace focus::cluster
