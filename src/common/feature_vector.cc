#include "src/common/feature_vector.h"

#include <cassert>
#include <cmath>

namespace focus::common {

double SquaredL2Distance(const FeatureVec& a, const FeatureVec& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double SquaredL2DistanceBounded(const FeatureVec& a, const FeatureVec& b, double bound) {
  assert(a.size() == b.size());
  double sum = 0.0;
  size_t i = 0;
  // Unrolled by 8 with a bound check per block: one branch per 8 dims keeps the
  // common (early-exit) case cheap without penalizing full evaluations.
  const size_t n8 = a.size() - a.size() % 8;
  for (; i < n8; i += 8) {
    double block = 0.0;
    for (size_t j = i; j < i + 8; ++j) {
      double d = static_cast<double>(a[j]) - static_cast<double>(b[j]);
      block += d * d;
    }
    sum += block;
    if (sum > bound) {
      return sum;
    }
  }
  for (; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double L2Distance(const FeatureVec& a, const FeatureVec& b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

double Norm(const FeatureVec& v) {
  double sum = 0.0;
  for (float x : v) {
    sum += static_cast<double>(x) * static_cast<double>(x);
  }
  return std::sqrt(sum);
}

double Dot(const FeatureVec& a, const FeatureVec& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

double CosineSimilarity(const FeatureVec& a, const FeatureVec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na <= 0.0 || nb <= 0.0) {
    return 0.0;
  }
  return Dot(a, b) / (na * nb);
}

void NormalizeInPlace(FeatureVec& v) {
  double n = Norm(v);
  if (n <= 0.0) {
    return;
  }
  ScaleInPlace(v, 1.0 / n);
}

void AddInPlace(FeatureVec& a, const FeatureVec& b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] += b[i];
  }
}

void AddScaledInPlace(FeatureVec& a, const FeatureVec& b, double scale) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] += static_cast<float>(scale * b[i]);
  }
}

void ScaleInPlace(FeatureVec& v, double scale) {
  for (float& x : v) {
    x = static_cast<float>(x * scale);
  }
}

FeatureVec RandomGaussianVector(size_t dim, Pcg32& rng) {
  FeatureVec v(dim);
  for (size_t i = 0; i < dim; ++i) {
    v[i] = static_cast<float>(rng.NextGaussian());
  }
  return v;
}

FeatureVec RandomUnitVector(size_t dim, Pcg32& rng) {
  FeatureVec v = RandomGaussianVector(dim, rng);
  NormalizeInPlace(v);
  return v;
}

void AddIsotropicNoise(FeatureVec& v, double magnitude, Pcg32& rng) {
  if (v.empty()) {
    return;
  }
  double sigma = magnitude / std::sqrt(static_cast<double>(v.size()));
  for (float& x : v) {
    x += static_cast<float>(sigma * rng.NextGaussian());
  }
}

FeatureVec PerturbedUnitVector(const FeatureVec& base, double noise_scale, Pcg32& rng) {
  FeatureVec v = base;
  AddIsotropicNoise(v, noise_scale, rng);
  NormalizeInPlace(v);
  return v;
}

}  // namespace focus::common
