#include "src/core/query_session.h"

#include <algorithm>

namespace focus::core {

namespace {

// Subtracts |existing| (sorted, disjoint) from |candidate|, appending the parts of
// |candidate| not covered to |out|. Counting new frames exactly keeps batch outputs
// disjoint across expansions even when a cluster's members overlap earlier results.
void AppendUncovered(std::pair<common::FrameIndex, common::FrameIndex> candidate,
                     const std::vector<std::pair<common::FrameIndex, common::FrameIndex>>&
                         existing,
                     std::vector<std::pair<common::FrameIndex, common::FrameIndex>>* out) {
  common::FrameIndex cursor = candidate.first;
  // First covered run that could overlap: lower_bound on run end.
  auto it = std::lower_bound(existing.begin(), existing.end(), cursor,
                             [](const auto& run, common::FrameIndex frame) {
                               return run.second < frame;
                             });
  while (cursor <= candidate.second) {
    if (it == existing.end() || it->first > candidate.second) {
      out->emplace_back(cursor, candidate.second);
      return;
    }
    if (it->first > cursor) {
      out->emplace_back(cursor, it->first - 1);
    }
    cursor = std::max(cursor, it->second + 1);
    ++it;
  }
}

}  // namespace

QuerySession::QuerySession(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn,
                           const cnn::Cnn* gt_cnn, common::ClassId cls,
                           common::TimeRange range, double fps)
    : engine_(index, ingest_cnn, gt_cnn), cls_(cls), range_(range), fps_(fps) {}

QueryBatch QuerySession::ExpandTo(int kx) {
  QueryBatch batch;
  batch.kx = std::max(kx, current_kx_);
  if (kx <= current_kx_) {
    return batch;
  }

  // Plan the increment: candidates newly admitted in (current_kx_, kx].
  const QueryPlan plan = engine_.Plan(cls_, kx, range_, fps_, /*min_kx=*/current_kx_);

  // Classify the centroids this session has not paid for yet — as one GT-CNN
  // batch (the sub-plan of uncached work items through ClassifyPlan). In the
  // monotonic-Kx flow every planned item is fresh (a cluster admitted now was
  // never admitted before), so the verdict cache is the §5 never-re-pay
  // guarantee, not a shortcut.
  QueryPlan fresh;
  fresh.queried = plan.queried;
  fresh.lookup = plan.lookup;
  fresh.kx = plan.kx;
  fresh.range_first = plan.range_first;
  fresh.range_last = plan.range_last;
  fresh.work.reserve(plan.work.size());
  for (const CentroidWorkItem& item : plan.work) {
    if (!verdicts_.contains(item.cluster_id)) {
      fresh.work.push_back(item);
    }
  }
  const std::vector<common::ClassId> fresh_verdicts =
      classifier_ ? classifier_(fresh) : engine_.ClassifyPlan(fresh);
  for (size_t i = 0; i < fresh.work.size(); ++i) {
    ++batch.centroids_classified;
    batch.gpu_millis += engine_.gt_cnn().inference_cost_millis();
    verdicts_[fresh.work[i].cluster_id] = fresh_verdicts[i] == cls_;
  }

  // Fold the confirmed clusters' member runs, minus frames earlier batches
  // already returned.
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> new_runs;
  for (const CentroidWorkItem& item : plan.work) {
    if (!verdicts_.at(item.cluster_id)) {
      continue;
    }
    const index::ClusterEntry& entry = engine_.index().cluster(item.cluster_id);
    for (const cluster::MemberRun& run : entry.members) {
      const common::FrameIndex first = std::max(run.first_frame, plan.range_first);
      const common::FrameIndex last = std::min(run.last_frame, plan.range_last);
      if (first > last) {
        continue;
      }
      AppendUncovered({first, last}, cumulative_runs_, &new_runs);
    }
  }

  batch.new_frame_runs = MergeFrameRuns(std::move(new_runs));
  for (const auto& [first, last] : batch.new_frame_runs) {
    batch.new_frames += last - first + 1;
  }

  // Fold the batch into the cumulative view.
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> all = cumulative_runs_;
  all.insert(all.end(), batch.new_frame_runs.begin(), batch.new_frame_runs.end());
  cumulative_runs_ = MergeFrameRuns(std::move(all));
  total_frames_ += batch.new_frames;
  total_centroids_ += batch.centroids_classified;
  total_gpu_millis_ += batch.gpu_millis;
  current_kx_ = kx;
  return batch;
}

}  // namespace focus::core
