// SIMD-friendly distance kernels for the ingest hot path.
//
// The per-detection cluster-assignment scan evaluates one query vector against
// thousands of centroids; these kernels are written so the compiler's
// auto-vectorizer maps them onto the widest available vector unit without any
// intrinsics or -ffast-math:
//
//   * float accumulation in 8 independent lanes (an explicit local accumulator
//     array) — each lane's sum is sequentially consistent, so no FP reassociation
//     is required for the lanes to become vector lanes;
//   * raw pointers over contiguous row-major storage (see cluster::CentroidStore)
//     instead of per-vector heap allocations, so consecutive candidates share
//     cache lines and hardware prefetch streams;
//   * bounded variants that early-exit a candidate once its partial sum exceeds
//     the caller's bound, checking once per 32-dim chunk to keep the branch off
//     the vector critical path.
//
// The scalar double-precision reference lives in feature_vector.h; property tests
// assert these kernels agree with it within 1e-4 relative tolerance.
#ifndef FOCUS_SRC_COMMON_SIMD_DISTANCE_H_
#define FOCUS_SRC_COMMON_SIMD_DISTANCE_H_

#include <cstddef>

namespace focus::common::simd {

// ||a - b||^2 with float accumulation.
float SquaredL2(const float* a, const float* b, size_t dim);

// ||a - b||^2 with early exit: the result is exact when it is <= |bound| (the
// loop ran to completion) and otherwise only guaranteed to be > |bound| — all a
// threshold or nearest-neighbour scan needs.
float SquaredL2Bounded(const float* a, const float* b, size_t dim, float bound);

// Dot product with float accumulation.
float Dot(const float* a, const float* b, size_t dim);

// ||v||^2.
float NormSquared(const float* v, size_t dim);

// Distances of |query| against |n| contiguous row-major rows of |block| (row i
// starts at block + i * dim). out[i] is exact when <= |bound| and otherwise only
// guaranteed > |bound| (the row early-exited).
void SquaredL2Batch(const float* query, const float* block, size_t n, size_t dim,
                    float bound, float* out);

// Precomputed-norm identity: ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b. Clamped at
// zero (cancellation can drive the float expression slightly negative).
inline float SquaredL2FromNorms(float norm_a_sq, float norm_b_sq, float dot) {
  float d = norm_a_sq + norm_b_sq - 2.0f * dot;
  return d > 0.0f ? d : 0.0f;
}

// Reverse-triangle-inequality lower bound: (||a|| - ||b||)^2 <= ||a - b||^2.
// Takes the (non-squared) norms. A candidate whose bound already exceeds the scan
// threshold can be skipped without touching its dim floats.
inline float NormLowerBound(float norm_a, float norm_b) {
  float d = norm_a - norm_b;
  return d * d;
}

}  // namespace focus::common::simd

#endif  // FOCUS_SRC_COMMON_SIMD_DISTANCE_H_
