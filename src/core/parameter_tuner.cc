#include "src/core/parameter_tuner.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

#include "src/cnn/model_zoo.h"
#include "src/common/logging.h"
#include "src/runtime/worker_pool.h"

namespace focus::core {

namespace {

// Sampling stride for the class-distribution estimate (§4.3 "Model Retraining"
// samples a small fraction of frames).
constexpr int kDistributionFrameStride = 5;

// Small slack above the targets when screening on the sample, to absorb
// sample-to-full generalization error.
constexpr double kTargetMargin = 0.015;

}  // namespace

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kBalance:
      return "Balance";
    case Policy::kOptIngest:
      return "Opt-Ingest";
    case Policy::kOptQuery:
      return "Opt-Query";
  }
  return "?";
}

ParameterTuner::ParameterTuner(const video::ClassCatalog* catalog, const cnn::Cnn* gt_cnn,
                               TunerOptions options)
    : catalog_(catalog), gt_cnn_(gt_cnn), options_(std::move(options)) {
  assert(catalog_ != nullptr && gt_cnn_ != nullptr);
}

std::vector<cnn::ModelDesc> ParameterTuner::CandidateModels(
    const cnn::ClassDistributionEstimate& distribution, double stream_variability,
    uint64_t seed) const {
  std::vector<cnn::ModelDesc> models;
  if (options_.include_generic_models) {
    for (cnn::ModelDesc desc : cnn::GenericCheapCandidates(catalog_->world_seed())) {
      models.push_back(std::move(desc));
    }
  }
  if (options_.include_specialized_models) {
    for (int ls : options_.ls_grid) {
      for (const cnn::SpecializedArch& arch : cnn::SpecializedArchGrid()) {
        cnn::SpecializationOptions sopts;
        sopts.ls = ls;
        sopts.layers = arch.layers;
        sopts.input_px = arch.input_px;
        models.push_back(cnn::TrainSpecializedModel(distribution, sopts, stream_variability, seed));
      }
    }
  }
  return models;
}

size_t ChooseByPolicy(const std::vector<EvaluatedConfig>& evaluated,
                      const std::vector<size_t>& pareto, Policy policy) {
  assert(!pareto.empty());
  switch (policy) {
    case Policy::kBalance: {
      size_t best = pareto.front();
      double best_sum = std::numeric_limits<double>::max();
      for (size_t idx : pareto) {
        double sum = evaluated[idx].ingest_cost_norm + evaluated[idx].query_latency_norm;
        if (sum < best_sum) {
          best_sum = sum;
          best = idx;
        }
      }
      return best;
    }
    case Policy::kOptIngest: {
      size_t best = pareto.front();
      for (size_t idx : pareto) {
        if (evaluated[idx].ingest_cost_norm < evaluated[best].ingest_cost_norm) {
          best = idx;
        }
      }
      return best;
    }
    case Policy::kOptQuery: {
      size_t best = pareto.front();
      for (size_t idx : pareto) {
        if (evaluated[idx].query_latency_norm < evaluated[best].query_latency_norm) {
          best = idx;
        }
      }
      return best;
    }
  }
  return pareto.front();
}

TuningResult SelectFromEvaluated(std::vector<EvaluatedConfig> evaluated,
                                 const AccuracyTarget& target, Policy policy) {
  TuningResult result;
  // The screening margin must never push the bar above 1.0 — a 99%+ user target
  // would otherwise be unsatisfiable by construction.
  const double precision_bar = std::min(1.0, target.precision + kTargetMargin);
  const double recall_bar = std::min(1.0, target.recall + kTargetMargin);
  for (EvaluatedConfig& cfg : evaluated) {
    cfg.viable = cfg.precision >= precision_bar && cfg.recall >= recall_bar;
  }
  result.evaluated = std::move(evaluated);
  for (size_t i = 0; i < result.evaluated.size(); ++i) {
    if (result.evaluated[i].viable) {
      result.viable_indices.push_back(i);
    }
  }
  if (result.viable_indices.empty()) {
    // No configuration met both targets on the sample: fall back to the one closest
    // to viability so callers still get a usable deployment.
    size_t best = 0;
    double best_score = -1.0;
    for (size_t i = 0; i < result.evaluated.size(); ++i) {
      const EvaluatedConfig& c = result.evaluated[i];
      double score = std::min(c.precision / target.precision, c.recall / target.recall);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    result.chosen_index = best;
    result.found = !result.evaluated.empty();
    if (result.found) {
      FOCUS_LOG(kWarning) << "tuner: no viable config; falling back to closest (P="
                          << result.evaluated[best].precision
                          << " R=" << result.evaluated[best].recall << ")";
    }
    return result;
  }

  // Pareto boundary over the viable set.
  std::vector<CostPoint> points;
  points.reserve(result.viable_indices.size());
  for (size_t idx : result.viable_indices) {
    points.push_back(
        {result.evaluated[idx].ingest_cost_norm, result.evaluated[idx].query_latency_norm});
  }
  std::vector<size_t> local_pareto = ParetoBoundary(points);
  result.pareto_indices.reserve(local_pareto.size());
  for (size_t local : local_pareto) {
    result.pareto_indices.push_back(result.viable_indices[local]);
  }

  result.chosen_index = ChooseByPolicy(result.evaluated, result.pareto_indices, policy);
  result.found = true;
  return result;
}

TuningResult ParameterTuner::Tune(const video::StreamRun& run, double stream_variability,
                                  const AccuracyTarget& target, Policy policy) const {
  return SelectFromEvaluated(EvaluateGrid(run, stream_variability), target, policy);
}

std::vector<EvaluatedConfig> ParameterTuner::EvaluateGrid(const video::StreamRun& run,
                                                          double stream_variability) const {
  std::vector<EvaluatedConfig> evaluated;
  last_tuning_gpu_millis_ = 0.0;

  // Sample window (prefix of the stream; StreamRun content is prefix-stable).
  const double sample_sec = std::min(options_.sample_sec, run.duration_sec());
  video::StreamRun sample(&run.catalog(), run.profile(), sample_sec, run.fps(), run.seed());

  // GT-CNN ground truth over the sample, charged as tuning GPU time.
  cnn::SegmentGroundTruth sample_truth(sample, *gt_cnn_);
  last_tuning_gpu_millis_ +=
      static_cast<double>(sample_truth.total_detections()) * gt_cnn_->inference_cost_millis();

  // Class-distribution estimate for specialization (§4.3).
  cnn::ClassDistributionEstimate distribution = cnn::EstimateClassDistribution(
      sample, *gt_cnn_, sample_sec, kDistributionFrameStride);
  last_tuning_gpu_millis_ += distribution.gpu_cost_millis;

  const std::vector<common::ClassId> dominant =
      sample_truth.DominantClasses(options_.dominant_coverage, options_.max_dominant_classes);
  if (dominant.empty()) {
    FOCUS_LOG(kWarning) << "tuner: sample of " << run.profile().name
                        << " has no dominant classes; cannot tune";
    return evaluated;
  }

  AccuracyEvaluator evaluator(&sample_truth, sample.fps());

  // Denominator for both normalized axes: GT-CNN over every sampled detection.
  int64_t sample_detections = 0;
  sample.ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    sample_detections += static_cast<int64_t>(dets.size());
  });
  const double gt_all_millis =
      static_cast<double>(sample_detections) * gt_cnn_->inference_cost_millis();
  if (gt_all_millis <= 0.0) {
    FOCUS_LOG(kWarning) << "tuner: sample of " << run.profile().name << " has no detections";
    return evaluated;
  }

  const std::vector<cnn::ModelDesc> models =
      CandidateModels(distribution, stream_variability, run.seed());

  // One clusterer reused across the whole (model, T) grid: every re-run Resets
  // it, keeping the centroid arena and cluster allocations warm. Likewise one
  // worker pool for the sharded clustering route — the grid re-runs
  // RunIngestClassified per configuration, and spawning/joining num_shards
  // threads on each would dominate small samples.
  cluster::IncrementalClusterer cluster_scratch;
  std::unique_ptr<runtime::WorkerPool> shard_pool;
  if (options_.ingest.num_shards > 1) {
    shard_pool = std::make_unique<runtime::WorkerPool>(
        options_.ingest.num_shards,
        /*queue_capacity=*/static_cast<size_t>(options_.ingest.num_shards) * 2,
        /*pop_batch=*/1);
  }

  for (const cnn::ModelDesc& desc : models) {
    cnn::Cnn cheap(desc, catalog_);
    const int space = cheap.label_space_size();
    // Widest K we may use for this model.
    int k_max = 1;
    for (int k : options_.k_grid) {
      if (k <= space) {
        k_max = std::max(k_max, k);
      }
    }
    // The CNN outputs are threshold-independent: classify the sample once per model
    // and replay the stored outputs through clustering+indexing per T.
    const ClassifiedSample classified = ClassifySample(sample, cheap, k_max, options_.ingest);
    for (double threshold : options_.threshold_grid) {
      IngestParams params;
      params.model = desc;
      params.k = k_max;
      params.cluster_threshold = threshold;
      params.ls = desc.specialized() ? static_cast<int>(desc.classes.size()) : 0;

      IngestResult ingest =
          RunIngestClassified(classified, params, options_.ingest, &cluster_scratch,
                              shard_pool.get());
      const double ingest_norm = ingest.gpu_millis / gt_all_millis;

      // Evaluate every K <= k_max as a query-time Kx over the k_max-wide index (§5:
      // index width and query-time filter width are interchangeable at equal K).
      QueryEngine engine(&ingest.index, &cheap, gt_cnn_);
      for (int k : options_.k_grid) {
        if (k > space) {
          continue;
        }
        double sum_p = 0.0;
        double sum_r = 0.0;
        double query_millis = 0.0;
        for (common::ClassId cls : dominant) {
          QueryResult qr = engine.Query(cls, /*kx=*/k, {}, sample.fps());
          PrecisionRecall pr = evaluator.Evaluate(cls, qr);
          sum_p += pr.precision;
          sum_r += pr.recall;
          query_millis += qr.gpu_millis;
        }
        EvaluatedConfig cfg;
        cfg.params = params;
        cfg.params.k = k;
        cfg.precision = sum_p / static_cast<double>(dominant.size());
        cfg.recall = sum_r / static_cast<double>(dominant.size());
        cfg.ingest_cost_norm = ingest_norm;
        cfg.query_latency_norm =
            (query_millis / static_cast<double>(dominant.size())) / gt_all_millis;
        evaluated.push_back(std::move(cfg));
      }
    }
  }

  return evaluated;
}

}  // namespace focus::core
