#include "src/core/live_snapshot.h"

#include <utility>

#include "src/common/logging.h"

namespace focus::core {

std::shared_ptr<const LiveSnapshot> SnapshotSlot::Publish(
    std::unique_ptr<LiveSnapshot> snapshot) {
  FOCUS_CHECK(snapshot != nullptr);
  std::shared_ptr<const LiveSnapshot> published;
  std::shared_ptr<const LiveSnapshot> retired;  // Freed outside the lock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot->epoch = (latest_ != nullptr ? latest_->epoch : 0) + 1;
    published = std::move(snapshot);
    retired = std::move(latest_);
    latest_ = published;
  }
  // |retired| drops here: if this was the last reference, the old epoch's
  // table is destroyed without holding the slot lock.
  return published;
}

}  // namespace focus::core
