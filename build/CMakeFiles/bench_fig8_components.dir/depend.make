# Empty dependencies file for bench_fig8_components.
# This may be replaced when dependencies are built.
