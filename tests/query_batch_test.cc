// Fixed-seed equivalence tests for the plan/execute query API (§5).
//
// The contract under test: splitting Query() into Plan + ClassifyBatch + Resolve —
// and batching the GT-CNN work any way an executor likes — must return results
// identical to the seed's per-centroid loop (one gt_cnn->Top1() per candidate,
// accumulated result and accounting in candidate order). The seed loop is kept
// here verbatim as the reference; the production paths under test are
// QueryEngine::{Plan,ClassifyPlan,Resolve}, cnn::Cnn::ClassifyBatch /
// BatchCostMillis, and the QuerySession re-implementation on plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/cnn/cost_model.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_engine.h"
#include "src/core/query_session.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

constexpr double kDurationSec = 60.0;
constexpr double kFps = 30.0;
constexpr int kIndexK = 16;

class QueryBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(31);
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    run_ = new video::StreamRun(catalog_, profile, kDurationSec, kFps, 7);
    cheap_ = new cnn::Cnn(cnn::GenericCheapCandidates(9)[0], catalog_);
    gt_ = new cnn::Cnn(cnn::GtCnnDesc(catalog_->world_seed()), catalog_);

    IngestParams params;
    params.model = cheap_->desc();
    params.k = kIndexK;
    params.cluster_threshold = 0.5;
    ingest_ = new IngestResult(RunIngest(*run_, *cheap_, params));

    cnn::SegmentGroundTruth truth(*run_, *gt_);
    classes_ = new std::vector<common::ClassId>(truth.DominantClasses(0.95, 3));
    ASSERT_FALSE(classes_->empty());
  }

  static void TearDownTestSuite() {
    delete classes_;
    delete ingest_;
    delete gt_;
    delete cheap_;
    delete run_;
    classes_ = nullptr;
    ingest_ = nullptr;
    gt_ = nullptr;
    cheap_ = nullptr;
    run_ = nullptr;
  }

  // The seed's Query() loop, verbatim: the per-centroid reference every batched
  // execution must reproduce bit for bit.
  static QueryResult SeedQuery(common::ClassId cls, int kx, common::TimeRange range) {
    QueryResult result;
    result.queried = cls;
    const common::ClassId lookup = cheap_->MapTrueLabel(cls);
    const bool clip = range.begin_sec > 0.0 || range.end_sec >= 0.0;
    const auto [range_first, range_last] =
        clip ? FrameBoundsOfRange(range, kFps)
             : std::pair<common::FrameIndex, common::FrameIndex>{
                   0, std::numeric_limits<common::FrameIndex>::max()};
    std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs;
    for (int64_t id : ingest_->index.ClustersForClass(lookup)) {
      const index::ClusterEntry& entry = ingest_->index.cluster(id);
      if (kx > 0 && !entry.MatchesWithin(lookup, kx)) {
        continue;
      }
      ++result.centroids_classified;
      result.gpu_millis += gt_->inference_cost_millis();
      if (gt_->Top1(entry.representative) != cls) {
        continue;
      }
      ++result.clusters_matched;
      for (const cluster::MemberRun& run : entry.members) {
        const common::FrameIndex first = std::max(run.first_frame, range_first);
        const common::FrameIndex last = std::min(run.last_frame, range_last);
        if (first > last) {
          continue;
        }
        runs.emplace_back(first, last);
      }
    }
    result.frame_runs = MergeFrameRuns(std::move(runs));
    for (const auto& [first, last] : result.frame_runs) {
      result.frames_returned += last - first + 1;
    }
    return result;
  }

  static void ExpectIdentical(const QueryResult& got, const QueryResult& want) {
    EXPECT_EQ(got.queried, want.queried);
    EXPECT_EQ(got.frame_runs, want.frame_runs);
    EXPECT_EQ(got.centroids_classified, want.centroids_classified);
    EXPECT_EQ(got.clusters_matched, want.clusters_matched);
    EXPECT_EQ(got.frames_returned, want.frames_returned);
    EXPECT_DOUBLE_EQ(got.gpu_millis, want.gpu_millis);
  }

  static video::ClassCatalog* catalog_;
  static video::StreamRun* run_;
  static cnn::Cnn* cheap_;
  static cnn::Cnn* gt_;
  static IngestResult* ingest_;
  static std::vector<common::ClassId>* classes_;
};

video::ClassCatalog* QueryBatchTest::catalog_ = nullptr;
video::StreamRun* QueryBatchTest::run_ = nullptr;
cnn::Cnn* QueryBatchTest::cheap_ = nullptr;
cnn::Cnn* QueryBatchTest::gt_ = nullptr;
IngestResult* QueryBatchTest::ingest_ = nullptr;
std::vector<common::ClassId>* QueryBatchTest::classes_ = nullptr;

// --- cnn::Cnn batch primitives ---

TEST_F(QueryBatchTest, ClassifyBatchMatchesPerDetectionClassify) {
  std::vector<video::Detection> detections;
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    for (const video::Detection& d : dets) {
      if (detections.size() < 200) {
        detections.push_back(d);
      }
    }
  });
  ASSERT_FALSE(detections.empty());
  for (int k : {1, 5, kIndexK}) {
    std::vector<cnn::TopKResult> batched;
    gt_->ClassifyBatch(detections, k, &batched);
    ASSERT_EQ(batched.size(), detections.size());
    for (size_t i = 0; i < detections.size(); ++i) {
      EXPECT_EQ(batched[i].entries, gt_->Classify(detections[i], k).entries) << "k=" << k;
    }
  }
}

TEST_F(QueryBatchTest, BatchCostAmortizesTheLaunchOverhead) {
  const common::GpuMillis single = gt_->inference_cost_millis();
  // A batch of one costs exactly one inference — bit-identical, not just close.
  EXPECT_EQ(gt_->BatchCostMillis(1), single);
  // Larger batches are strictly cheaper than separate launches, monotone in
  // size, and never cheaper than the pure per-image compute share.
  common::GpuMillis prev = gt_->BatchCostMillis(1);
  for (int64_t b : {2, 8, 32, 256}) {
    const common::GpuMillis batch = gt_->BatchCostMillis(b);
    EXPECT_LT(batch, static_cast<double>(b) * single) << b;
    EXPECT_GT(batch, prev) << b;
    EXPECT_GT(batch, (1.0 - cnn::kLaunchOverheadShare) * static_cast<double>(b) * single) << b;
    prev = batch;
  }
}

// --- QueryEngine plan/execute ---

TEST_F(QueryBatchTest, PlanClassifyResolveMatchesSeedPerCentroidQuery) {
  QueryEngine engine(&ingest_->index, cheap_, gt_);
  const common::TimeRange ranges[] = {{}, {10.0, 40.0}, {0.0, 25.5}};
  for (common::ClassId cls : *classes_) {
    for (int kx : {1, 2, 4, 8, -1}) {
      for (const common::TimeRange& range : ranges) {
        const QueryResult want = SeedQuery(cls, kx, range);
        // One-call wrapper.
        ExpectIdentical(engine.Query(cls, kx, range, kFps), want);
        // Explicit plan -> batch classify -> resolve.
        const QueryPlan plan = engine.Plan(cls, kx, range, kFps);
        EXPECT_EQ(static_cast<int64_t>(plan.work.size()), want.centroids_classified);
        ExpectIdentical(engine.Resolve(plan, engine.ClassifyPlan(plan)), want);
      }
    }
  }
}

TEST_F(QueryBatchTest, ResolveIsVerdictDriven) {
  QueryEngine engine(&ingest_->index, cheap_, gt_);
  const common::ClassId cls = classes_->front();
  const QueryPlan plan = engine.Plan(cls);
  ASSERT_FALSE(plan.work.empty());
  // All-wrong verdicts: the GPU accounting is still paid, but nothing matches.
  std::vector<common::ClassId> wrong(plan.work.size(), common::kInvalidClass);
  const QueryResult none = engine.Resolve(plan, wrong);
  EXPECT_EQ(none.centroids_classified, static_cast<int64_t>(plan.work.size()));
  EXPECT_EQ(none.clusters_matched, 0);
  EXPECT_EQ(none.frames_returned, 0);
  EXPECT_TRUE(none.frame_runs.empty());
  // All-right verdicts: every candidate cluster's members come back.
  std::vector<common::ClassId> right(plan.work.size(), cls);
  const QueryResult all = engine.Resolve(plan, right);
  EXPECT_EQ(all.clusters_matched, static_cast<int64_t>(plan.work.size()));
  EXPECT_GE(all.frames_returned, SeedQuery(cls, -1, {}).frames_returned);
}

TEST_F(QueryBatchTest, IncrementalPlanPartitionsTheFullPlan) {
  QueryEngine engine(&ingest_->index, cheap_, gt_);
  for (common::ClassId cls : *classes_) {
    const QueryPlan full = engine.Plan(cls, kIndexK, {}, kFps);
    // Stepping min_kx..kx through a Kx ladder visits every work item of the full
    // plan exactly once — the invariant QuerySession::ExpandTo's never-re-pay
    // guarantee rides on.
    std::vector<int64_t> stepped;
    int prev = 0;
    for (int kx : {1, 2, 4, 8, kIndexK}) {
      const QueryPlan step = engine.Plan(cls, kx, {}, kFps, /*min_kx=*/prev);
      for (const CentroidWorkItem& item : step.work) {
        stepped.push_back(item.cluster_id);
      }
      prev = kx;
    }
    std::vector<int64_t> want;
    for (const CentroidWorkItem& item : full.work) {
      want.push_back(item.cluster_id);
    }
    std::sort(stepped.begin(), stepped.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(stepped, want);
  }
}

// --- QuerySession on plans ---

TEST_F(QueryBatchTest, SessionExpansionNeverRepaysAClassifiedCentroid) {
  for (common::ClassId cls : *classes_) {
    const QueryResult one_shot = SeedQuery(cls, kIndexK, {});
    QuerySession session(&ingest_->index, cheap_, gt_, cls, {}, kFps);
    int64_t total_centroids = 0;
    common::GpuMillis total_gpu = 0.0;
    for (int kx : {1, 2, 3, 4, 8, kIndexK}) {
      const QueryBatch batch = session.ExpandTo(kx);
      total_centroids += batch.centroids_classified;
      total_gpu += batch.gpu_millis;
    }
    // Exactly the one-shot cost: every centroid classified once, none re-paid.
    EXPECT_EQ(total_centroids, one_shot.centroids_classified);
    EXPECT_EQ(session.total_centroids_classified(), one_shot.centroids_classified);
    EXPECT_DOUBLE_EQ(total_gpu, one_shot.gpu_millis);
    // And exactly the one-shot answer.
    EXPECT_EQ(session.frame_runs(), one_shot.frame_runs);
    EXPECT_EQ(session.total_frames(), one_shot.frames_returned);
  }
}

TEST_F(QueryBatchTest, SessionWithRangeMatchesSeedRangeQuery) {
  const common::TimeRange range{15.0, 45.0};
  for (common::ClassId cls : *classes_) {
    const QueryResult want = SeedQuery(cls, kIndexK, range);
    QuerySession session(&ingest_->index, cheap_, gt_, cls, range, kFps);
    session.ExpandTo(2);
    session.ExpandTo(kIndexK);
    EXPECT_EQ(session.frame_runs(), want.frame_runs);
    EXPECT_EQ(session.total_frames(), want.frames_returned);
    EXPECT_EQ(session.total_centroids_classified(), want.centroids_classified);
  }
}

}  // namespace
}  // namespace focus::core
