# Empty dependencies file for ingest_replay_test.
# This may be replaced when dependencies are built.
