# Empty dependencies file for bench_fig7_end_to_end.
# This may be replaced when dependencies are built.
