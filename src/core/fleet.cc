#include "src/core/fleet.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/core/query_engine.h"

namespace focus::core {

bool CameraMeta::HasTag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

std::vector<std::string> FleetQueryResult::CamerasWithHits() const {
  std::vector<std::string> names;
  for (const CameraHits& h : hits) {
    if (h.result.frames_returned > 0) {
      names.push_back(h.camera);
    }
  }
  return names;
}

int64_t FederatedPlan::TotalWorkItems() const {
  int64_t total = 0;
  for (const FederatedCameraPlan& camera : cameras) {
    total += static_cast<int64_t>(camera.plan.work.size());
  }
  return total;
}

FleetQueryResult MergeFederatedResults(const FederatedPlan& plan,
                                       std::vector<QueryResult> per_camera) {
  FOCUS_CHECK(per_camera.size() == plan.cameras.size());
  FleetQueryResult merged;
  merged.queried = plan.queried;
  for (size_t i = 0; i < plan.cameras.size(); ++i) {
    const FederatedCameraPlan& camera = plan.cameras[i];
    CameraHits hits;
    hits.camera = camera.camera;
    hits.result = std::move(per_camera[i]);
    hits.live = camera.snapshot != nullptr;
    hits.epoch = camera.epoch;
    hits.watermark = camera.watermark;
    merged.total_frames += hits.result.frames_returned;
    merged.total_centroids_classified += hits.result.centroids_classified;
    merged.total_gpu_millis += hits.result.gpu_millis;
    merged.hits.push_back(std::move(hits));
  }
  return merged;
}

common::Result<bool> FocusFleet::CheckNameFree(const std::string& name) const {
  if (name.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument, "empty camera name"};
  }
  if (cameras_.contains(name)) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "camera already registered: " + name};
  }
  return true;
}

common::Result<bool> FocusFleet::AddCamera(const std::string& name,
                                           const video::ClassCatalog* catalog,
                                           const video::StreamProfile& profile,
                                           double duration_sec, double fps, uint64_t seed,
                                           const FocusOptions& options, CameraMeta meta) {
  auto free = CheckNameFree(name);
  if (!free.ok()) {
    return free.error();
  }
  auto run = std::make_unique<video::StreamRun>(catalog, profile, duration_sec, fps, seed);
  auto stream_or = FocusStream::Build(run.get(), catalog, options);
  if (!stream_or.ok()) {
    return stream_or.error();
  }
  Camera camera;
  camera.run = std::move(run);
  camera.stream = std::move(*stream_or);
  camera.meta = std::move(meta);
  cameras_.emplace(name, std::move(camera));
  order_.push_back(name);
  return true;
}

common::Result<bool> FocusFleet::AdoptCamera(const std::string& name,
                                             std::unique_ptr<video::StreamRun> run,
                                             std::unique_ptr<FocusStream> stream,
                                             CameraMeta meta) {
  if (run == nullptr || stream == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument, "null run or stream"};
  }
  auto free = CheckNameFree(name);
  if (!free.ok()) {
    return free.error();
  }
  Camera camera;
  camera.run = std::move(run);
  camera.stream = std::move(stream);
  camera.meta = std::move(meta);
  cameras_.emplace(name, std::move(camera));
  order_.push_back(name);
  return true;
}

common::Result<bool> FocusFleet::RegisterLiveCamera(const std::string& name,
                                                    const SnapshotSlot* slot,
                                                    const cnn::Cnn* ingest_cnn,
                                                    const cnn::Cnn* gt_cnn, double fps,
                                                    CameraMeta meta) {
  if (slot == nullptr || ingest_cnn == nullptr || gt_cnn == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "live camera needs a snapshot slot and both models"};
  }
  auto free = CheckNameFree(name);
  if (!free.ok()) {
    return free.error();
  }
  Camera camera;
  camera.slot = slot;
  camera.ingest_cnn = ingest_cnn;
  camera.gt_cnn = gt_cnn;
  camera.fps = fps;
  camera.meta = std::move(meta);
  cameras_.emplace(name, std::move(camera));
  order_.push_back(name);
  return true;
}

common::Result<FleetQueryResult> FocusFleet::Query(common::ClassId cls,
                                                   const std::vector<std::string>& cameras,
                                                   common::TimeRange range, int kx) const {
  FleetQueryResult fleet_result;
  fleet_result.queried = cls;
  std::vector<std::string> selected = cameras;
  if (selected.empty()) {
    // Every finalized member; live members have no one-call Query form.
    for (const std::string& name : order_) {
      if (!cameras_.at(name).IsLive()) {
        selected.push_back(name);
      }
    }
  }
  for (const std::string& name : selected) {
    auto it = cameras_.find(name);
    if (it == cameras_.end()) {
      return common::Error{common::ErrorCode::kNotFound, "unknown camera: " + name};
    }
    if (it->second.IsLive()) {
      return common::Error{common::ErrorCode::kFailedPrecondition,
                           "camera " + name + " is live; use PlanFederated"};
    }
    CameraHits hits;
    hits.camera = name;
    hits.result = it->second.stream->Query(cls, kx, range);
    fleet_result.total_frames += hits.result.frames_returned;
    fleet_result.total_centroids_classified += hits.result.centroids_classified;
    fleet_result.total_gpu_millis += hits.result.gpu_millis;
    fleet_result.hits.push_back(std::move(hits));
  }
  return fleet_result;
}

common::Result<std::vector<std::string>> FocusFleet::Select(
    const FederatedSelector& selector) const {
  const int narrowing = (selector.cameras.empty() ? 0 : 1) +
                        (selector.region.empty() ? 0 : 1) + (selector.tag.empty() ? 0 : 1);
  if (narrowing > 1) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "selector sets more than one of cameras/region/tag"};
  }
  if (!selector.cameras.empty()) {
    for (const std::string& name : selector.cameras) {
      if (!cameras_.contains(name)) {
        return common::Error{common::ErrorCode::kNotFound, "unknown camera: " + name};
      }
    }
    return selector.cameras;
  }
  std::vector<std::string> selected;
  for (const std::string& name : order_) {
    const CameraMeta& meta = cameras_.at(name).meta;
    if (!selector.region.empty() && meta.region != selector.region) {
      continue;
    }
    if (!selector.tag.empty() && !meta.HasTag(selector.tag)) {
      continue;
    }
    selected.push_back(name);
  }
  if (selected.empty()) {
    if (!selector.region.empty()) {
      return common::Error{common::ErrorCode::kNotFound,
                           "no cameras in region: " + selector.region};
    }
    if (!selector.tag.empty()) {
      return common::Error{common::ErrorCode::kNotFound, "no cameras tagged: " + selector.tag};
    }
    return common::Error{common::ErrorCode::kNotFound, "fleet is empty"};
  }
  return selected;
}

common::Result<FederatedPlan> FocusFleet::PlanFederated(common::ClassId cls,
                                                        const FederatedSelector& selector,
                                                        common::TimeRange range, int kx) const {
  auto selected = Select(selector);
  if (!selected.ok()) {
    return selected.error();
  }
  FederatedPlan plan;
  plan.queried = cls;
  plan.kx = kx;
  plan.range = range;
  for (const std::string& name : *selected) {
    const Camera& camera = cameras_.at(name);
    FederatedCameraPlan fan;
    fan.camera = name;
    if (camera.IsLive()) {
      fan.snapshot = camera.slot->Latest();
      if (fan.snapshot == nullptr) {
        return common::Error{common::ErrorCode::kFailedPrecondition,
                             "no snapshot published yet for live camera: " + name};
      }
      fan.ingest_cnn = camera.ingest_cnn;
      fan.gt_cnn = camera.gt_cnn;
      fan.fps = camera.fps;
      fan.epoch = fan.snapshot->epoch;
      fan.watermark = fan.snapshot->watermark;
      fan.plan = QueryEngine(fan.snapshot.get(), fan.ingest_cnn, fan.gt_cnn)
                     .Plan(cls, kx, range, fan.fps);
    } else {
      fan.stream = camera.stream.get();
      fan.fps = camera.stream->run().fps();
      fan.plan = fan.stream->Plan(cls, kx, range);
    }
    plan.cameras.push_back(std::move(fan));
  }
  return plan;
}

FleetQueryResult FocusFleet::ExecuteFederatedSequential(const FederatedPlan& plan) const {
  std::vector<QueryResult> per_camera;
  per_camera.reserve(plan.cameras.size());
  for (const FederatedCameraPlan& camera : plan.cameras) {
    if (camera.stream != nullptr) {
      const std::vector<common::ClassId> verdicts =
          QueryEngine(&camera.stream->ingest().index, &camera.stream->ingest_cnn(),
                      &camera.stream->gt_cnn())
              .ClassifyPlan(camera.plan);
      per_camera.push_back(camera.stream->Resolve(camera.plan, verdicts));
    } else {
      const QueryEngine engine(camera.snapshot.get(), camera.ingest_cnn, camera.gt_cnn);
      per_camera.push_back(engine.Resolve(camera.plan, engine.ClassifyPlan(camera.plan)));
    }
  }
  return MergeFederatedResults(plan, std::move(per_camera));
}

const FocusStream* FocusFleet::Find(const std::string& name) const {
  auto it = cameras_.find(name);
  return it == cameras_.end() ? nullptr : it->second.stream.get();
}

const CameraMeta* FocusFleet::MetaOf(const std::string& name) const {
  auto it = cameras_.find(name);
  return it == cameras_.end() ? nullptr : &it->second.meta;
}

std::vector<std::string> FocusFleet::CameraNames() const { return order_; }

common::GpuMillis FocusFleet::TotalIngestGpuMillis() const {
  common::GpuMillis total = 0;
  for (const auto& [name, camera] : cameras_) {
    if (camera.stream != nullptr) {
      total += camera.stream->total_ingest_gpu_millis();
    }
  }
  return total;
}

}  // namespace focus::core
