#include "src/core/ingest_pipeline.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/cluster/cluster_codec.h"
#include "src/cluster/sharded_clusterer.h"
#include "src/common/logging.h"
#include "src/runtime/worker_pool.h"
#include "src/storage/serializer.h"

namespace focus::core {

namespace {

// Per-cluster index state: for every class that appeared in some member's top-K
// output, the best (smallest) rank it achieved. Union semantics follow §3's index —
// a cluster is retrievable under class X when any of its objects had X in its top-K —
// and the best rank supports the §5 dynamic-Kx filter.
//
// Stored as flat per-cluster arrays over the class space (generic labels plus
// OTHER): a rank update is two array accesses, which matters because ingest performs
// one update per (detection, top-K position) — with K~200 that is the single
// hottest loop of the tuner's grid sweep.
class BestRankTable {
 public:
  // Records that |cls| appeared at 1-based |rank| in cluster |cluster_id|'s member
  // output, keeping the minimum rank per (cluster, class).
  void Update(int64_t cluster_id, common::ClassId cls, int32_t rank) {
    if (static_cast<size_t>(cluster_id) >= ranks_.size()) {
      ranks_.resize(static_cast<size_t>(cluster_id) + 1);
      present_.resize(static_cast<size_t>(cluster_id) + 1);
    }
    std::vector<int32_t>& row = ranks_[static_cast<size_t>(cluster_id)];
    if (row.empty()) {
      row.assign(kRankSpace, kUnranked);
    }
    int32_t& slot = row[static_cast<size_t>(cls)];
    if (slot == kUnranked) {
      present_[static_cast<size_t>(cluster_id)].push_back(cls);
      slot = rank;
    } else if (rank < slot) {
      slot = rank;
    }
  }

  // Fills |entry|'s ranked class lists (best rank first, class id tie-break).
  void Finalize(int64_t cluster_id, index::ClusterEntry* entry) const {
    if (static_cast<size_t>(cluster_id) >= ranks_.size()) {
      return;
    }
    const std::vector<int32_t>& row = ranks_[static_cast<size_t>(cluster_id)];
    std::vector<std::pair<int32_t, common::ClassId>> ranked;
    ranked.reserve(present_[static_cast<size_t>(cluster_id)].size());
    for (common::ClassId cls : present_[static_cast<size_t>(cluster_id)]) {
      ranked.emplace_back(row[static_cast<size_t>(cls)], cls);
    }
    std::sort(ranked.begin(), ranked.end());
    entry->topk_classes.reserve(ranked.size());
    entry->topk_ranks.reserve(ranked.size());
    for (const auto& [rank, cls] : ranked) {
      entry->topk_classes.push_back(cls);
      entry->topk_ranks.push_back(rank);
    }
  }

  // Invokes |fn|(class, best_rank) for every class recorded for |cluster_id|.
  // The windowed streaming finalize uses this to fold only the raw clusters of
  // a *changed* canonical component instead of replaying the whole table.
  template <typename Fn>
  void ForEachOf(int64_t cluster_id, Fn&& fn) const {
    if (static_cast<size_t>(cluster_id) >= present_.size()) {
      return;
    }
    const std::vector<int32_t>& row = ranks_[static_cast<size_t>(cluster_id)];
    for (common::ClassId cls : present_[static_cast<size_t>(cluster_id)]) {
      fn(cls, row[static_cast<size_t>(cls)]);
    }
  }

  // Invokes |fn|(cluster_id, class, best_rank) for every recorded pair. Used
  // to remap raw sharded cluster ids onto canonical ids (min-rank union is
  // associative, so replaying per-cluster minima is exactly replaying the
  // per-detection updates) and to checkpoint the table.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t c = 0; c < present_.size(); ++c) {
      const std::vector<int32_t>& row = ranks_[c];
      for (common::ClassId cls : present_[c]) {
        fn(static_cast<int64_t>(c), cls, row[static_cast<size_t>(cls)]);
      }
    }
  }

  void EncodeTo(storage::Encoder& enc) const {
    enc.PutVarint(present_.size());
    for (size_t c = 0; c < present_.size(); ++c) {
      const std::vector<int32_t>& row = ranks_[c];
      enc.PutVarint(present_[c].size());
      for (common::ClassId cls : present_[c]) {
        enc.PutSignedVarint(cls);
        enc.PutSignedVarint(row[static_cast<size_t>(cls)]);
      }
    }
  }

  bool DecodeFrom(storage::Decoder& dec) {
    uint64_t clusters = 0;
    if (!dec.GetVarint(&clusters) || clusters > dec.remaining()) {
      return false;
    }
    for (uint64_t c = 0; c < clusters; ++c) {
      uint64_t classes = 0;
      if (!dec.GetVarint(&classes) || classes > dec.remaining()) {
        return false;
      }
      for (uint64_t i = 0; i < classes; ++i) {
        int64_t cls = 0;
        int64_t rank = 0;
        if (!dec.GetSignedVarint(&cls) || !dec.GetSignedVarint(&rank) || cls < 0 ||
            cls >= kRankSpace) {
          return false;
        }
        Update(static_cast<int64_t>(c), static_cast<common::ClassId>(cls),
               static_cast<int32_t>(rank));
      }
    }
    return true;
  }

 private:
  // Generic label space plus the specialized models' OTHER label.
  static constexpr int kRankSpace = video::kNumClasses + 1;
  static constexpr int32_t kUnranked = std::numeric_limits<int32_t>::max();

  std::vector<std::vector<int32_t>> ranks_;           // cluster -> class -> best rank.
  std::vector<std::vector<common::ClassId>> present_; // cluster -> classes seen.
};

// Pipeline-level state the persistent path checkpoints alongside the
// clusterer snapshot: result counters, the pixel-differencing reuse maps, and
// the class-rank table (keyed by raw global cluster ids; remapped onto
// canonical ids only at finalize).
struct PipelineState {
  IngestResult* result = nullptr;
  BestRankTable* ranks = nullptr;
  std::unordered_map<common::ObjectId, cnn::TopKResult>* last_result = nullptr;
  std::unordered_map<common::ObjectId, common::FeatureVec>* last_feature = nullptr;
  // Checkpointed alongside the reuse maps so post-resume eviction sweeps see
  // the same idle gaps an uninterrupted run sees (at tight checkpoint
  // cadences an empty map would evict entries the uninterrupted run keeps).
  std::unordered_map<common::ObjectId, common::FrameIndex>* last_seen = nullptr;
  // Pipeline-level options echo, validated on resume like the clusterer's:
  // continuing a stream with a different top-K width or suppression setting
  // would silently mix two configurations' semantics.
  int k = 0;
  bool use_pixel_diff = true;

  std::string Encode() const {
    storage::Encoder enc;
    enc.PutSignedVarint(k);
    enc.PutU8(use_pixel_diff ? 1 : 0);
    enc.PutSignedVarint(result->detections);
    enc.PutDouble(result->gpu_millis);
    enc.PutSignedVarint(result->cnn_invocations);
    enc.PutSignedVarint(result->suppressed);
    enc.PutVarint(last_result->size());
    for (const auto& [object, topk] : *last_result) {
      enc.PutSignedVarint(object);
      enc.PutVarint(topk.entries.size());
      for (const auto& [cls, confidence] : topk.entries) {
        enc.PutSignedVarint(cls);
        enc.PutFloat(confidence);
      }
    }
    enc.PutVarint(last_feature->size());
    for (const auto& [object, feature] : *last_feature) {
      enc.PutSignedVarint(object);
      cluster::EncodeFeatureVec(enc, feature);
    }
    enc.PutVarint(last_seen->size());
    for (const auto& [object, frame] : *last_seen) {
      enc.PutSignedVarint(object);
      enc.PutSignedVarint(frame);
    }
    ranks->EncodeTo(enc);
    return enc.TakeBytes();
  }

  bool Decode(std::string_view blob) {
    storage::Decoder dec(blob);
    int64_t checkpoint_k = 0;
    uint8_t checkpoint_pixel_diff = 0;
    if (!dec.GetSignedVarint(&checkpoint_k) || !dec.GetU8(&checkpoint_pixel_diff) ||
        checkpoint_k != k || (checkpoint_pixel_diff != 0) != use_pixel_diff) {
      return false;
    }
    if (!dec.GetSignedVarint(&result->detections) || !dec.GetDouble(&result->gpu_millis) ||
        !dec.GetSignedVarint(&result->cnn_invocations) ||
        !dec.GetSignedVarint(&result->suppressed)) {
      return false;
    }
    uint64_t num_results = 0;
    if (!dec.GetVarint(&num_results) || num_results > dec.remaining()) {
      return false;
    }
    for (uint64_t i = 0; i < num_results; ++i) {
      int64_t object = 0;
      uint64_t entries = 0;
      if (!dec.GetSignedVarint(&object) || !dec.GetVarint(&entries) ||
          entries > dec.remaining()) {
        return false;
      }
      cnn::TopKResult topk;
      topk.entries.reserve(static_cast<size_t>(entries));
      for (uint64_t e = 0; e < entries; ++e) {
        int64_t cls = 0;
        float confidence = 0.0f;
        if (!dec.GetSignedVarint(&cls) || !dec.GetFloat(&confidence)) {
          return false;
        }
        topk.entries.emplace_back(static_cast<common::ClassId>(cls), confidence);
      }
      last_result->emplace(object, std::move(topk));
    }
    uint64_t num_features = 0;
    if (!dec.GetVarint(&num_features) || num_features > dec.remaining()) {
      return false;
    }
    for (uint64_t i = 0; i < num_features; ++i) {
      int64_t object = 0;
      common::FeatureVec feature;
      if (!dec.GetSignedVarint(&object) || !cluster::DecodeFeatureVec(dec, &feature)) {
        return false;
      }
      last_feature->emplace(object, std::move(feature));
    }
    uint64_t num_seen = 0;
    if (!dec.GetVarint(&num_seen) || num_seen > dec.remaining()) {
      return false;
    }
    for (uint64_t i = 0; i < num_seen; ++i) {
      int64_t object = 0;
      int64_t frame = 0;
      if (!dec.GetSignedVarint(&object) || !dec.GetSignedVarint(&frame)) {
        return false;
      }
      last_seen->emplace(object, frame);
    }
    return ranks->DecodeFrom(dec) && dec.Done();
  }
};

// The windowed streaming finalize (src/core/live_snapshot.h): cuts and
// publishes the epoch snapshots of one ingest run. One instance lives for the
// run and carries the delta-build state across epochs — which raw cluster ids
// were assigned to since the last snapshot, and where each canonical cluster
// sat in the previous epoch's index — so an unchanged canonical cluster's
// index entry is carried forward instead of re-folded and re-sorted.
//
// The finalizer itself only *cuts*: each boundary it produces a self-contained
// SnapshotBuildJob (deep copies for dirty entries, previous-epoch slot numbers
// for clean ones) and hands it to a SnapshotBuilder, which assembles and
// publishes either inline (synchronous mode) or on its own thread
// (IngestOptions::background_publish).
//
// Cadence discipline: boundaries are absolute sampled-frame multiples of
// finalize_every_frames, so a crash-resumed run hits the same boundaries as an
// uninterrupted one, and on the sharded path the boundary's merge pass runs
// whether or not a consumer is attached — a snapshot consumer observes the
// stream, it never changes it.
class WindowedFinalizer {
 public:
  WindowedFinalizer(const IngestOptions& options, double fps)
      : every_(options.finalize_every_frames),
        incremental_(options.incremental_boundary_merge),
        fps_(fps),
        next_boundary_(every_ > 0 ? every_ : 0) {
    if (every_ > 0 && (options.snapshot_slot != nullptr || options.snapshot_sink)) {
      builder_ = std::make_unique<SnapshotBuilder>(options.snapshot_slot, options.snapshot_sink,
                                                   options.background_publish);
    }
  }

  bool enabled() const { return every_ > 0; }
  bool has_consumer() const { return builder_ != nullptr; }

  // Blocks until every cut handed to the builder has been assembled and
  // published (background mode backlog; synchronous mode publishes inside
  // Publish, so this is a no-op there). The persistent loop calls this before
  // a checkpoint so the durable cut never precedes its same-frame
  // publication, and before sealing the end of the stream.
  void FlushBuilds() {
    if (builder_ != nullptr) {
      builder_->Flush();
    }
  }

  // Streaming form: true after processing sampled frame |frame| completes a
  // window (the watermark is then frame + 1).
  bool AtBoundary(common::FrameIndex frame) const {
    return enabled() && (frame + 1) % every_ == 0;
  }

  // Records an assignment target (raw global cluster id) since the last
  // snapshot; the delta build rebuilds exactly the touched components.
  void Touch(int64_t raw_id) {
    if (enabled() && has_consumer()) {
      touched_.insert(raw_id);
    }
  }

  // Replay form: publishes every still-unpublished cadence boundary at or
  // below |frame| (call before assigning a detection of |frame|; the
  // classified sample carries no trailing empty frames, so boundaries are
  // discovered from the detections themselves). |detections| is the number of
  // sample entries already consumed — all of them below the boundary.
  template <typename Clusterer>
  void CatchUp(common::FrameIndex frame, Clusterer& clusterer, const BestRankTable& ranks,
               int64_t detections) {
    while (enabled() && frame >= next_boundary_) {
      Publish(next_boundary_, clusterer, ranks, detections);
      next_boundary_ += every_;
    }
  }
  common::FrameIndex next_boundary() const { return next_boundary_; }

  // Sequential form: cluster ids are dense and final; the canonical table is
  // the clusterer's own table, so a clean entry is simply the same id's entry
  // of the previous epoch.
  void Publish(common::FrameIndex watermark, const cluster::IncrementalClusterer& clusterer,
               const BestRankTable& ranks, int64_t detections) {
    if (!has_consumer()) {
      return;  // Sequential snapshots have no clustering side effects.
    }
    const auto cut_start = std::chrono::steady_clock::now();
    SnapshotBuildJob job;
    job.watermark = watermark;
    job.fps = fps_;
    job.detections = detections;
    job.items.reserve(clusterer.clusters().size());
    for (const cluster::Cluster& c : clusterer.clusters()) {
      const bool clean = have_prev_ && static_cast<size_t>(c.id) < prev_sequential_clusters_ &&
                         !touched_.contains(c.id);
      SnapshotBuildItem item;
      if (clean) {
        item.reused = true;
        item.prev_slot = static_cast<size_t>(c.id);
      } else {
        item.entry.cluster_id = c.id;
        item.entry.representative = c.representative;
        item.entry.members = c.members;
        item.entry.size = c.size;
        ranks.Finalize(c.id, &item.entry);
      }
      job.items.push_back(std::move(item));
    }
    prev_sequential_clusters_ = clusterer.clusters().size();
    Submit(std::move(job), cut_start);
  }

  // Sharded form: runs the boundary's merge side effect first — the full
  // cross-shard pass to convergence, or in incremental mode the boundary merge
  // pass that re-examines only clusters dirtied since the previous boundary —
  // the cadence side effect that must happen with or without a consumer — then
  // cuts the canonical-table delta for the builder.
  void Publish(common::FrameIndex watermark, cluster::ShardedClusterer& sharded,
               const BestRankTable& ranks, int64_t detections) {
    // The boundary merge is the cadence's clustering side effect — it runs
    // with or without a consumer, so it stays outside the timed cut:
    // cut_millis measures only the cost attributable to publication. (Full
    // mode's merge happens inside FinalizeClusters and cannot be hoisted; its
    // cut keeps the historical merge-inclusive accounting.)
    if (incremental_) {
      sharded.BoundaryMergePass();
    } else if (!has_consumer()) {
      sharded.MergePass();
    }
    if (!has_consumer()) {
      return;
    }
    const auto cut_start = std::chrono::steady_clock::now();
    SnapshotBuildJob job;
    job.watermark = watermark;
    job.fps = fps_;
    job.detections = detections;
    if (incremental_) {
      CutShardedIncremental(sharded, ranks, job);
    } else {
      CutShardedFull(sharded, ranks, job);
    }
    Submit(std::move(job), cut_start);
  }

 private:
  // Shared sharded census, one pair of ascending-global-id walks over the raw
  // shard tables (local asc, shard asc == ascending g): roots in ascending
  // canonical order, per-component raw counts, memoized union-find lookups,
  // per-root clean flags, and the CSR raw-member spans of every dirty
  // component. A canonical cluster is clean — its entry of the previous epoch
  // still byte-exact — iff it existed then, no raw member was assigned to
  // since, and its component composition (which only ever grows) kept the
  // same raw count. Requires the union-find converged (the caller just ran
  // its merge pass).
  void CensusSharded(const cluster::ShardedClusterer& sharded) {
    const size_t num_shards = sharded.num_shards();
    size_t max_locals = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      max_locals = std::max(max_locals, sharded.shard(s).clusters().size());
    }
    census_size_ = num_shards * max_locals;
    comp_count_.assign(census_size_, 0);
    canon_of_.assign(census_size_, -1);
    slot_of_root_.assign(census_size_, -1);
    roots_in_order_.clear();
    for (size_t l = 0; l < max_locals; ++l) {
      for (size_t s = 0; s < num_shards; ++s) {
        if (l >= sharded.shard(s).clusters().size()) {
          continue;
        }
        const int64_t g = sharded.GlobalId(s, static_cast<int64_t>(l));
        const int64_t root = sharded.CanonicalOf(g);
        canon_of_[static_cast<size_t>(g)] = root;
        if (root == g) {
          slot_of_root_[static_cast<size_t>(g)] = static_cast<int64_t>(roots_in_order_.size());
          roots_in_order_.push_back(g);
        }
        ++comp_count_[static_cast<size_t>(root)];
      }
    }
    ++cut_seq_;
    if (touched_mark_.size() < census_size_) {
      touched_mark_.resize(census_size_, 0);
    }
    for (const int64_t raw : touched_) {
      const int64_t root = canon_of_[static_cast<size_t>(raw)] >= 0
                               ? canon_of_[static_cast<size_t>(raw)]
                               : sharded.CanonicalOf(raw);
      touched_mark_[static_cast<size_t>(root)] = cut_seq_;
    }
    root_clean_.assign(roots_in_order_.size(), 0);
    dirty_begin_.assign(roots_in_order_.size() + 1, 0);
    size_t dirty_total = 0;
    for (size_t i = 0; i < roots_in_order_.size(); ++i) {
      const size_t root = static_cast<size_t>(roots_in_order_[i]);
      const bool clean = have_prev_ && touched_mark_[root] != cut_seq_ &&
                         root < prev_slot_by_canonical_.size() &&
                         prev_slot_by_canonical_[root] >= 0 &&
                         prev_comp_count_[root] == comp_count_[root];
      root_clean_[i] = clean ? 1 : 0;
      dirty_begin_[i] = dirty_total;
      if (!clean) {
        dirty_total += static_cast<size_t>(comp_count_[root]);
      }
    }
    dirty_begin_[roots_in_order_.size()] = dirty_total;
    // CSR fill, ascending global id per component — the incremental cut's
    // member concatenation must match FinalizeClusters' fold order (the rank
    // fold is a min per class, so for it alone the order would be immaterial).
    dirty_raws_.resize(dirty_total);
    dirty_fill_.assign(dirty_begin_.begin(), dirty_begin_.end());
    for (size_t l = 0; l < max_locals; ++l) {
      for (size_t s = 0; s < num_shards; ++s) {
        if (l >= sharded.shard(s).clusters().size()) {
          continue;
        }
        const int64_t g = sharded.GlobalId(s, static_cast<int64_t>(l));
        const size_t root = static_cast<size_t>(canon_of_[static_cast<size_t>(g)]);
        const size_t slot = static_cast<size_t>(slot_of_root_[root]);
        if (!root_clean_[slot]) {
          dirty_raws_[dirty_fill_[slot]++] = g;
        }
      }
    }
  }

  // Publishes this cut's census as the next cut's "previous epoch" view.
  void CommitCensus() {
    prev_slot_by_canonical_.assign(census_size_, -1);
    for (size_t i = 0; i < roots_in_order_.size(); ++i) {
      prev_slot_by_canonical_[static_cast<size_t>(roots_in_order_[i])] = static_cast<int64_t>(i);
    }
    std::swap(prev_comp_count_, comp_count_);
  }

  // Full cut: FinalizeClusters folds the whole canonical table (running the
  // full merge pass), then the delta build reuses every clean component's
  // previous-epoch entry. The census walk and the table enumerate the same
  // components in the same ascending-canonical-id order.
  void CutShardedFull(cluster::ShardedClusterer& sharded, const BestRankTable& ranks,
                      SnapshotBuildJob& job) {
    std::vector<cluster::Cluster> table = sharded.FinalizeClusters();
    CensusSharded(sharded);
    FOCUS_CHECK(table.size() == roots_in_order_.size());

    job.items.reserve(table.size());
    std::vector<std::pair<int32_t, common::ClassId>> ranked;  // Scratch per entry.
    std::unordered_map<common::ClassId, size_t> rank_slot;
    for (size_t i = 0; i < table.size(); ++i) {
      const cluster::Cluster& c = table[i];
      SnapshotBuildItem item;
      if (root_clean_[i]) {
        item.reused = true;
        item.prev_slot = static_cast<size_t>(prev_slot_by_canonical_[static_cast<size_t>(c.id)]);
      } else {
        item.entry.cluster_id = c.id;
        item.entry.representative = c.representative;
        item.entry.members = c.members;
        item.entry.size = c.size;
        FoldRanks(ranks, &dirty_raws_[dirty_begin_[i]], dirty_begin_[i + 1] - dirty_begin_[i],
                  ranked, rank_slot, item.entry);
      }
      job.items.push_back(std::move(item));
    }
    CommitCensus();
  }

  // Incremental cut: the boundary merge pass above re-examined only clusters
  // dirtied since the previous boundary, so the canonical table is re-derived
  // by one ascending-global-id walk over the raw shard tables instead of
  // FinalizeClusters' full fold. The walk order (local asc, shard asc) is
  // ascending global id, so components' roots appear in first-seen order ==
  // ascending root order — exactly FinalizeClusters' table order — and a dirty
  // component's members concatenate in the same raw order FinalizeClusters
  // folds them. Clean components carry forward by previous-epoch slot without
  // touching their members at all.
  void CutShardedIncremental(cluster::ShardedClusterer& sharded, const BestRankTable& ranks,
                             SnapshotBuildJob& job) {
    // Publish already ran BoundaryMergePass — the union-find is converged for
    // every cluster dirtied since the previous boundary.
    CensusSharded(sharded);
    const size_t num_shards = sharded.num_shards();

    job.items.reserve(roots_in_order_.size());
    std::vector<std::pair<int32_t, common::ClassId>> ranked;  // Scratch per entry.
    std::unordered_map<common::ClassId, size_t> rank_slot;
    for (size_t i = 0; i < roots_in_order_.size(); ++i) {
      const int64_t root = roots_in_order_[i];
      SnapshotBuildItem item;
      if (root_clean_[i]) {
        item.reused = true;
        item.prev_slot = static_cast<size_t>(prev_slot_by_canonical_[static_cast<size_t>(root)]);
        job.items.push_back(std::move(item));
        continue;
      }
      item.entry.cluster_id = root;
      for (size_t r = dirty_begin_[i]; r < dirty_begin_[i + 1]; ++r) {
        const int64_t raw = dirty_raws_[r];
        const size_t s = static_cast<size_t>(raw) % num_shards;
        const size_t l = static_cast<size_t>(raw) / num_shards;
        const cluster::Cluster& src = sharded.shard(s).clusters()[l];
        if (raw == root) {
          // The root is the component's minimum id, so it is the raw cluster
          // FinalizeClusters seeds the canonical entry (and representative)
          // from.
          item.entry.representative = src.representative;
        }
        item.entry.members.insert(item.entry.members.end(), src.members.begin(),
                                  src.members.end());
        item.entry.size += src.size;
      }
      FoldRanks(ranks, &dirty_raws_[dirty_begin_[i]], dirty_begin_[i + 1] - dirty_begin_[i],
                ranked, rank_slot, item.entry);
      job.items.push_back(std::move(item));
    }
    CommitCensus();
  }

  // Min-folds the component's raw rank rows into |entry|, then sorts
  // (rank, class) — exactly BestRankTable::Finalize's order on the folded
  // table. |ranked|/|rank_slot| are caller-owned scratch.
  static void FoldRanks(const BestRankTable& ranks, const int64_t* raws, size_t count,
                        std::vector<std::pair<int32_t, common::ClassId>>& ranked,
                        std::unordered_map<common::ClassId, size_t>& rank_slot,
                        index::ClusterEntry& entry) {
    ranked.clear();
    rank_slot.clear();
    for (size_t j = 0; j < count; ++j) {
      const int64_t raw = raws[j];
      ranks.ForEachOf(raw, [&](common::ClassId cls, int32_t rank) {
        auto [it, inserted] = rank_slot.try_emplace(cls, ranked.size());
        if (inserted) {
          ranked.emplace_back(rank, cls);
        } else if (rank < ranked[it->second].first) {
          ranked[it->second].first = rank;
        }
      });
    }
    std::sort(ranked.begin(), ranked.end());
    entry.topk_classes.reserve(ranked.size());
    entry.topk_ranks.reserve(ranked.size());
    for (const auto& [rank, cls] : ranked) {
      entry.topk_classes.push_back(cls);
      entry.topk_ranks.push_back(rank);
    }
  }

  // Stamps the cut's ingest-thread wall-clock and hands the job over.
  // Synchronous mode publishes before returning; background mode returns as
  // soon as the queue accepts the job.
  void Submit(SnapshotBuildJob job, std::chrono::steady_clock::time_point cut_start) {
    job.cut_millis =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - cut_start)
            .count();
    builder_->Submit(std::move(job));
    have_prev_ = true;
    touched_.clear();
  }

  const int64_t every_;
  const bool incremental_;
  const double fps_;
  common::FrameIndex next_boundary_;
  std::unique_ptr<SnapshotBuilder> builder_;  // Null without a consumer.

  // True once the first epoch's job has been handed over. The builder
  // publishes jobs in FIFO order, so by the time a later job assembles, the
  // previous epoch's index exists for its reused slots to copy from.
  bool have_prev_ = false;
  std::unordered_set<int64_t> touched_;  // Raw ids assigned since the last cut.
  // Sharded delta state, flat-indexed by canonical (global) id — ids are dense
  // (g = local * num_shards + shard), so vector indexing replaces the hash-map
  // census that used to dominate cut_millis at a few thousand clusters:
  // canonical id -> dense slot in the previous epoch's index (-1 = absent),
  // and the component raw count as of that epoch.
  std::vector<int64_t> prev_slot_by_canonical_;
  std::vector<int32_t> prev_comp_count_;
  // Per-cut census scratch (CensusSharded), kept across epochs so the cut
  // never reallocates in steady state.
  size_t census_size_ = 0;               // num_shards * max_locals this cut.
  std::vector<int32_t> comp_count_;      // [root] raw members, 0 elsewhere.
  std::vector<int64_t> canon_of_;        // [g] memoized CanonicalOf.
  std::vector<int64_t> slot_of_root_;    // [root] -> index in roots_in_order_.
  std::vector<uint32_t> touched_mark_;   // [root] == cut_seq_ -> dirtied.
  uint32_t cut_seq_ = 0;
  std::vector<int64_t> roots_in_order_;  // Ascending canonical ids this cut.
  std::vector<uint8_t> root_clean_;      // Parallel: previous entry reusable.
  // CSR spans of each dirty component's raw members, ascending global id:
  // slot i owns dirty_raws_[dirty_begin_[i], dirty_begin_[i + 1]).
  std::vector<size_t> dirty_begin_;
  std::vector<size_t> dirty_fill_;
  std::vector<int64_t> dirty_raws_;
  // Sequential delta state: cluster count as of the previous epoch (ids are
  // dense + stable).
  size_t prev_sequential_clusters_ = 0;
};

}  // namespace

common::Result<IngestResult> RunIngestResumableChecked(const video::StreamRun& run,
                                                       const cnn::Cnn& ingest_cnn,
                                                       const IngestParams& params,
                                                       const IngestOptions& options) {
  FOCUS_CHECK(!options.persist_dir.empty());
  FOCUS_CHECK(options.num_shards >= 1);
  FOCUS_CHECK(options.checkpoint_every_frames >= 1);

  cluster::ShardedClustererOptions sopts;
  sopts.base.threshold = params.cluster_threshold;
  sopts.base.max_active = options.max_active_clusters;
  sopts.base.mode = options.cluster_mode;
  sopts.base.arena_fsync = options.arena_fsync;
  sopts.base.undo_fsync = options.undo_fsync;
  sopts.num_shards = static_cast<size_t>(options.num_shards);
  sopts.merge_interval = options.shard_merge_interval;
  sopts.boundary_merge = options.incremental_boundary_merge;
  cluster::ShardedClusterer clusterer(sopts);

  auto recovery = clusterer.OpenOrRecover(options.persist_dir);
  if (!recovery.ok()) {
    FOCUS_LOG(kError) << "ingest recovery failed: " << recovery.error().message;
    return recovery.error();
  }

  IngestResult result;
  BestRankTable ranks;
  std::unordered_map<common::ObjectId, cnn::TopKResult> last_result;
  std::unordered_map<common::ObjectId, common::FeatureVec> last_feature;
  std::unordered_map<common::ObjectId, common::FrameIndex> last_seen;
  PipelineState state{&result,       &ranks,     &last_result,
                      &last_feature, &last_seen, params.k,
                      options.use_pixel_diff};

  common::FrameIndex resume_frame = 0;
  if (recovery->recovered) {
    resume_frame = recovery->position;
    if (!state.Decode(recovery->user_state)) {
      // The meta snapshot passed its CRC but the pipeline blob inside does not
      // parse: durable state from a future/corrupt writer. Not retryable.
      return common::DataLoss("ingest pipeline state undecodable: " + options.persist_dir);
    }
  }
  result.resumed_from_frame = resume_frame;

  const common::FrameIndex limit_frame =
      options.limit_sec < 0.0 ? run.num_frames()
                              : static_cast<common::FrameIndex>(options.limit_sec * run.fps());
  const common::FrameIndex crash_frame =
      options.crash_after_frames < 0 ? -1 : resume_frame + options.crash_after_frames;

  // Reuse-map eviction: pixel differencing only ever reuses the result of the
  // same object's *previous sampled frame* (suppression requires the crop to
  // match frame-to-frame), so an entry idle longer than the configured gap is
  // treated as an exited track and dropped. Evicting those at every checkpoint
  // keeps the snapshotted pipeline state proportional to the objects currently
  // in scene instead of every object the stream has ever shown — which is what
  // keeps recovery O(working set) on long retention windows. The gap bounds
  // the occlusion length a track may survive suppressed; see
  // IngestOptions::reuse_evict_gap_frames.
  const common::FrameIndex reuse_evict_gap = options.reuse_evict_gap_frames;
  auto evict_idle_entries = [&](common::FrameIndex frame) {
    for (auto it = last_result.begin(); it != last_result.end();) {
      const auto seen = last_seen.find(it->first);
      if (seen == last_seen.end() || frame - seen->second > reuse_evict_gap) {
        last_feature.erase(it->first);
        if (seen != last_seen.end()) {
          last_seen.erase(seen);
        }
        it = last_result.erase(it);
      } else {
        ++it;
      }
    }
  };

  WindowedFinalizer finalizer(options, run.fps());
  int64_t frames_since_checkpoint = 0;
  bool crashed = false;
  std::optional<common::Error> failure;
  // Sharded runs dispatch each frame's assignments through a worker pool (one
  // ordered task per shard, exactly the RunIngestClassifiedSharded pattern) so
  // persistent resumable ingest scales within a stream like the volatile path.
  // pop_batch stays 1: the queued tasks are shard-coarse. At num_shards = 1
  // the pool is skipped and AssignBatch runs inline — the sequential schedule.
  std::unique_ptr<runtime::WorkerPool> pool;
  if (options.num_shards > 1) {
    pool = std::make_unique<runtime::WorkerPool>(
        options.num_shards,
        /*queue_capacity=*/static_cast<size_t>(options.num_shards) * 2,
        /*pop_batch=*/1);
  }
  std::vector<cluster::ShardedClusterer::WorkItem> frame_items;
  std::vector<const cnn::TopKResult*> frame_topk;
  std::vector<int64_t> frame_out;
  video::SweepStats sweep =
      run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (crashed || failure.has_value() || frame < resume_frame || frame >= limit_frame) {
      return;
    }
    if (crash_frame >= 0 && frame >= crash_frame) {
      crashed = true;  // Simulated worker crash: abandon mid-stream.
      return;
    }
    // Stage the frame: classify / extract fresh detections, reuse suppressed
    // ones. Pointers target the node-based reuse maps, which stay stable
    // through later inserts; each object appears at most once per frame.
    frame_items.clear();
    frame_topk.clear();
    for (const video::Detection& d : dets) {
      ++result.detections;
      last_seen[d.object_id] = frame;
      const bool can_reuse = options.use_pixel_diff && d.pixel_diff_suppressed &&
                             last_result.contains(d.object_id);
      cluster::ShardedClusterer::WorkItem item;
      item.detection = &d;
      if (can_reuse) {
        ++result.suppressed;
        item.feature = &last_feature[d.object_id];
        item.suppressed = true;
        frame_topk.push_back(&last_result[d.object_id]);
      } else {
        ++result.cnn_invocations;
        result.gpu_millis += ingest_cnn.inference_cost_millis();
        cnn::TopKResult fresh = ingest_cnn.Classify(d, params.k);
        common::FeatureVec feature = ingest_cnn.ExtractFeature(d);
        auto [rit, r_unused] = last_result.insert_or_assign(d.object_id, std::move(fresh));
        auto [fit, f_unused] = last_feature.insert_or_assign(d.object_id, std::move(feature));
        item.feature = &fit->second;
        frame_topk.push_back(&rit->second);
      }
      frame_items.push_back(item);
    }
    // Assign the frame as one batch. The object-id partition makes the
    // assignments identical to the sequential per-detection path; only the
    // cross-shard merge cadence moves to frame granularity (which does not
    // change the final table — the union-find only accumulates).
    frame_out.resize(frame_items.size());
    clusterer.AssignBatch(frame_items.data(), frame_items.size(), pool.get(),
                          frame_out.data());
    for (size_t i = 0; i < frame_items.size(); ++i) {
      const int64_t cluster_id = frame_out[i];
      finalizer.Touch(cluster_id);
      // Raw global ids here; folded onto canonical ids after the final merge.
      const cnn::TopKResult* topk = frame_topk[i];
      for (size_t pos = 0; pos < topk->entries.size(); ++pos) {
        ranks.Update(cluster_id, topk->entries[pos].first, static_cast<int32_t>(pos) + 1);
      }
    }
    // Publish before the checkpoint so a checkpoint at the same frame captures
    // the post-boundary merge state: a resumed run then restarts past the
    // boundary exactly as the uninterrupted run left it, while a crash before
    // the checkpoint replays the boundary pass from the prior one. Snapshots
    // themselves are volatile — never checkpointed — and are republished from
    // live state after the resumed run crosses its next boundary.
    if (finalizer.AtBoundary(frame)) {
      finalizer.Publish(frame + 1, clusterer, ranks, result.detections);
    }
    if (++frames_since_checkpoint >= options.checkpoint_every_frames) {
      evict_idle_entries(frame);
      // Any build still in flight must publish before the durable cut: a
      // same-frame snapshot is observable no later than the checkpoint that
      // captures its post-boundary state, exactly as in synchronous mode.
      finalizer.FlushBuilds();
      // A transiently failing commit (msync hiccup, rename rejected) is
      // retried in place: the checkpoint protocol is re-runnable after any
      // partial failure (the meta rename is the single commit point; arena
      // generation skips are harmless). Only a persistently failing commit
      // abandons the attempt to the supervisor.
      const std::string encoded = state.Encode();
      auto checkpointed = common::RetryWithBackoff(options.checkpoint_retry, [&] {
        return clusterer.Checkpoint(frame + 1, encoded, pool.get());
      });
      if (!checkpointed.ok()) {
        failure = checkpointed.error();
        return;
      }
      frames_since_checkpoint = 0;
    }
  });

  if (failure.has_value()) {
    return *failure;
  }
  if (crashed) {
    // Exactly like a crash: whatever the last periodic checkpoint captured is
    // the durable state; this attempt's partial counters are returned for the
    // caller's accounting but nothing further is published.
    return result;
  }
  if (sweep.aborted) {
    // The stream cut out mid-recording (camera flap / uplink loss). The last
    // checkpoint is durable; a restarted worker resumes from it and replays
    // the tail once the stream comes back.
    return common::Unavailable("stream delivery aborted mid-recording");
  }

  // Seal the end of the stream, then finalize. The final full merge pass and
  // the canonical fold happen in memory after the seal; a crash during them
  // resumes at the sealed position and re-finalizes. Builds drain first so
  // every epoch is published before the stream's durable end state lands.
  finalizer.FlushBuilds();
  const std::string sealed_state = state.Encode();
  auto sealed = common::RetryWithBackoff(options.checkpoint_retry, [&] {
    return clusterer.Checkpoint(limit_frame, sealed_state, pool.get());
  });
  if (!sealed.ok()) {
    return sealed.error();
  }

  std::vector<cluster::Cluster> canonical = clusterer.FinalizeClusters();
  BestRankTable canonical_ranks;
  ranks.ForEach([&](int64_t raw, common::ClassId cls, int32_t rank) {
    canonical_ranks.Update(clusterer.CanonicalOf(raw), cls, rank);
  });
  for (const cluster::Cluster& c : canonical) {
    index::ClusterEntry entry;
    entry.cluster_id = c.id;
    entry.representative = c.representative;
    entry.members = c.members;
    entry.size = c.size;
    canonical_ranks.Finalize(c.id, &entry);
    result.index.AddCluster(std::move(entry));
  }
  result.num_clusters = static_cast<int64_t>(result.index.num_clusters());
  result.clusterer_fast_hit_rate = clusterer.FastHitRate();
  return result;
}

IngestResult RunIngestResumable(const video::StreamRun& run, const cnn::Cnn& ingest_cnn,
                                const IngestParams& params, const IngestOptions& options) {
  auto result = RunIngestResumableChecked(run, ingest_cnn, params, options);
  if (!result.ok()) {
    FOCUS_LOG(kError) << "resumable ingest failed: " << result.error().message;
    FOCUS_CHECK(result.ok());
  }
  return *std::move(result);
}

// Detections are dispatched in shard_batch chunks onto a dedicated worker pool
// (one ordered task per shard per chunk), assignments are collected
// positionally, and rank accounting runs after the final merge so every update
// lands directly on a canonical cluster id. Result accounting is
// deterministic: the assignment of each detection, the canonical mapping, and
// the stream-order rank replay are all pure functions of the sample (see
// sharded_clusterer.h) — and independent of which worker pool dispatches the
// shard tasks, so a caller-supplied |pool| reused across runs changes cost,
// never output.
IngestResult RunIngestClassifiedSharded(const ClassifiedSample& sample,
                                        const IngestParams& params,
                                        const IngestOptions& options,
                                        runtime::WorkerPool* pool) {
  FOCUS_CHECK(options.num_shards >= 1);
  IngestResult result;
  result.gpu_millis = sample.gpu_millis;
  result.cnn_invocations = sample.cnn_invocations;
  result.suppressed = sample.suppressed;

  cluster::ShardedClustererOptions sopts;
  sopts.base.threshold = params.cluster_threshold;
  sopts.base.max_active = options.max_active_clusters;
  sopts.base.mode = options.cluster_mode;
  sopts.num_shards = static_cast<size_t>(options.num_shards);
  sopts.merge_interval = options.shard_merge_interval;
  sopts.boundary_merge = options.incremental_boundary_merge;
  cluster::ShardedClusterer sharded(sopts);

  // pop_batch stays 1: the queued tasks are already shard-coarse, and letting
  // one worker pull several would serialize shards behind each other.
  std::unique_ptr<runtime::WorkerPool> local_pool;
  if (pool == nullptr) {
    local_pool = std::make_unique<runtime::WorkerPool>(
        options.num_shards,
        /*queue_capacity=*/static_cast<size_t>(options.num_shards) * 2,
        /*pop_batch=*/1);
    pool = local_pool.get();
  }

  const size_t n = sample.detections.size();
  const size_t batch = std::max<size_t>(options.shard_batch, 1);
  const size_t rank_width = static_cast<size_t>(std::min(params.k, sample.k));
  WindowedFinalizer finalizer(options, sample.fps);
  // Ranks accumulate on *raw* global ids during assignment (the windowed
  // finalize needs rank state at every cadence boundary, not just at the end)
  // and fold onto canonical ids per snapshot / at the final table build —
  // min-rank union is associative, so this is byte-identical to the previous
  // post-hoc canonical accounting.
  BestRankTable ranks;
  std::vector<int64_t> assignments(n);
  std::vector<cluster::ShardedClusterer::WorkItem> items;
  items.reserve(std::min(batch, n));
  size_t offset = 0;
  while (offset < n) {
    finalizer.CatchUp(sample.detections[offset].detection.frame, sharded, ranks,
                      static_cast<int64_t>(offset));
    // One dispatch chunk: up to shard_batch items, never crossing the next
    // cadence boundary (the chunk cut — like the boundary itself — is a pure
    // function of the sample, so a run halted at a watermark chunks its
    // prefix identically).
    size_t count = 0;
    while (offset + count < n && count < batch &&
           (!finalizer.enabled() ||
            sample.detections[offset + count].detection.frame < finalizer.next_boundary())) {
      ++count;
    }
    items.clear();
    for (size_t i = 0; i < count; ++i) {
      const ClassifiedDetection& entry = sample.detections[offset + i];
      items.push_back({&entry.detection, &entry.feature, entry.reused});
    }
    sharded.AssignBatch(items.data(), count, pool, assignments.data() + offset);
    for (size_t i = 0; i < count; ++i) {
      const ClassifiedDetection& entry = sample.detections[offset + i];
      const int64_t raw = assignments[offset + i];
      finalizer.Touch(raw);
      const size_t width = std::min(rank_width, entry.topk.entries.size());
      for (size_t pos = 0; pos < width; ++pos) {
        ranks.Update(raw, entry.topk.entries[pos].first, static_cast<int32_t>(pos) + 1);
      }
    }
    offset += count;
  }
  // A per-call pool is torn down here; a caller-supplied one stays alive (its
  // tasks are all drained — AssignBatch synchronizes per batch).
  if (local_pool != nullptr) {
    local_pool->Shutdown();
  }

  std::vector<cluster::Cluster> canonical = sharded.FinalizeClusters();
  result.detections = static_cast<int64_t>(n);

  BestRankTable canonical_ranks;
  ranks.ForEach([&](int64_t raw, common::ClassId cls, int32_t rank) {
    canonical_ranks.Update(sharded.CanonicalOf(raw), cls, rank);
  });
  for (const cluster::Cluster& c : canonical) {
    index::ClusterEntry entry;
    entry.cluster_id = c.id;
    entry.representative = c.representative;
    entry.members = c.members;
    entry.size = c.size;
    canonical_ranks.Finalize(c.id, &entry);
    result.index.AddCluster(std::move(entry));
  }
  result.num_clusters = static_cast<int64_t>(result.index.num_clusters());
  result.clusterer_fast_hit_rate = sharded.FastHitRate();
  return result;
}

ClassifiedSample ClassifySample(const video::StreamRun& run, const cnn::Cnn& ingest_cnn,
                                int k, const IngestOptions& options) {
  ClassifiedSample sample;
  sample.k = k;
  sample.fps = run.fps();

  std::unordered_map<common::ObjectId, size_t> last_index;  // Object -> last stored entry.
  const common::FrameIndex limit_frame =
      options.limit_sec < 0.0 ? run.num_frames()
                              : static_cast<common::FrameIndex>(options.limit_sec * run.fps());

  const video::SweepStats sweep = run.ForEachFrame([&](common::FrameIndex frame,
                                                       const std::vector<video::Detection>& dets) {
    if (frame >= limit_frame) {
      return;
    }
    for (const video::Detection& d : dets) {
      ClassifiedDetection entry;
      entry.detection = d;
      auto it = last_index.find(d.object_id);
      const bool can_reuse =
          options.use_pixel_diff && d.pixel_diff_suppressed && it != last_index.end();
      if (can_reuse) {
        ++sample.suppressed;
        entry.reused = true;
        entry.topk = sample.detections[it->second].topk;
        entry.feature = sample.detections[it->second].feature;
      } else {
        ++sample.cnn_invocations;
        sample.gpu_millis += ingest_cnn.inference_cost_millis();
        entry.topk = ingest_cnn.Classify(d, k);
        entry.feature = ingest_cnn.ExtractFeature(d);
      }
      last_index[d.object_id] = sample.detections.size();
      sample.detections.push_back(std::move(entry));
    }
  });
  sample.delivery_aborted = sweep.aborted;
  return sample;
}

IngestResult RunIngestClassified(const ClassifiedSample& sample, const IngestParams& params,
                                 const IngestOptions& options,
                                 cluster::IncrementalClusterer* scratch,
                                 runtime::WorkerPool* pool) {
  FOCUS_CHECK(options.num_shards >= 1);
  if (options.num_shards > 1) {
    return RunIngestClassifiedSharded(sample, params, options, pool);
  }
  IngestResult result;
  result.gpu_millis = sample.gpu_millis;
  result.cnn_invocations = sample.cnn_invocations;
  result.suppressed = sample.suppressed;

  cluster::ClustererOptions copts;
  copts.threshold = params.cluster_threshold;
  copts.max_active = options.max_active_clusters;
  copts.mode = options.cluster_mode;
  cluster::IncrementalClusterer local_clusterer(copts);
  cluster::IncrementalClusterer& clusterer = scratch != nullptr ? *scratch : local_clusterer;
  if (scratch != nullptr) {
    scratch->Reset(copts);
  }

  const size_t rank_width = static_cast<size_t>(std::min(params.k, sample.k));
  WindowedFinalizer finalizer(options, sample.fps);
  BestRankTable ranks;
  for (const ClassifiedDetection& entry : sample.detections) {
    finalizer.CatchUp(entry.detection.frame, clusterer, ranks, result.detections);
    ++result.detections;
    const int64_t cluster_id = entry.reused
                                   ? clusterer.AddSuppressed(entry.detection, entry.feature)
                                   : clusterer.Add(entry.detection, entry.feature);
    finalizer.Touch(cluster_id);
    const size_t width = std::min(rank_width, entry.topk.entries.size());
    for (size_t pos = 0; pos < width; ++pos) {
      ranks.Update(cluster_id, entry.topk.entries[pos].first, static_cast<int32_t>(pos) + 1);
    }
  }

  for (const cluster::Cluster& c : clusterer.clusters()) {
    index::ClusterEntry entry;
    entry.cluster_id = c.id;
    entry.representative = c.representative;
    entry.members = c.members;
    entry.size = c.size;
    ranks.Finalize(c.id, &entry);
    result.index.AddCluster(std::move(entry));
  }
  result.num_clusters = static_cast<int64_t>(result.index.num_clusters());
  result.clusterer_fast_hit_rate = clusterer.FastHitRate();
  return result;
}

common::Result<IngestResult> RunIngestChecked(const video::StreamRun& run,
                                              const cnn::Cnn& ingest_cnn,
                                              const IngestParams& params,
                                              const IngestOptions& options) {
  FOCUS_CHECK(options.num_shards >= 1);
  if (!options.persist_dir.empty()) {
    return RunIngestResumableChecked(run, ingest_cnn, params, options);
  }
  if (options.num_shards > 1) {
    // Classify once (IT1 + pixel differencing, the only GPU-bearing stage),
    // then shard clustering + indexing across the worker pool. GPU time,
    // invocation, and suppression accounting come from the classification pass
    // and are identical to the streaming path's.
    ClassifiedSample sample = ClassifySample(run, ingest_cnn, params.k, options);
    if (sample.delivery_aborted) {
      // Volatile ingest has no checkpoint to resume from: the restarted worker
      // re-ingests from frame 0 (the recording itself is intact).
      return common::Unavailable("stream delivery aborted mid-recording");
    }
    return RunIngestClassified(sample, params, options);
  }
  IngestResult result;

  cluster::ClustererOptions copts;
  copts.threshold = params.cluster_threshold;
  copts.max_active = options.max_active_clusters;
  copts.mode = options.cluster_mode;
  cluster::IncrementalClusterer clusterer(copts);

  WindowedFinalizer finalizer(options, run.fps());
  BestRankTable ranks;
  // Last classification of each object, reused on pixel-diff suppressed frames.
  std::unordered_map<common::ObjectId, cnn::TopKResult> last_result;
  std::unordered_map<common::ObjectId, common::FeatureVec> last_feature;

  const common::FrameIndex limit_frame =
      options.limit_sec < 0.0 ? run.num_frames()
                              : static_cast<common::FrameIndex>(options.limit_sec * run.fps());

  const video::SweepStats sweep = run.ForEachFrame([&](common::FrameIndex frame,
                                                       const std::vector<video::Detection>& dets) {
    if (frame >= limit_frame) {
      return;
    }
    for (const video::Detection& d : dets) {
      ++result.detections;
      const bool can_reuse = options.use_pixel_diff && d.pixel_diff_suppressed &&
                             last_result.contains(d.object_id);
      int64_t cluster_id = -1;
      const cnn::TopKResult* topk = nullptr;
      if (can_reuse) {
        ++result.suppressed;
        // IT1 skipped: reuse the previous classification and feature (§4.2).
        cluster_id = clusterer.AddSuppressed(d, last_feature[d.object_id]);
        topk = &last_result[d.object_id];
      } else {
        ++result.cnn_invocations;
        result.gpu_millis += ingest_cnn.inference_cost_millis();
        cnn::TopKResult fresh = ingest_cnn.Classify(d, params.k);
        common::FeatureVec feature = ingest_cnn.ExtractFeature(d);
        cluster_id = clusterer.Add(d, feature);
        auto [it, unused] = last_result.insert_or_assign(d.object_id, std::move(fresh));
        topk = &it->second;
        last_feature.insert_or_assign(d.object_id, std::move(feature));
      }
      finalizer.Touch(cluster_id);
      for (size_t pos = 0; pos < topk->entries.size(); ++pos) {
        ranks.Update(cluster_id, topk->entries[pos].first, static_cast<int32_t>(pos) + 1);
      }
    }
    if (finalizer.AtBoundary(frame)) {
      finalizer.Publish(frame + 1, clusterer, ranks, result.detections);
    }
  });
  if (sweep.aborted) {
    return common::Unavailable("stream delivery aborted mid-recording");
  }

  // IT4: finalize clusters into the top-K index, each carrying its top-K classes by
  // aggregated confidence.
  for (const cluster::Cluster& c : clusterer.clusters()) {
    index::ClusterEntry entry;
    entry.cluster_id = c.id;
    entry.representative = c.representative;
    entry.members = c.members;
    entry.size = c.size;
    ranks.Finalize(c.id, &entry);
    result.index.AddCluster(std::move(entry));
  }
  result.num_clusters = static_cast<int64_t>(result.index.num_clusters());
  result.clusterer_fast_hit_rate = clusterer.FastHitRate();
  return result;
}

IngestResult RunIngest(const video::StreamRun& run, const cnn::Cnn& ingest_cnn,
                       const IngestParams& params, const IngestOptions& options) {
  auto result = RunIngestChecked(run, ingest_cnn, params, options);
  if (!result.ok()) {
    FOCUS_LOG(kError) << "ingest failed: " << result.error().message;
    FOCUS_CHECK(result.ok());
  }
  return *std::move(result);
}

}  // namespace focus::core
