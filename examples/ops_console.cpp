// Operations console: the deployment-side machinery around the core pipeline.
//
// Shows the production story end to end: a worker fleet ingests several streams in
// parallel (§5 "Worker Processes"), the virtual GPU cluster answers the provisioning
// question (how many GPUs keep ingest real-time, what each stream costs per month),
// the top-K index is snapshotted to disk and reloaded (the MongoDB role, §5), a
// record log survives a simulated crash, the video vault enforces a retention
// budget, and the query service reports wall-clock latency on a 10-GPU fleet.
#include <cstdio>
#include <filesystem>

#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/metrics.h"
#include "src/runtime/query_service.h"
#include "src/storage/index_codec.h"
#include "src/storage/record_log.h"
#include "src/storage/snapshot_store.h"
#include "src/storage/video_vault.h"
#include "src/video/stream_generator.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);

  video::ClassCatalog catalog(42);
  const std::filesystem::path workdir = std::filesystem::temp_directory_path() / "focus_ops";
  std::filesystem::create_directories(workdir);

  // --- 1. Tune one stream, then ingest three streams through the worker fleet. ---
  std::printf("== Ingest fleet ==\n");
  video::StreamProfile profile;
  if (!video::FindProfile("auburn_c", &profile)) {
    return 1;
  }
  video::StreamRun run(&catalog, profile, /*duration_sec=*/480.0, /*fps=*/30.0, /*seed=*/11);
  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::printf("build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  core::FocusStream& focus = **focus_or;
  const core::IngestParams params = focus.chosen_params();

  video::StreamProfile p2;
  video::FindProfile("city_a_r", &p2);
  video::StreamProfile p3;
  video::FindProfile("lausanne", &p3);
  video::StreamRun run2(&catalog, p2, 480.0, 30.0, 12);
  video::StreamRun run3(&catalog, p3, 480.0, 30.0, 13);

  runtime::MetricsRegistry metrics;
  runtime::IngestServiceOptions service_options;
  service_options.num_worker_threads = 3;
  service_options.num_gpus = 1;
  runtime::IngestService service(service_options, &metrics);
  service.AddStream({.name = "auburn_c", .run = &run, .params = params});
  service.AddStream({.name = "city_a_r", .run = &run2, .params = params});
  service.AddStream({.name = "lausanne", .run = &run3, .params = params});
  runtime::FleetIngestSummary summary = service.RunAll();
  for (const runtime::IngestReport& report : summary.reports) {
    std::printf("  %-10s detections=%-7lld gpu_occupancy=%.4f  cost=$%.2f/month\n",
                report.name.c_str(), static_cast<long long>(report.result.detections),
                report.gpu_occupancy, service.CostPerStreamMonthly(report.gpu_occupancy));
  }
  std::printf("  fleet: %d GPU(s) keep all %zu streams real-time (total occupancy %.3f)\n",
              summary.min_gpus_for_realtime, summary.reports.size(),
              summary.total_gpu_occupancy);

  // --- 2. Snapshot the index to disk and reload it (restart survival). ---
  std::printf("\n== Index snapshot ==\n");
  storage::IndexSnapshotHeader header;
  header.stream_name = "auburn_c";
  header.model_name = params.model.name;
  header.k = params.k;
  header.cluster_threshold = params.cluster_threshold;
  header.world_seed = 42;
  header.fps = run.fps();
  header.model = params.model;
  const std::string snap_path = (workdir / "auburn_c.fidx").string();
  std::string blob = storage::EncodeIndexSnapshot(header, focus.ingest().index);
  if (!storage::WriteFileAtomic(snap_path, blob).ok()) {
    return 1;
  }
  storage::IndexSnapshotHeader loaded_header;
  index::TopKIndex loaded;
  auto reload = storage::ReadFile(snap_path);
  if (!reload.ok() ||
      !storage::DecodeIndexSnapshot(*reload, &loaded_header, &loaded).ok()) {
    std::printf("  snapshot reload failed\n");
    return 1;
  }
  std::printf("  %s: %zu clusters, %.1f KiB on disk, reloaded OK (model=%s, K=%d)\n",
              snap_path.c_str(), loaded.num_clusters(),
              static_cast<double>(blob.size()) / 1024.0, loaded_header.model_name.c_str(),
              loaded_header.k);

  // --- 3. Record log: append per-segment progress, survive a torn tail. ---
  std::printf("\n== Record log ==\n");
  const std::string log_path = (workdir / "ingest.log").string();
  std::filesystem::remove(log_path);
  {
    auto writer = storage::RecordLogWriter::Open(log_path);
    for (int segment = 0; segment < 8; ++segment) {
      writer->Append("segment " + std::to_string(segment) + " indexed");
    }
  }
  // Simulate a crash mid-append by chopping the file.
  auto raw = storage::ReadFile(log_path);
  storage::WriteFileAtomic(log_path, raw->substr(0, raw->size() - 5));
  auto recovered = storage::ReadRecordLog(log_path);
  std::printf("  replayed %zu/8 records after simulated crash (torn tail dropped: %s)\n",
              recovered->records.size(), recovered->truncated_tail ? "yes" : "no");

  // --- 4. Vault: retention under a byte budget. ---
  std::printf("\n== Video vault ==\n");
  storage::VideoVault vault;
  for (int hour = 0; hour < 24; ++hour) {
    storage::RecordingChunk chunk;
    chunk.begin_sec = hour * 3600.0;
    chunk.end_sec = (hour + 1) * 3600.0;
    chunk.size_bytes = 600LL * 1024 * 1024;  // ~600 MiB per recorded hour.
    chunk.uri = "vault://auburn_c/h" + std::to_string(hour);
    vault.AppendChunk("auburn_c", chunk);
  }
  vault.SetIndexSnapshot("auburn_c", snap_path);
  const int64_t budget = 8LL * 1024 * 1024 * 1024;  // Keep 8 GiB.
  int64_t dropped = vault.TrimToBudget(budget);
  std::printf("  24h recorded, budget 8 GiB -> dropped %lld oldest chunks, %0.1f h retained\n",
              static_cast<long long>(dropped),
              vault.Find("auburn_c")->RetainedSeconds() / 3600.0);

  // --- 5. Query service: wall-clock latency on a 10-GPU fleet. ---
  std::printf("\n== Query service (10 GPUs) ==\n");
  cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  auto dominant = truth.DominantClasses(0.95, 3);
  runtime::QueryService queries(runtime::QueryServiceOptions{.num_gpus = 10}, &metrics);
  for (common::ClassId cls : dominant) {
    runtime::QueryExecution e = queries.Execute({.stream = &focus, .cls = cls});
    std::printf("  '%s': %lld frames in %.0f ms wall (%lld centroids verified)\n",
                catalog.Name(cls).c_str(), static_cast<long long>(e.result.frames_returned),
                e.latency_millis(), static_cast<long long>(e.result.centroids_classified));
  }

  std::printf("\n== Metrics ==\n%s", metrics.Render().c_str());
  return 0;
}
