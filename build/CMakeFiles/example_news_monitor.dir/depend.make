# Empty dependencies file for example_news_monitor.
# This may be replaced when dependencies are built.
