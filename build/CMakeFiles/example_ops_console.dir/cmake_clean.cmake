file(REMOVE_RECURSE
  "CMakeFiles/example_ops_console.dir/examples/ops_console.cpp.o"
  "CMakeFiles/example_ops_console.dir/examples/ops_console.cpp.o.d"
  "example_ops_console"
  "example_ops_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ops_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
