// Ablation: specialization breadth Ls (§4.3 "OTHER class" trade-off).
//
// A small Ls gives the cheapest specialized model and the fastest queries for the
// popular classes, but pushes more classes into OTHER, and querying an OTHER class
// means classifying every OTHER-indexed cluster with the GT-CNN. A large Ls does the
// opposite. This bench trains specialized models at several Ls on the same stream
// sample and reports both sides: dominant-class query latency and OTHER-class query
// latency, plus the ingest cost of the model.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/common/logging.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_engine.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "jacksonh", config);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  // One shared sample estimate: all Ls variants train on the same distribution.
  cnn::ClassDistributionEstimate distribution = cnn::EstimateClassDistribution(
      run, gt, std::min(300.0, run.duration_sec()), /*frame_stride=*/30);

  cnn::SegmentGroundTruth truth(run, gt);
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 8);
  if (dominant.empty()) {
    std::fprintf(stderr, "no dominant classes in sample\n");
    return 1;
  }
  // A rare class that exists in the stream but sits far down the popularity order:
  // the class the OTHER path serves.
  std::vector<common::ClassId> by_popularity = run.classes_by_popularity();
  common::ClassId rare = by_popularity[std::min<size_t>(by_popularity.size() - 1, 40)];

  bench::PrintHeader("Ablation: specialization breadth Ls (jacksonh)");
  std::printf("%5s %10s %14s %16s %16s %12s\n", "Ls", "Coverage", "IngestCheaper",
              "DominantQ(ms)", "OtherQ(ms)", "OtherCands");

  for (int ls : {5, 10, 15, 30, 50, 80}) {
    cnn::SpecializationOptions spec;
    spec.ls = ls;
    cnn::ModelDesc model = cnn::TrainSpecializedModel(
        distribution, spec, run.profile().appearance_variability, config.world_seed + ls);

    core::IngestParams params;
    params.model = model;
    params.k = 4;
    params.cluster_threshold = 0.6;
    params.ls = ls;

    cnn::Cnn cheap(model, &catalog);
    core::IngestResult ingest = core::RunIngest(run, cheap, params);
    const double gt_all = static_cast<double>(ingest.detections) * gt.inference_cost_millis();
    const double ingest_cheaper = ingest.gpu_millis > 0 ? gt_all / ingest.gpu_millis : 0.0;

    core::QueryEngine engine(&ingest.index, &cheap, &gt);
    double dominant_ms = 0.0;
    for (common::ClassId cls : dominant) {
      dominant_ms += engine.Query(cls, params.k, {}, run.fps()).gpu_millis;
    }
    dominant_ms /= static_cast<double>(dominant.size());
    core::QueryResult other_q = engine.Query(rare, params.k, {}, run.fps());

    std::printf("%5d %9.1f%% %14s %16.1f %16.1f %12lld\n", ls,
                100.0 * distribution.CoverageOfTop(static_cast<size_t>(ls)),
                bench::FormatFactor(ingest_cheaper).c_str(), dominant_ms, other_q.gpu_millis,
                static_cast<long long>(other_q.centroids_classified));
  }

  std::printf(
      "\nExpected shape: coverage rises with Ls; OTHER-class query cost falls sharply\n"
      "with Ls (fewer clusters land in OTHER) while dominant-class latency stays\n"
      "roughly flat. Ingest cost barely moves: the conv layers dominate the cost\n"
      "model, and the specialized architecture is fixed across the sweep.\n");
  return 0;
}
