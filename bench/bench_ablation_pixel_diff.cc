// Ablation: ingest-time pixel differencing (§4.2 "Pixel Differencing of Objects").
//
// When consecutive crops of the same object barely change, Focus skips the cheap CNN
// and reuses the previous result. This bench runs the same configuration with the
// technique enabled and disabled across three streams and reports how many cheap-CNN
// invocations it saves and that accuracy is unaffected (the reused results belong to
// the same object).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  bench::PrintHeader("Ablation: pixel differencing on/off");
  std::printf("%-12s %-6s %14s %14s %12s %8s %8s\n", "Stream", "PixDiff", "CnnInvocations",
              "IngestCheaper", "SavedFrac", "Prec", "Recall");

  for (const char* stream : {"auburn_c", "lausanne", "cnn"}) {
    video::StreamRun run = bench::MakeRun(catalog, stream, config);
    core::FocusOptions options;
    auto focus_or = core::FocusStream::Build(&run, &catalog, options);
    if (!focus_or.ok()) {
      std::fprintf(stderr, "build failed for %s\n", stream);
      continue;
    }
    core::IngestParams params = (*focus_or)->chosen_params();

    for (bool use_pixel_diff : {true, false}) {
      cnn::Cnn cheap(params.model, &catalog);
      core::IngestOptions ingest_options;
      ingest_options.use_pixel_diff = use_pixel_diff;
      core::IngestResult ingest = core::RunIngest(run, cheap, params, ingest_options);

      cnn::SegmentGroundTruth truth(run, gt);
      core::AccuracyEvaluator evaluator(&truth, run.fps());
      core::QueryEngine engine(&ingest.index, &cheap, &gt);
      double sum_p = 0.0;
      double sum_r = 0.0;
      std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 8);
      for (common::ClassId cls : dominant) {
        core::PrecisionRecall pr =
            evaluator.Evaluate(cls, engine.Query(cls, params.k, {}, run.fps()));
        sum_p += pr.precision;
        sum_r += pr.recall;
      }
      const double n = static_cast<double>(dominant.size());
      const double gt_all = static_cast<double>(ingest.detections) * gt.inference_cost_millis();
      const double saved = ingest.detections > 0
                               ? static_cast<double>(ingest.suppressed) /
                                     static_cast<double>(ingest.detections)
                               : 0.0;
      std::printf("%-12s %-6s %14lld %14s %11.1f%% %8.3f %8.3f\n", stream,
                  use_pixel_diff ? "on" : "off",
                  static_cast<long long>(ingest.cnn_invocations),
                  bench::FormatFactor(gt_all / ingest.gpu_millis).c_str(), 100.0 * saved,
                  n > 0 ? sum_p / n : 0.0, n > 0 ? sum_r / n : 0.0);
    }
  }

  std::printf(
      "\nExpected shape: enabling pixel differencing cuts cheap-CNN invocations by\n"
      "the stream's near-duplicate fraction at identical precision/recall.\n");
  return 0;
}
