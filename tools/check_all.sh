#!/bin/sh
# The one-command pre-merge gate (docs/robustness.md):
#
#   1. unit gate     - full `ctest -L unit` in the plain Release build,
#                      then the fleet serving suite by its own label
#                      (`ctest -L fleet`: federated identity vs the sequential
#                      oracle, verdict cache, weighted-fair admission) so the
#                      serving-runtime gate is named even if labels reshuffle.
#   2. chaos gate    - `ctest -L fault` (deterministic fault-injection sweeps),
#                      `ctest -L shm` (the shared-memory serving plane:
#                      cross-process byte-identity, pin protocol, reader-crash
#                      isolation — docs/shm_serving.md), and `ctest -L proc`
#                      (supervised multi-process serving: worker RPC framing,
#                      restart budgets, sibling-retry identity, seeded
#                      kill/hang/torn-frame storms) in a FOCUS_SANITIZE=address
#                      build, so every injected failure path and every
#                      mapped-memory path also runs leak- and overflow-checked.
#   3. tsan gate     - the background-publication stress test
#                      (readers on SnapshotSlot::Latest() + queries racing
#                      builder-thread publishes and parallel checkpoint
#                      persistence) in a FOCUS_SANITIZE=thread build, so the
#                      background snapshot builder's handoffs run race-checked.
#   4. bench gate    - `bench/run_benches.sh --check`: the tracked perf
#                      guardrails, including bench_chaos's no-fault overhead
#                      of the robustness machinery and bench_live_query's
#                      background publish_overhead ceiling.
#
#   tools/check_all.sh [build_dir] [asan_build_dir] [tsan_build_dir]
#
# Build dirs default to build/, build-asan/, and build-tsan/ at the repo root;
# all are configured if missing and reused if present. Exits non-zero on the
# first failing gate. FOCUS_SKIP_ASAN=1 skips gate 2 and FOCUS_SKIP_TSAN=1
# skips gate 3 (e.g. on hosts without the sanitizer runtimes) — the underlying
# suites still ran inside gate 1's unit/stress sweeps, just uninstrumented.
set -e

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_DIR/build}"
ASAN_DIR="${2:-$REPO_DIR/build-asan}"
TSAN_DIR="${3:-$REPO_DIR/build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== gate 1/4: unit tests (Release) =="
cmake -S "$REPO_DIR" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure
echo "== gate 1/4 (fleet label): fleet serving runtime =="
ctest --test-dir "$BUILD_DIR" -L fleet --output-on-failure

if [ "${FOCUS_SKIP_ASAN:-0}" = "1" ]; then
  echo "== gate 2/4: SKIPPED (FOCUS_SKIP_ASAN=1) =="
else
  echo "== gate 2/4: chaos + shm + proc suites under AddressSanitizer =="
  cmake -S "$REPO_DIR" -B "$ASAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFOCUS_SANITIZE=address
  # Only the fault-, shm-, and proc-labeled suites are needed; build just
  # their targets.
  cmake --build "$ASAN_DIR" -j"$JOBS" \
    --target fault_injection_test chaos_ingest_test flaky_stream_test \
    shm_serving_test worker_process_pool_test proc_serving_chaos_test
  ctest --test-dir "$ASAN_DIR" -L fault --output-on-failure
  ctest --test-dir "$ASAN_DIR" -L shm --output-on-failure
  ctest --test-dir "$ASAN_DIR" -L proc --output-on-failure
fi

if [ "${FOCUS_SKIP_TSAN:-0}" = "1" ]; then
  echo "== gate 3/4: SKIPPED (FOCUS_SKIP_TSAN=1) =="
else
  echo "== gate 3/4: background publication stress under ThreadSanitizer =="
  cmake -S "$REPO_DIR" -B "$TSAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFOCUS_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j"$JOBS" --target background_publish_stress_test
  ctest --test-dir "$TSAN_DIR" -R background_publish_stress --output-on-failure
fi

echo "== gate 4/4: bench guardrails =="
"$REPO_DIR/bench/run_benches.sh" --check "$BUILD_DIR"

echo "check_all: all gates passed"
