// Semantics of the deterministic fault-injection plumbing (docs/robustness.md):
// FireOnHit / FireAlwaysFrom / FireWithProbability firing rules, hit counting
// for unmentioned sites (the chaos sweep relies on it), scoped arming and
// nesting, and the RetryPolicy's virtual-time backoff accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/result.h"
#include "src/common/retry.h"

namespace focus::common {
namespace {

TEST(FaultPlanTest, DisarmedSiteNeverFires) {
  ASSERT_EQ(ActiveFaultPlan(), nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultPoint("some.site"));
  }
}

TEST(FaultPlanTest, FireOnHitFiresExactlyOnce) {
  FaultPlan plan;
  plan.FireOnHit("disk.write", 3);
  ScopedFaultPlan armed(&plan);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(FaultPoint("disk.write"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(plan.HitCount("disk.write"), 6);
  EXPECT_EQ(plan.FireCount("disk.write"), 1);
}

TEST(FaultPlanTest, FireAlwaysFromIsSticky) {
  FaultPlan plan;
  plan.FireAlwaysFrom("gpu.launch", 2);
  ScopedFaultPlan armed(&plan);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) {
    fired.push_back(FaultPoint("gpu.launch"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, true}));
  EXPECT_EQ(plan.FireCount("gpu.launch"), 4);
}

TEST(FaultPlanTest, UnmentionedSitesAreCountedButNeverFire) {
  // The chaos sweep arms an *empty* plan first, runs the workload once, and
  // reads back how often each site was reached — so every site, mentioned or
  // not, must count its hits.
  FaultPlan plan;
  ScopedFaultPlan armed(&plan);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(FaultPoint("arena.commit.msync"));
  }
  EXPECT_EQ(plan.HitCount("arena.commit.msync"), 4);
  EXPECT_EQ(plan.FireCount("arena.commit.msync"), 0);
  EXPECT_EQ(plan.HitCount("never.reached"), 0);
  EXPECT_EQ(plan.TotalFires(), 0);
}

TEST(FaultPlanTest, ProbabilityStreamIsDeterministicPerSeedAndSite) {
  const auto sample = [](uint64_t seed, const std::string& site) {
    FaultPlan plan(seed);
    plan.FireWithProbability(site, 0.5);
    ScopedFaultPlan armed(&plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FaultPoint(site.c_str()));
    }
    return fired;
  };
  // Same seed + site: identical sequence. Different seed or site: (with
  // overwhelming probability over 64 Bernoulli(0.5) draws) a different one.
  EXPECT_EQ(sample(7, "a"), sample(7, "a"));
  EXPECT_NE(sample(7, "a"), sample(8, "a"));
  EXPECT_NE(sample(7, "a"), sample(7, "b"));
}

TEST(FaultPlanTest, ProbabilityOneFiresEveryHit) {
  FaultPlan plan(1);
  plan.FireWithProbability("always", 1.0);
  ScopedFaultPlan armed(&plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultPoint("always"));
  }
}

TEST(FaultPlanTest, ScopedArmingNestsAndRestores) {
  FaultPlan outer;
  outer.FireAlwaysFrom("site", 1);
  {
    ScopedFaultPlan armed_outer(&outer);
    EXPECT_TRUE(FaultPoint("site"));
    {
      FaultPlan inner;  // No rule for "site".
      ScopedFaultPlan armed_inner(&inner);
      EXPECT_FALSE(FaultPoint("site"));
      EXPECT_EQ(ActiveFaultPlan(), &inner);
    }
    EXPECT_EQ(ActiveFaultPlan(), &outer);
    EXPECT_TRUE(FaultPoint("site"));
  }
  EXPECT_EQ(ActiveFaultPlan(), nullptr);
  EXPECT_FALSE(FaultPoint("site"));
}

TEST(RetryPolicyTest, RetriesTransientFailuresWithExponentialVirtualBackoff) {
  int calls = 0;
  RetryStats stats;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_millis = 10.0;
  policy.backoff_multiplier = 2.0;
  auto result = RetryWithBackoff(
      policy,
      [&]() -> Result<bool> {
        if (++calls < 3) {
          return Unavailable("transient");
        }
        return true;
      },
      &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  // Two backoffs were taken: 10ms then 20ms — virtual time only.
  EXPECT_DOUBLE_EQ(stats.backoff_millis, 30.0);
}

TEST(RetryPolicyTest, NonRetryableFailsFast) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  auto result = RetryWithBackoff(policy, [&]() -> Result<bool> {
    ++calls;
    return DataLoss("corrupt");
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, ExhaustsAttemptsAndReturnsLastError) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  auto result = RetryWithBackoff(policy, [&]() -> Result<bool> {
    ++calls;
    return Timeout("still stuck");
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, RetryableTaxonomy) {
  EXPECT_TRUE(IsRetryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(ErrorCode::kTimeout));
  EXPECT_TRUE(IsRetryable(ErrorCode::kIo));  // Storage recovery repairs torn writes.
  EXPECT_FALSE(IsRetryable(ErrorCode::kDataLoss));
  EXPECT_FALSE(IsRetryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(ErrorCode::kInternal));
}

}  // namespace
}  // namespace focus::common
