#include "src/runtime/worker_process_pool.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "src/common/logging.h"

namespace focus::runtime {

namespace {

// Full-buffer send/recv over a SOCK_STREAM socketpair. MSG_NOSIGNAL turns a
// peer death into EPIPE instead of SIGPIPE — a dead worker must be an error
// code, never a signal into the caller.
bool SendAll(int fd, const void* data, size_t bytes) {
  const char* at = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, at, bytes, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    at += n;
    bytes -= static_cast<size_t>(n);
  }
  return true;
}

bool RecvAll(int fd, void* data, size_t bytes) {
  char* at = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd, at, bytes, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // 0 = orderly EOF; either way the conversation is over.
    }
    at += n;
    bytes -= static_cast<size_t>(n);
  }
  return true;
}

bool SendFrame(int fd, const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  return SendAll(fd, &len, sizeof(len)) && SendAll(fd, payload.data(), payload.size());
}

bool RecvFrame(int fd, std::string* payload) {
  uint32_t len = 0;
  if (!RecvAll(fd, &len, sizeof(len))) {
    return false;
  }
  payload->resize(len);
  return len == 0 || RecvAll(fd, payload->data(), len);
}

[[noreturn]] void WorkerLoop(int fd, const WorkerProcessPool::Handler& handler) {
  std::string request;
  while (RecvFrame(fd, &request)) {
    if (!SendFrame(fd, handler(request))) {
      break;
    }
  }
  // _exit, not exit: never run the parent's atexit handlers or flush its
  // forked stdio buffers from the child.
  ::_exit(0);
}

}  // namespace

WorkerProcessPool::~WorkerProcessPool() { Shutdown(); }

common::Result<std::monostate> WorkerProcessPool::Start(int num_workers, Handler handler) {
  if (!workers_.empty()) {
    return common::FailedPrecondition("worker pool already started");
  }
  FOCUS_CHECK(num_workers > 0);
  for (int i = 0; i < num_workers; ++i) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      Shutdown();
      return common::IoError(std::string("socketpair: ") + std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      Shutdown();
      return common::IoError(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      ::close(fds[0]);
      for (const Worker& sibling : workers_) {
        ::close(sibling.fd);  // Keep sibling EOFs crisp: one parent fd each.
      }
      WorkerLoop(fds[1], handler);
    }
    ::close(fds[1]);
    workers_.push_back(Worker{pid, fds[0], false});
  }
  return std::monostate{};
}

common::Result<std::string> WorkerProcessPool::Call(int index, const std::string& request) {
  FOCUS_CHECK(index >= 0 && index < size());
  Worker& worker = workers_[index];
  if (worker.fd < 0) {
    return common::Unavailable("worker " + std::to_string(index) + " is shut down");
  }
  std::string response;
  if (!SendFrame(worker.fd, request) || !RecvFrame(worker.fd, &response)) {
    return common::Unavailable("worker " + std::to_string(index) + " (pid " +
                               std::to_string(worker.pid) + ") died mid-call");
  }
  return response;
}

bool WorkerProcessPool::Alive(int index) {
  FOCUS_CHECK(index >= 0 && index < size());
  Worker& worker = workers_[index];
  if (worker.reaped) {
    return false;
  }
  const pid_t r = ::waitpid(worker.pid, nullptr, WNOHANG);
  if (r == worker.pid) {
    worker.reaped = true;
    return false;
  }
  return r == 0;
}

void WorkerProcessPool::Kill(int index) {
  FOCUS_CHECK(index >= 0 && index < size());
  Worker& worker = workers_[index];
  if (worker.reaped) {
    return;
  }
  ::kill(worker.pid, SIGKILL);
  ::waitpid(worker.pid, nullptr, 0);
  worker.reaped = true;
}

pid_t WorkerProcessPool::worker_pid(int index) const {
  FOCUS_CHECK(index >= 0 && index < size());
  return workers_[index].pid;
}

void WorkerProcessPool::Shutdown() {
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);  // Child sees EOF and _exit(0)s.
      worker.fd = -1;
    }
  }
  for (Worker& worker : workers_) {
    if (!worker.reaped && worker.pid > 0) {
      ::waitpid(worker.pid, nullptr, 0);
      worker.reaped = true;
    }
  }
  workers_.clear();
}

}  // namespace focus::runtime
