#include "src/common/fault_injection.h"

#include <atomic>

namespace focus::common {
namespace {

std::atomic<FaultPlan*> g_active_plan{nullptr};

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultPlan& FaultPlan::FireOnHit(const std::string& site, int64_t hit) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteRule& rule = StateFor(site).rule;
  rule.fire_on_hit = hit;
  rule.sticky = false;
  return *this;
}

FaultPlan& FaultPlan::FireAlwaysFrom(const std::string& site, int64_t hit) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteRule& rule = StateFor(site).rule;
  rule.fire_on_hit = hit;
  rule.sticky = true;
  return *this;
}

FaultPlan& FaultPlan::FireWithProbability(const std::string& site, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteRule& rule = StateFor(site).rule;
  rule.probability = p;
  return *this;
}

bool FaultPlan::ShouldFail(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  // Unmentioned sites never fire, but their hits are still counted: a sweep test
  // arms an empty plan, runs once to learn how often each site is reached, then
  // re-runs with FireOnHit(site, n) for every n up to that count.
  SiteState& state = StateFor(site);
  ++state.hits;
  bool fire = false;
  SiteRule& rule = state.rule;
  if (rule.fire_on_hit > 0) {
    fire = rule.sticky ? state.hits >= rule.fire_on_hit : state.hits == rule.fire_on_hit;
  }
  if (!fire && rule.probability > 0.0) {
    if (!rule.rng_seeded) {
      rule.rng = Pcg32(DeriveSeed(seed_, HashString(site)));
      rule.rng_seeded = true;
    }
    fire = rule.rng.NextBool(rule.probability);
  }
  if (fire) ++state.fires;
  return fire;
}

int64_t FaultPlan::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultPlan::FireCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

int64_t FaultPlan::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.fires;
  return total;
}

FaultPlan::SiteState& FaultPlan::StateFor(const std::string& site) {
  return sites_[site];  // Default-constructed on first mention.
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan* plan)
    : previous_(g_active_plan.exchange(plan, std::memory_order_release)) {}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_active_plan.store(previous_, std::memory_order_release);
}

bool FaultPoint(const char* site) {
  FaultPlan* plan = g_active_plan.load(std::memory_order_relaxed);
  if (plan == nullptr) return false;
  return plan->ShouldFail(site);
}

FaultPlan* ActiveFaultPlan() { return g_active_plan.load(std::memory_order_relaxed); }

}  // namespace focus::common
