#include "src/cluster/cluster_codec.h"

namespace focus::cluster {

void EncodeFeatureVec(storage::Encoder& enc, const common::FeatureVec& v) {
  enc.PutVarint(v.size());
  for (float x : v) {
    enc.PutFloat(x);
  }
}

bool DecodeFeatureVec(storage::Decoder& dec, common::FeatureVec* v) {
  uint64_t n = 0;
  // Divide instead of multiplying: n * sizeof(float) can wrap for a corrupt
  // length, and the guard exists precisely to reject those before resize.
  if (!dec.GetVarint(&n) || n > dec.remaining() / sizeof(float)) {
    return false;
  }
  v->resize(static_cast<size_t>(n));
  for (float& x : *v) {
    if (!dec.GetFloat(&x)) {
      return false;
    }
  }
  return true;
}

void EncodeDetection(storage::Encoder& enc, const video::Detection& d) {
  enc.PutSignedVarint(d.frame);
  enc.PutSignedVarint(d.object_id);
  enc.PutFloat(d.bbox.x);
  enc.PutFloat(d.bbox.y);
  enc.PutFloat(d.bbox.w);
  enc.PutFloat(d.bbox.h);
  enc.PutU8(d.pixel_diff_suppressed ? 1 : 0);
  enc.PutU8(d.first_observation ? 1 : 0);
  enc.PutSignedVarint(d.true_class);
  EncodeFeatureVec(enc, d.appearance);
}

bool DecodeDetection(storage::Decoder& dec, video::Detection* d) {
  int64_t frame = 0;
  int64_t object = 0;
  uint8_t suppressed = 0;
  uint8_t first = 0;
  int64_t true_class = 0;
  if (!dec.GetSignedVarint(&frame) || !dec.GetSignedVarint(&object) ||
      !dec.GetFloat(&d->bbox.x) || !dec.GetFloat(&d->bbox.y) || !dec.GetFloat(&d->bbox.w) ||
      !dec.GetFloat(&d->bbox.h) || !dec.GetU8(&suppressed) || !dec.GetU8(&first) ||
      !dec.GetSignedVarint(&true_class) || !DecodeFeatureVec(dec, &d->appearance)) {
    return false;
  }
  d->frame = frame;
  d->object_id = object;
  d->pixel_diff_suppressed = suppressed != 0;
  d->first_observation = first != 0;
  d->true_class = static_cast<common::ClassId>(true_class);
  return true;
}

}  // namespace focus::cluster
