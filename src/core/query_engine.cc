#include "src/core/query_engine.h"

#include <algorithm>

namespace focus::core {

std::vector<std::pair<common::FrameIndex, common::FrameIndex>> MergeFrameRuns(
    std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs) {
  if (runs.empty()) {
    return runs;
  }
  std::sort(runs.begin(), runs.end());
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> merged;
  merged.push_back(runs.front());
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].first <= merged.back().second + 1) {
      merged.back().second = std::max(merged.back().second, runs[i].second);
    } else {
      merged.push_back(runs[i]);
    }
  }
  return merged;
}

QueryEngine::QueryEngine(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn,
                         const cnn::Cnn* gt_cnn)
    : index_(index), ingest_cnn_(ingest_cnn), gt_cnn_(gt_cnn) {}

QueryResult QueryEngine::Query(common::ClassId cls, int kx, common::TimeRange range,
                               double fps) const {
  QueryResult result;
  result.queried = cls;

  // QT1/QT2: map the queried class into the ingest model's label space (a class the
  // specialized model was not trained on lives under OTHER, §4.3) and pull the
  // posting list.
  const common::ClassId lookup = ingest_cnn_->MapTrueLabel(cls);
  const std::vector<int64_t>& candidates = index_->ClustersForClass(lookup);

  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs;
  for (int64_t id : candidates) {
    const index::ClusterEntry& entry = index_->cluster(id);
    if (kx > 0 && !entry.MatchesWithin(lookup, kx)) {
      continue;
    }
    // QT3: GT-CNN on the centroid object.
    ++result.centroids_classified;
    result.gpu_millis += gt_cnn_->inference_cost_millis();
    if (gt_cnn_->Top1(entry.representative) != cls) {
      continue;
    }
    // QT4: the whole cluster inherits the centroid's label.
    ++result.clusters_matched;
    for (const cluster::MemberRun& run : entry.members) {
      common::FrameIndex first = run.first_frame;
      common::FrameIndex last = run.last_frame;
      if (range.begin_sec > 0.0 || range.end_sec >= 0.0) {
        // Clip to the queried time range.
        while (first <= last && !range.ContainsFrame(first, fps)) {
          ++first;
        }
        while (last >= first && !range.ContainsFrame(last, fps)) {
          --last;
        }
        if (first > last) {
          continue;
        }
      }
      runs.emplace_back(first, last);
    }
  }
  result.frame_runs = MergeFrameRuns(std::move(runs));
  for (const auto& [first, last] : result.frame_runs) {
    result.frames_returned += last - first + 1;
  }
  return result;
}

}  // namespace focus::core
