// Bounded retry with exponential backoff in virtual time.
//
// The simulator has no wall clock to wait on: backoff is *accounted*, not slept.
// RetryWithBackoff runs the operation up to |max_attempts| times, accumulating the
// virtual milliseconds a production system would have spent waiting between attempts
// into RetryStats::backoff_millis. Callers that track virtual time (the GPU cluster,
// the ingest cost model) add that to their clocks; callers that don't still get
// deterministic, schedule-independent retry behavior.
//
// Retry is only attempted for codes IsRetryable() accepts (Unavailable, Timeout, Io);
// anything else — InvalidArgument, DataLoss — fails fast on the first occurrence.
#ifndef FOCUS_SRC_COMMON_RETRY_H_
#define FOCUS_SRC_COMMON_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "src/common/result.h"

namespace focus::common {

struct RetryPolicy {
  // Total attempts, including the first (so 3 = one try + two retries).
  int max_attempts = 3;
  // Virtual backoff before the first retry; doubles (by |backoff_multiplier|) per
  // subsequent retry, capped at |max_backoff_millis|.
  double initial_backoff_millis = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_millis = 1000.0;
};

struct RetryStats {
  int attempts = 0;           // Attempts actually made.
  double backoff_millis = 0;  // Total virtual time spent backing off.
};

// Runs |fn| (signature: Result<T>()) under |policy|. Returns the first success, or
// the last error once attempts are exhausted / the error is not retryable. |stats|
// may be null.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Fn&& fn, RetryStats* stats = nullptr)
    -> decltype(fn()) {
  double backoff = policy.initial_backoff_millis;
  const int max_attempts = std::max(1, policy.max_attempts);
  int attempt = 0;
  while (true) {
    ++attempt;
    auto result = fn();
    if (stats != nullptr) stats->attempts = attempt;
    if (result.ok()) return result;
    if (attempt >= max_attempts || !IsRetryable(result.error().code)) return result;
    if (stats != nullptr) stats->backoff_millis += backoff;
    backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_millis);
  }
}

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_RETRY_H_
