file(REMOVE_RECURSE
  "libfocus_bench_util.a"
)
