#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace focus::common {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) {
      return 0.0;
    }
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<CdfPoint> TopHeavyCdf(const std::map<int, uint64_t>& weight_by_key, size_t total_key_space) {
  std::vector<uint64_t> weights;
  weights.reserve(weight_by_key.size());
  uint64_t total = 0;
  for (const auto& [key, w] : weight_by_key) {
    weights.push_back(w);
    total += w;
  }
  std::sort(weights.begin(), weights.end(), std::greater<uint64_t>());
  std::vector<CdfPoint> cdf;
  cdf.reserve(weights.size());
  if (total == 0 || total_key_space == 0) {
    return cdf;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    CdfPoint p;
    p.key_fraction = static_cast<double>(i + 1) / static_cast<double>(total_key_space);
    p.weight_fraction = static_cast<double>(cumulative) / static_cast<double>(total);
    cdf.push_back(p);
  }
  return cdf;
}

double FractionOfKeysCovering(const std::map<int, uint64_t>& weight_by_key, size_t total_key_space,
                              double target_weight_fraction) {
  std::vector<CdfPoint> cdf = TopHeavyCdf(weight_by_key, total_key_space);
  for (const CdfPoint& p : cdf) {
    if (p.weight_fraction >= target_weight_fraction) {
      return p.key_fraction;
    }
  }
  return cdf.empty() ? 0.0 : cdf.back().key_fraction;
}

double JaccardIndex(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace focus::common
