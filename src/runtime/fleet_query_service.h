// The persistent fleet query runtime: one long-lived service per serving
// process, shared by every query against every camera (docs/fleet_serving.md).
//
// QueryService (query_service.h) batches the work of one admission and then
// forgets; this service is the fleet-scale refactor of that path, adding the
// three things a multi-tenant deployment needs:
//
//  - A global verdict cache keyed on (camera, epoch, centroid id): a GT-CNN
//    verdict is a pure function of the centroid object, so once any query paid
//    for it, every later query against the same epoch gets it free — across
//    requests, tenants, sessions, and threads. Bounded capacity with LRU
//    eviction; entries of a superseded epoch are retired eagerly the first
//    time a newer epoch of that camera is seen (they can only be re-requested
//    by a pinned stale snapshot, which simply re-pays).
//  - Per-tenant admission queues with weighted-fair (deficit round-robin)
//    dequeue: a burst of analyst queries drains in rounds interleaved with
//    dashboard traffic instead of ahead of it, so no tenant's latency is a
//    function of another tenant's backlog depth.
//  - A cost-aware packer that pools work items across cameras AND queries:
//    items group by cnn::ModelPackKey (never mixing models in one launch —
//    launches run one architecture), per-camera instances of the same
//    architecture share launches, and launch submission is ordered by
//    cnn::BatchCostModel estimates (heaviest first onto the least-loaded
//    device) so heterogeneous GT-CNNs pack by cost, not by count.
//
// Identity contract: results are byte-identical to per-camera sequential
// execution (core::FocusFleet::ExecuteFederatedSequential) no matter how work
// was packed, what the cache held, or in which order tenants were admitted.
// Caching and packing change when and at what amortized cost a verdict is
// produced — never its value. QueryResult::gpu_millis stays the
// execution-independent per-centroid figure; the launch-amortized cost the
// cluster actually charged — where cache hits and fuller batches show up — is
// in stats().
#ifndef FOCUS_SRC_RUNTIME_FLEET_QUERY_SERVICE_H_
#define FOCUS_SRC_RUNTIME_FLEET_QUERY_SERVICE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/retry.h"
#include "src/core/fleet.h"
#include "src/core/query_engine.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/metrics.h"
#include "src/runtime/query_service.h"

namespace focus::runtime {

struct FleetQueryServiceOptions {
  int num_gpus = 10;
  int batch_size = 32;
  // Verdict cache capacity in entries. The cache never grows past this; LRU
  // eviction and epoch retirement keep it bounded under any query mix.
  size_t verdict_cache_capacity = 1 << 20;
  common::RetryPolicy launch_retry;
  // Per-tenant, per-round admission cost budget in estimated GPU milliseconds
  // (Σ work items × the GT-CNN's batch-size-1 cost estimate). A tenant's round
  // admits entries while the budget lasts; 0 disables budgeting (admission is
  // limited by DRR credit alone — the historical behavior).
  double round_cost_budget_millis = 0.0;
  // With a budget set, a plan whose cost alone exceeds a whole round's budget
  // can never be admitted in one piece. When true, the packer splits such an
  // oversized plan into budget-sized slices executed across consecutive
  // rounds — one DRR credit per slice, the entry holding its queue-front slot
  // until the final slice, verdicts accumulated per unit and resolved against
  // the full plan (byte-identical to unsplit execution: a verdict is a pure
  // function of its centroid). When false, the oversized entry is skipped
  // every round and starves — observable via QueueDepths(), returned as a
  // typed error from ExecuteFederated.
  bool split_oversized_plans = true;
};

// One request to the fleet service. |camera| is the verdict-cache identity and
// must name the same target across requests (it is the camera's registry name
// in a served deployment); |query| carries the target and the query itself.
struct FleetQueryRequest {
  std::string camera;
  std::string tenant = "default";
  QueryRequest query;
};

// Cumulative (service-lifetime) accounting. All counters only grow; a caller
// measuring one admission diffs two readings.
struct FleetServiceStats {
  int64_t requests = 0;
  int64_t work_items = 0;    // Plan items across all admissions (pre-dedup).
  int64_t cache_hits = 0;    // Items answered from the global verdict cache.
  int64_t cache_misses = 0;  // Items that had to be classified fresh.
  int64_t dedup_hits = 0;    // In-admission duplicates of another item.
  int64_t launches = 0;
  common::GpuMillis gpu_millis = 0.0;  // Launch-amortized cost charged to the cluster.
  int64_t launch_retries = 0;
  int64_t launches_failed = 0;
  common::GpuMillis wasted_gpu_millis = 0.0;
  int64_t plans_split = 0;    // Oversized entries executed as budget slices.
  int64_t cache_evicted = 0;  // Capacity (LRU) evictions.
  int64_t cache_retired = 0;  // Epoch-retirement evictions.
  size_t cache_size = 0;      // Current entries (bounded by capacity).

  double CacheHitRate() const {
    const int64_t looked_up = cache_hits + cache_misses;
    return looked_up == 0 ? 0.0 : static_cast<double>(cache_hits) / looked_up;
  }
};

// A federated execution: the merged fleet result plus the virtual wall-clock
// of the slowest camera. |error| is set if any camera's launches stayed failed
// past the retry policy (the merged result is then not authoritative).
struct FederatedExecution {
  core::FleetQueryResult result;
  common::GpuMillis submit_millis = 0.0;
  common::GpuMillis finish_millis = 0.0;
  std::optional<common::Error> error;

  common::GpuMillis latency_millis() const { return finish_millis - submit_millis; }
};

class FleetQueryService {
 public:
  explicit FleetQueryService(FleetQueryServiceOptions options = {},
                             MetricsRegistry* metrics = nullptr);

  FleetQueryService(const FleetQueryService&) = delete;
  FleetQueryService& operator=(const FleetQueryService&) = delete;

  // Executes one request through the shared cache/cluster. Thread-safe:
  // concurrent callers serialize on the service and see each other's verdicts.
  QueryExecution Execute(const FleetQueryRequest& request);

  // Executes a batch admitted together: work is pooled, deduplicated and
  // packed across all requests (and their cameras). Returns executions in
  // request order.
  std::vector<QueryExecution> ExecuteConcurrently(const std::vector<FleetQueryRequest>& requests);

  // Executes a federated fan-out (core::FocusFleet::PlanFederated) through the
  // tenant admission queues: the plan is enqueued under |tenant| as ONE entry
  // and drained in weighted-fair rounds against whatever other tenants have
  // queued — a federated burst from one tenant interleaves with (never jumps
  // ahead of) other tenants' backlogs. Within its round the fan-out still
  // executes as one pooled admission (all cameras share dedup, cache, and
  // launches) and the merged result is byte-identical to
  // ExecuteFederatedSequential on the same plan. Other entries drained by the
  // same call are buffered for the next DrainAdmitted()/TakeFederated().
  FederatedExecution ExecuteFederated(const core::FederatedPlan& plan,
                                      const std::string& tenant = "default");

  // QuerySession integration (core::QuerySession::SetClassifier): classifies
  // |plan|'s work items for |stream| (registered as |camera|) through the
  // shared cache, so concurrent sessions over one stream never re-pay a
  // centroid another session (or any past query) already paid. Returns top-1
  // verdicts in plan order; items whose launch stayed failed past the retry
  // policy read common::kInvalidClass (and are not cached).
  std::vector<common::ClassId> ClassifySessionPlan(const std::string& camera,
                                                   const core::FocusStream& stream,
                                                   const core::QueryPlan& plan);

  // --- Admission (weighted-fair tenant queues) ---

  // Sets |tenant|'s scheduling weight (default 1.0; must be > 0). A tenant
  // with weight w is admitted w requests per round (fractional weights
  // accumulate deficit credit across rounds).
  void SetTenantWeight(const std::string& tenant, double weight);

  // Enqueues under request.tenant; returns a ticket to match the execution in
  // DrainAdmitted()'s output. Nothing executes until a drain.
  uint64_t Enqueue(FleetQueryRequest request);

  // Enqueues a federated plan under |tenant| as one admission entry (one DRR
  // credit — a fan-out competes as a single request, however many cameras it
  // touches). The execution is retrieved with TakeFederated(ticket) after a
  // drain.
  uint64_t EnqueueFederated(core::FederatedPlan plan, const std::string& tenant = "default");

  // Drains every queue in weighted-fair rounds: each round admits up to
  // weight(t) entries per tenant (tenants in name order, FIFO within a
  // tenant) and executes the round as ONE pooled admission — federated
  // entries' cameras and single requests share dedup, cache, and launches —
  // so a later round's requests see earlier rounds' verdicts cached and
  // submit at the advanced cluster frontier. Returns single-request
  // (ticket, execution) pairs in completion order, including any buffered by
  // an earlier ExecuteFederated-triggered drain; federated executions are
  // claimed via TakeFederated.
  std::vector<std::pair<uint64_t, QueryExecution>> DrainAdmitted();

  // Claims the completed execution of a drained federated ticket (nullopt if
  // the ticket is unknown or still queued).
  std::optional<FederatedExecution> TakeFederated(uint64_t ticket);

  // Queue depth per tenant with queued work (empty map = nothing queued).
  std::map<std::string, size_t> QueueDepths() const;

  FleetServiceStats stats() const;
  const FleetQueryServiceOptions& options() const { return options_; }

 private:
  struct CacheKey {
    std::string camera;
    uint64_t epoch = 0;
    int64_t cluster_id = -1;

    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  using LruList = std::list<std::pair<CacheKey, common::ClassId>>;

  // The verdict cache is sharded into stripes keyed on hash(camera, centroid)
  // — epoch excluded, so all epochs of a centroid land in one stripe and
  // epoch retirement sweeps exactly one stripe per key. Each stripe has its
  // own mutex and LRU; the configured capacity is split exactly across
  // stripes (global size never exceeds it). Stripe locks are leaves: they are
  // taken one at a time, with or without |mu_|, which is what lets the
  // fully-cached fast path in ExecuteConcurrently answer without ever
  // touching the service-wide lock that concurrent HandleLine calls would
  // otherwise contend on.
  static constexpr size_t kCacheStripes = 16;
  struct CacheStripe {
    mutable std::mutex mu;
    LruList lru;  // Front = most recently used.
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> map;
    size_t capacity = 0;
  };

  // One planned target inside an admission (a request, a federated camera, or
  // a session expansion step).
  struct Unit {
    std::string camera;
    uint64_t epoch = 0;
    core::QueryPlan plan;
    const cnn::Cnn* gt = nullptr;
    // Resolver target (exactly one set; both null for session units, which
    // consume raw verdicts instead of a resolved QueryResult).
    const core::FocusStream* stream = nullptr;
    std::shared_ptr<const core::LiveSnapshot> snapshot;
    const cnn::Cnn* ingest_cnn = nullptr;
  };
  // Classification outcome of one unit: verdicts parallel to plan.work.
  struct UnitOutcome {
    std::vector<common::ClassId> verdicts;
    common::GpuMillis finish_millis = 0.0;
    bool failed = false;
  };

  // Cross-round cursor for an oversized entry executed as budget slices.
  // Owned via shared_ptr so the state stays pointer-stable while the entry
  // sits (and moves) inside its tenant deque between rounds.
  struct SplitProgress {
    std::vector<Unit> units;          // Full materialized plan, in unit order.
    std::vector<UnitOutcome> partial; // Accumulated verdicts, parallel units.
    size_t next_unit = 0;             // First unit with unexecuted items.
    size_t next_item = 0;             // First unexecuted item in that unit.
    common::GpuMillis first_submit = 0.0;  // Submit instant of slice one.
  };

  // One queued admission entry: a single-camera request or a federated plan.
  struct PendingEntry {
    std::optional<FleetQueryRequest> request;
    std::optional<core::FederatedPlan> federated;
    // Non-null once the packer has started slicing this entry.
    std::shared_ptr<SplitProgress> progress;
  };

  static Unit UnitFromRequest(const FleetQueryRequest& request);
  static Unit UnitFromFederated(const core::FederatedCameraPlan& camera);

  // The shared execution core. Requires lock held. Classifies every unit's
  // plan through cache -> dedup -> model-grouped cost-ordered launches, at the
  // cluster's current frontier. |submit| receives the admission instant.
  std::vector<UnitOutcome> ExecuteUnitsLocked(const std::vector<Unit>& units,
                                              common::GpuMillis* submit);
  // Resolves one unit's outcome into the caller-facing execution.
  QueryExecution ResolveUnit(const Unit& unit, const UnitOutcome& outcome,
                             common::GpuMillis submit) const;

  // Striped-cache helpers (each takes its stripe's lock internally; safe with
  // or without |mu_|). Lookup refreshes LRU position. Insert and RetireEpochs
  // additionally require |mu_| (they mutate stats_ counters).
  size_t StripeIndexOf(const CacheKey& key) const;
  std::optional<common::ClassId> CacheLookup(const CacheKey& key);
  void CacheInsert(CacheKey key, common::ClassId top1);
  void RetireEpochs(const std::string& camera, uint64_t newest_epoch);
  size_t CacheSize() const;

  // Queueing/drain internals (require |mu_|).
  uint64_t EnqueueLocked(const std::string& tenant, PendingEntry entry);
  void DrainRoundsLocked();

  FleetQueryServiceOptions options_;
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  GpuCluster cluster_;
  FleetServiceStats stats_;

  std::array<CacheStripe, kCacheStripes> stripes_;
  size_t num_stripes_ = 1;
  std::unordered_map<std::string, uint64_t> newest_epoch_;

  // Admission state (guarded by |mu_|). Completed-but-unclaimed executions
  // from a drain triggered by another entry's ExecuteFederated.
  std::map<std::string, double> tenant_weights_;
  std::map<std::string, std::deque<std::pair<uint64_t, PendingEntry>>> queues_;
  uint64_t next_ticket_ = 1;
  std::vector<std::pair<uint64_t, QueryExecution>> completed_;
  std::map<uint64_t, FederatedExecution> completed_federated_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_FLEET_QUERY_SERVICE_H_
