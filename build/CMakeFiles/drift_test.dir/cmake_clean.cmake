file(REMOVE_RECURSE
  "CMakeFiles/drift_test.dir/tests/drift_test.cc.o"
  "CMakeFiles/drift_test.dir/tests/drift_test.cc.o.d"
  "drift_test"
  "drift_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
