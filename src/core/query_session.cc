#include "src/core/query_session.h"

#include <algorithm>

namespace focus::core {

namespace {

// Subtracts |existing| (sorted, disjoint) from |candidate|, appending the parts of
// |candidate| not covered to |out|. Counting new frames exactly keeps batch outputs
// disjoint across expansions even when a cluster's members overlap earlier results.
void AppendUncovered(std::pair<common::FrameIndex, common::FrameIndex> candidate,
                     const std::vector<std::pair<common::FrameIndex, common::FrameIndex>>&
                         existing,
                     std::vector<std::pair<common::FrameIndex, common::FrameIndex>>* out) {
  common::FrameIndex cursor = candidate.first;
  // First covered run that could overlap: lower_bound on run end.
  auto it = std::lower_bound(existing.begin(), existing.end(), cursor,
                             [](const auto& run, common::FrameIndex frame) {
                               return run.second < frame;
                             });
  while (cursor <= candidate.second) {
    if (it == existing.end() || it->first > candidate.second) {
      out->emplace_back(cursor, candidate.second);
      return;
    }
    if (it->first > cursor) {
      out->emplace_back(cursor, it->first - 1);
    }
    cursor = std::max(cursor, it->second + 1);
    ++it;
  }
}

}  // namespace

QuerySession::QuerySession(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn,
                           const cnn::Cnn* gt_cnn, common::ClassId cls,
                           common::TimeRange range, double fps)
    : index_(index),
      ingest_cnn_(ingest_cnn),
      gt_cnn_(gt_cnn),
      cls_(cls),
      lookup_(ingest_cnn->MapTrueLabel(cls)),
      range_(range),
      fps_(fps) {}

QueryBatch QuerySession::ExpandTo(int kx) {
  QueryBatch batch;
  batch.kx = std::max(kx, current_kx_);
  if (kx <= current_kx_) {
    return batch;
  }

  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> new_runs;
  for (int64_t id : index_->ClustersForClass(lookup_)) {
    const index::ClusterEntry& entry = index_->cluster(id);
    // Newly matching at this Kx: within kx but not within the previous cursor.
    if (!entry.MatchesWithin(lookup_, kx)) {
      continue;
    }
    if (current_kx_ > 0 && entry.MatchesWithin(lookup_, current_kx_)) {
      continue;  // Already handled by an earlier batch.
    }
    auto [it, inserted] = verdicts_.try_emplace(id, false);
    if (inserted) {
      // First time this cluster's centroid is needed: pay the GT-CNN inference.
      ++batch.centroids_classified;
      batch.gpu_millis += gt_cnn_->inference_cost_millis();
      it->second = gt_cnn_->Top1(entry.representative) == cls_;
    }
    if (!it->second) {
      continue;
    }
    for (const cluster::MemberRun& run : entry.members) {
      common::FrameIndex first = run.first_frame;
      common::FrameIndex last = run.last_frame;
      if (range_.begin_sec > 0.0 || range_.end_sec >= 0.0) {
        while (first <= last && !range_.ContainsFrame(first, fps_)) {
          ++first;
        }
        while (last >= first && !range_.ContainsFrame(last, fps_)) {
          --last;
        }
        if (first > last) {
          continue;
        }
      }
      AppendUncovered({first, last}, cumulative_runs_, &new_runs);
    }
  }

  batch.new_frame_runs = MergeFrameRuns(std::move(new_runs));
  for (const auto& [first, last] : batch.new_frame_runs) {
    batch.new_frames += last - first + 1;
  }

  // Fold the batch into the cumulative view.
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> all = cumulative_runs_;
  all.insert(all.end(), batch.new_frame_runs.begin(), batch.new_frame_runs.end());
  cumulative_runs_ = MergeFrameRuns(std::move(all));
  total_frames_ += batch.new_frames;
  total_centroids_ += batch.centroids_classified;
  total_gpu_millis_ += batch.gpu_millis;
  current_kx_ = kx;
  return batch;
}

}  // namespace focus::core
