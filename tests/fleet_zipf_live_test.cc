// S3 of the fleet serving runtime (docs/fleet_serving.md): Zipf-skewed query
// traffic against a live camera whose ingest keeps publishing new epoch
// snapshots. Asserts the service-level serving properties under skew + churn:
//
//   - within one epoch, the cache hit-rate of repeated traffic passes grows
//     monotonically (a fully repeated pass answers entirely from cache, paying
//     zero additional GT-CNN time);
//   - the verdict cache stays bounded across epoch churn: superseded epochs'
//     entries are retired eagerly, and the size never exceeds capacity;
//   - every execution — whatever the cache held, however the traffic was
//     pooled — is byte-identical to a cold single-tenant run against the same
//     pinned snapshot.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/runtime/fleet_query_service.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {
namespace {

TEST(FleetZipfLiveTest, SkewedTrafficOverAdvancingEpochs) {
  video::ClassCatalog catalog(17);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, /*duration_sec=*/30.0, /*fps=*/30.0, 7);

  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  // Ingest once, collecting every published epoch (the advancing live stream).
  core::IngestOptions options;
  options.finalize_every_frames = 60;
  std::vector<std::shared_ptr<const core::LiveSnapshot>> snapshots;
  options.snapshot_sink = [&](std::shared_ptr<const core::LiveSnapshot> snap) {
    snapshots.push_back(std::move(snap));
  };
  core::RunIngest(run, cheap, params, options);
  ASSERT_GE(snapshots.size(), 3u) << "cadence produced too few epochs to churn";

  const std::vector<common::ClassId>& classes = run.present_classes();
  ASSERT_FALSE(classes.empty());
  // §2.2.2 skew: a few head classes dominate the traffic.
  const common::ZipfDistribution zipf(classes.size(), 1.2);
  common::Pcg32 rng(0xD15C0);

  FleetQueryService service;
  constexpr int kBatch = 8;   // Concurrent requests per traffic pass.
  constexpr int kPasses = 3;  // Identical passes per epoch.

  for (const auto& snap : snapshots) {
    SCOPED_TRACE("epoch=" + std::to_string(snap->epoch));
    // One Zipf-drawn batch per epoch, replayed for every pass: passes after
    // the first re-ask exactly what the cache just absorbed.
    std::vector<FleetQueryRequest> batch;
    for (int i = 0; i < kBatch; ++i) {
      FleetQueryRequest request;
      request.camera = "live";
      request.tenant = i % 2 == 0 ? "dashboard" : "analyst";
      request.query.cls = classes[zipf.Sample(rng)];
      request.query.snapshot = snap;
      request.query.ingest_cnn = &cheap;
      request.query.gt_cnn = &gt;
      request.query.fps = run.fps();
      batch.push_back(std::move(request));
    }

    double last_rate = -1.0;
    for (int pass = 0; pass < kPasses; ++pass) {
      SCOPED_TRACE("pass=" + std::to_string(pass));
      const FleetServiceStats before = service.stats();
      const auto execs = service.ExecuteConcurrently(batch);
      const FleetServiceStats after = service.stats();
      ASSERT_EQ(execs.size(), batch.size());

      // Identity: every result matches a cold single-tenant run against the
      // same pinned epoch, regardless of cache state and pooling.
      for (size_t i = 0; i < execs.size(); ++i) {
        ASSERT_FALSE(execs[i].error.has_value());
        const core::QueryEngine engine(snap.get(), &cheap, &gt);
        const core::QueryResult cold =
            engine.Query(batch[i].query.cls, batch[i].query.kx, batch[i].query.range,
                         run.fps());
        EXPECT_EQ(execs[i].result.frame_runs, cold.frame_runs);
        EXPECT_EQ(execs[i].result.centroids_classified, cold.centroids_classified);
        EXPECT_EQ(execs[i].result.clusters_matched, cold.clusters_matched);
        EXPECT_EQ(execs[i].result.frames_returned, cold.frames_returned);
        EXPECT_DOUBLE_EQ(execs[i].result.gpu_millis, cold.gpu_millis);
      }

      // Within-epoch hit-rate grows monotonically pass over pass.
      const int64_t hits = after.cache_hits - before.cache_hits;
      const int64_t misses = after.cache_misses - before.cache_misses;
      if (hits + misses > 0) {
        const double rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
        EXPECT_GE(rate, last_rate);
        last_rate = rate;
      }
      if (pass > 0) {
        // A repeated pass is fully cached: zero fresh work, zero GT-CNN time.
        EXPECT_EQ(misses, 0);
        EXPECT_EQ(after.launches, before.launches);
        EXPECT_DOUBLE_EQ(after.gpu_millis, before.gpu_millis);
      }
      EXPECT_LE(after.cache_size, service.options().verdict_cache_capacity);
    }
  }

  // Epoch churn retired superseded entries; what's left is bounded by the
  // final epoch's own working set, not the accumulated history.
  const FleetServiceStats stats = service.stats();
  EXPECT_GT(stats.cache_retired, 0);
  EXPECT_LE(stats.cache_size, service.options().verdict_cache_capacity);
}

}  // namespace
}  // namespace focus::runtime
