// CNN compression transforms (§2.1, §4.1).
//
// Compression derives cheaper architectures from a base model by removing
// convolutional layers and shrinking the input resolution, trading accuracy for cost.
// These are descriptor-level transforms: the resulting ModelDesc gets its cost from
// src/cnn/cost_model.h and its (lower) accuracy from src/cnn/accuracy_model.h, the
// same way a retrained compressed network would behave.
#ifndef FOCUS_SRC_CNN_COMPRESSION_H_
#define FOCUS_SRC_CNN_COMPRESSION_H_

#include <vector>

#include "src/cnn/model_desc.h"

namespace focus::cnn {

// Removes |count| convolutional layers (floors at 4 layers).
ModelDesc RemoveLayers(const ModelDesc& base, int count);

// Rescales the input image to |input_px| per side (floors at 28 px).
ModelDesc RescaleInput(const ModelDesc& base, int input_px);

// Applies both transforms and renames the descriptor canonically
// ("<family><layers>_px<input>").
ModelDesc Compress(const ModelDesc& base, int remove_layer_count, int input_px);

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_COMPRESSION_H_
