// Zipf (power-law) sampling over a finite rank space.
//
// Real video streams exhibit strongly skewed class-frequency distributions (§2.2.2 of
// the paper: 3-10% of classes cover >=95% of objects). The synthetic video generator
// draws object classes from a Zipf distribution whose exponent controls that skew.
#ifndef FOCUS_SRC_COMMON_ZIPF_H_
#define FOCUS_SRC_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace focus::common {

// Precomputed-CDF Zipf sampler: P(rank = k) proportional to 1 / (k+1)^exponent for
// k in [0, n). Sampling is O(log n) by binary search.
class ZipfDistribution {
 public:
  // |n| must be >= 1; |exponent| >= 0 (0 degenerates to uniform).
  ZipfDistribution(size_t n, double exponent);

  // Draws a rank in [0, n).
  size_t Sample(Pcg32& rng) const;

  // Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_ZIPF_H_
