// News monitor: continuous analytics over news channels. News streams have a much
// broader class mix than fixed cameras (§2.2.2), so this example shows (a) how the
// specialized model's OTHER class handles queries for classes outside the Ls most
// frequent ones, and (b) how per-class query cost tracks class popularity.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/video/stream_generator.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);

  video::ClassCatalog catalog(42);
  video::StreamProfile profile;
  if (!video::FindProfile("cnn", &profile)) {
    return 1;
  }
  video::StreamRun run(&catalog, profile, 20 * 60.0, 30.0, 2024);

  std::printf("Indexing 20 minutes of the '%s' news channel...\n", profile.name.c_str());
  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::printf("build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  core::FocusStream& focus = **focus_or;
  const cnn::ModelDesc& model = focus.chosen_params().model;
  std::printf("Specialized model covers Ls=%zu classes (+OTHER), %d layers @ %dpx\n\n",
              model.classes.size(), model.layers, model.input_px);

  // Ground truth for reporting.
  cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  core::AccuracyEvaluator evaluator(&truth, run.fps());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 8);

  std::printf("%-16s %10s %10s %9s %8s %8s %9s\n", "Class", "Truth-seg", "Centroids",
              "Frames", "Prec", "Recall", "GPU(s)");
  for (common::ClassId cls : dominant) {
    core::QueryResult qr = focus.Query(cls);
    core::PrecisionRecall pr = evaluator.Evaluate(cls, qr);
    std::printf("%-16s %10lld %10lld %9lld %8.3f %8.3f %9.2f\n", catalog.Name(cls).c_str(),
                static_cast<long long>(pr.truth_segments),
                static_cast<long long>(qr.centroids_classified),
                static_cast<long long>(qr.frames_returned), pr.precision, pr.recall,
                qr.gpu_millis / 1000.0);
  }

  // Query a class that is NOT among the specialized model's Ls classes: Focus routes
  // it through the OTHER postings (§4.3 "OTHER class").
  common::ClassId rare = common::kInvalidClass;
  for (common::ClassId cls : run.present_classes()) {
    bool in_model = std::find(model.classes.begin(), model.classes.end(), cls) !=
                    model.classes.end();
    if (!in_model && !truth.SegmentsWithClass(cls).empty()) {
      rare = cls;
      break;
    }
  }
  if (rare != common::kInvalidClass) {
    core::QueryResult qr = focus.Query(rare);
    core::PrecisionRecall pr = evaluator.Evaluate(rare, qr);
    std::printf("\nOTHER-class query '%s': %lld centroids verified, %lld frames, "
                "P=%.3f R=%.3f (%.2f s GPU)\n",
                catalog.Name(rare).c_str(), static_cast<long long>(qr.centroids_classified),
                static_cast<long long>(qr.frames_returned), pr.precision, pr.recall,
                qr.gpu_millis / 1000.0);
    std::printf("Querying rare classes is costlier per result (all OTHER clusters get\n"
                "verified) but still avoids touching the %lld raw detections.\n",
                static_cast<long long>(focus.ingest().detections));
  }
  return 0;
}
