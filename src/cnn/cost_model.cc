#include "src/cnn/cost_model.h"

namespace focus::cnn {

double RelativeCost(const ModelDesc& desc) {
  double depth = static_cast<double>(desc.layers) / kGtCnnLayers;
  double res = static_cast<double>(desc.input_px) / kGtCnnInputPx;
  return kFixedOverheadShare + (1.0 - kFixedOverheadShare) * depth * res * res;
}

common::GpuMillis InferenceCostMillis(const ModelDesc& desc) {
  return RelativeCost(desc) * kGtCnnUnitMillis;
}

double CheapnessFactor(const ModelDesc& desc) { return 1.0 / RelativeCost(desc); }

}  // namespace focus::cnn
