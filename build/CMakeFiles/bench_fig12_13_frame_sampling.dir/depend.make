# Empty dependencies file for bench_fig12_13_frame_sampling.
# This may be replaced when dependencies are built.
