// Multi-camera deployments: building and querying many Focus streams as one fleet.
//
// The paper's query model is "find all frames with objects of class X", optionally
// "restricted to a subset of cameras and a time range" (§3). FocusFleet owns one
// FocusStream per camera and implements that cross-camera form: it fans the query out
// to the selected cameras, aggregates per-camera frame runs, and accounts the total
// GT-CNN work — the foundation for the investigation workflows in the examples
// ("which intersections saw a truck between 2pm and 4pm?").
//
// Fleet-scale serving (docs/fleet_serving.md) builds on two extensions here:
//
//  - The registry carries deployment metadata (CameraMeta: region, tags) and can
//    hold *live* members — cameras whose ingest is still running — registered by
//    their snapshot slot instead of a finalized stream. Selection by name list,
//    region, or tag treats both kinds uniformly.
//  - PlanFederated() fans a query out into a FederatedPlan: one pinned per-camera
//    plan each (the finalized index, or the newest published epoch snapshot at
//    plan time), which any executor classifies and MergeFederatedResults() folds
//    back with per-camera provenance (epoch/watermark for live members).
//    ExecuteFederatedSequential() is the reference executor — one camera at a
//    time, one GT-CNN batch each — that defines the byte-identity oracle for the
//    packed/cached runtime::FleetQueryService.
#ifndef FOCUS_SRC_CORE_FLEET_H_
#define FOCUS_SRC_CORE_FLEET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/focus_stream.h"
#include "src/core/live_snapshot.h"
#include "src/video/stream_generator.h"

namespace focus::core {

// Deployment metadata attached to a registered camera.
struct CameraMeta {
  std::string region;
  std::vector<std::string> tags;

  bool HasTag(const std::string& tag) const;
};

// One camera's slice of a fleet query result. |epoch|/|watermark| carry the
// provenance of a live member's answer (which published snapshot it was
// resolved against); both stay 0 for a finalized camera.
struct CameraHits {
  std::string camera;
  QueryResult result;
  bool live = false;
  uint64_t epoch = 0;
  common::FrameIndex watermark = 0;
};

struct FleetQueryResult {
  common::ClassId queried = common::kInvalidClass;
  std::vector<CameraHits> hits;  // One entry per queried camera, in fleet order.
  int64_t total_frames = 0;
  int64_t total_centroids_classified = 0;
  common::GpuMillis total_gpu_millis = 0.0;

  // Cameras that returned at least one frame.
  std::vector<std::string> CamerasWithHits() const;
};

// Which cameras a federated query fans out to. Exactly one of the three
// narrowing forms may be set; all empty selects the whole fleet.
struct FederatedSelector {
  std::vector<std::string> cameras;  // Explicit names (must all exist).
  std::string region;                // Every camera whose meta.region matches.
  std::string tag;                   // Every camera carrying the tag.
};

// One camera's pinned slice of a federated fan-out. Exactly one of |stream|
// (finalized index) / |snapshot| (live epoch, pinned at plan time — the
// shared_ptr keeps its index entries alive through execution) is set.
struct FederatedCameraPlan {
  std::string camera;
  QueryPlan plan;
  const FocusStream* stream = nullptr;
  std::shared_ptr<const LiveSnapshot> snapshot;
  const cnn::Cnn* ingest_cnn = nullptr;  // Set with |snapshot|.
  const cnn::Cnn* gt_cnn = nullptr;      // Set with |snapshot|.
  double fps = 30.0;
  uint64_t epoch = 0;  // 0 for a finalized camera.
  common::FrameIndex watermark = 0;
};

// A fleet query fanned out into per-camera plans (selection order = fleet
// registration order). The plan is self-contained: every target is pinned, so
// executing it later — or twice — answers against the same indexes.
struct FederatedPlan {
  common::ClassId queried = common::kInvalidClass;
  int kx = -1;
  common::TimeRange range{};
  std::vector<FederatedCameraPlan> cameras;

  int64_t TotalWorkItems() const;
};

// Folds per-camera results (parallel to plan.cameras) into the fleet-level
// aggregate with per-camera provenance. Pure and deterministic: every executor
// that produces byte-identical per-camera QueryResults produces a byte-identical
// fleet result through this.
FleetQueryResult MergeFederatedResults(const FederatedPlan& plan,
                                       std::vector<QueryResult> per_camera);

class FocusFleet {
 public:
  FocusFleet() = default;

  FocusFleet(const FocusFleet&) = delete;
  FocusFleet& operator=(const FocusFleet&) = delete;

  // Builds and registers one camera: generates its recording, tunes and ingests it.
  // |catalog| must outlive the fleet. Camera names must be unique.
  common::Result<bool> AddCamera(const std::string& name, const video::ClassCatalog* catalog,
                                 const video::StreamProfile& profile, double duration_sec,
                                 double fps, uint64_t seed, const FocusOptions& options,
                                 CameraMeta meta = {});

  // Registers an externally built stream under |name|, taking ownership of both the
  // run and the stream (the stream must have been built against that run).
  common::Result<bool> AdoptCamera(const std::string& name,
                                   std::unique_ptr<video::StreamRun> run,
                                   std::unique_ptr<FocusStream> stream,
                                   CameraMeta meta = {});

  // Registers a *live* member: a camera whose ingest is still running and whose
  // queryable state is whatever epoch snapshot |slot| has published when a plan
  // pins it. |slot|, |ingest_cnn| and |gt_cnn| must outlive the fleet (they are
  // the stream's runtime::LiveStreamContext members in a served deployment).
  // Live members join selection and federation but have no finalized stream:
  // Find() returns nullptr for them.
  common::Result<bool> RegisterLiveCamera(const std::string& name, const SnapshotSlot* slot,
                                          const cnn::Cnn* ingest_cnn, const cnn::Cnn* gt_cnn,
                                          double fps, CameraMeta meta = {});

  // Queries |cls| across |cameras| (empty: every camera) within |range|. Unknown
  // camera names return kNotFound. Finalized members only (the pre-federation
  // sequential form; live members need PlanFederated).
  common::Result<FleetQueryResult> Query(common::ClassId cls,
                                         const std::vector<std::string>& cameras = {},
                                         common::TimeRange range = {}, int kx = -1) const;

  // Resolves |selector| to camera names in registration order. Unknown explicit
  // names error kNotFound; a region/tag selecting nothing errors kNotFound too
  // (a federated query over zero cameras is almost always a typo).
  common::Result<std::vector<std::string>> Select(const FederatedSelector& selector) const;

  // Fans |cls| out across the selected cameras: one plan per camera against its
  // finalized index or — for live members — the newest published epoch snapshot,
  // pinned. A live member with no published snapshot yet errors
  // kFailedPrecondition (nothing queryable to pin).
  common::Result<FederatedPlan> PlanFederated(common::ClassId cls,
                                              const FederatedSelector& selector = {},
                                              common::TimeRange range = {}, int kx = -1) const;

  // The reference executor and byte-identity oracle for federated plans: each
  // camera classified independently, one GT-CNN batch per camera, in plan
  // order. Packed/cached executors (runtime::FleetQueryService) must reproduce
  // its result byte-for-byte.
  FleetQueryResult ExecuteFederatedSequential(const FederatedPlan& plan) const;

  const FocusStream* Find(const std::string& name) const;
  const CameraMeta* MetaOf(const std::string& name) const;
  std::vector<std::string> CameraNames() const;  // In registration order.
  size_t size() const { return order_.size(); }

  // Sum of per-camera ingest GPU time (indexing plus tuning). Finalized members.
  common::GpuMillis TotalIngestGpuMillis() const;

 private:
  struct Camera {
    // Finalized member: owned recording + stream.
    std::unique_ptr<video::StreamRun> run;
    std::unique_ptr<FocusStream> stream;
    // Live member: borrowed snapshot slot + models.
    const SnapshotSlot* slot = nullptr;
    const cnn::Cnn* ingest_cnn = nullptr;
    const cnn::Cnn* gt_cnn = nullptr;
    double fps = 30.0;
    CameraMeta meta;

    bool IsLive() const { return slot != nullptr; }
  };

  common::Result<bool> CheckNameFree(const std::string& name) const;

  std::map<std::string, Camera> cameras_;
  std::vector<std::string> order_;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_FLEET_H_
