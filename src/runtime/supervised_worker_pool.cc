#include "src/runtime/supervised_worker_pool.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/metrics.h"

namespace focus::runtime {

namespace {

// Virtual backoff a production supervisor would sleep before the |restart|th
// (0-based) respawn of a slot: initial * multiplier^restart, capped.
double BackoffForRestart(const common::RetryPolicy& policy, int restart) {
  double backoff = policy.initial_backoff_millis;
  for (int i = 0; i < restart; ++i) {
    backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_millis);
  }
  return std::min(backoff, policy.max_backoff_millis);
}

}  // namespace

const char* WorkerStateName(WorkerState state) {
  switch (state) {
    case WorkerState::kHealthy:
      return "Healthy";
    case WorkerState::kRestarting:
      return "Restarting";
    case WorkerState::kDown:
      return "Down";
  }
  return "Unknown";
}

SupervisedWorkerPool::SupervisedWorkerPool(SupervisedPoolOptions options,
                                           MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics != nullptr ? metrics : &GlobalMetrics()) {}

common::Result<std::monostate> SupervisedWorkerPool::Start(Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  auto started = pool_.Start(options_.num_workers, std::move(handler));
  if (!started.ok()) {
    return started;
  }
  health_.assign(static_cast<size_t>(options_.num_workers), WorkerHealth{});
  stats_ = SupervisedPoolStats{};
  cursor_ = 0;
  return std::monostate{};
}

int SupervisedWorkerPool::PickWorkerLocked(int exclude) {
  const int n = pool_.size();
  if (n == 0) {
    return -1;
  }
  // One round-robin pass over live slots: Restarting serves alongside Healthy
  // (its next success is what redeems it), Down never serves. |exclude| is
  // only a preference — with one live slot left, retrying the respawned
  // worker itself is still better than surfacing the error.
  for (int step = 0; step < n; ++step) {
    const int slot = (cursor_ + step) % n;
    if (slot == exclude || health_[slot].state == WorkerState::kDown) {
      continue;
    }
    cursor_ = (slot + 1) % n;
    return slot;
  }
  if (exclude >= 0 && exclude < n && health_[exclude].state != WorkerState::kDown) {
    return exclude;
  }
  return -1;
}

void SupervisedWorkerPool::NoteFailureLocked(int slot, const common::Error& error) {
  WorkerHealth& health = health_[slot];
  ++health.consecutive_failures;
  health.last_error = error.message;
  health.last_code = error.code;
  if (error.code == common::ErrorCode::kTimeout) {
    ++stats_.timeouts;
    metrics_->IncrementCounter("proc.pool.timeouts");
  }
  // Whatever the failure was — died, torn frame, hung past deadline — the
  // slot's conversation is unusable: SIGKILL and reap (no-op if already dead).
  pool_.Kill(slot);
  if (health.restarts >= options_.max_worker_restarts) {
    if (health.state != WorkerState::kDown) {
      health.state = WorkerState::kDown;
      metrics_->IncrementCounter("proc.pool.workers_down");
    }
    return;
  }
  health.state = WorkerState::kRestarting;
  const double backoff = BackoffForRestart(options_.restart_backoff, health.restarts);
  stats_.backoff_millis += backoff;
  metrics_->Observe("proc.pool.restart_backoff_millis", backoff);
  ++health.restarts;
  ++stats_.restarts;
  metrics_->IncrementCounter("proc.pool.restarts");
  auto respawned = pool_.Respawn(slot);
  if (!respawned.ok()) {
    ++stats_.respawn_failures;
    metrics_->IncrementCounter("proc.pool.respawn_failures");
    health.last_error = respawned.error().message;
    health.last_code = respawned.error().code;
    if (health.restarts >= options_.max_worker_restarts) {
      health.state = WorkerState::kDown;
      metrics_->IncrementCounter("proc.pool.workers_down");
    }
    // Budget permitting, the slot stays Restarting: its empty seat fails the
    // next call it is picked for, which burns another restart on a respawn.
  }
}

common::Result<std::string> SupervisedWorkerPool::CallOnceLocked(int slot,
                                                                 const std::string& request) {
  auto reply = pool_.Call(slot, request, options_.call_deadline_millis);
  if (reply.ok()) {
    health_[slot].state = WorkerState::kHealthy;
    health_[slot].consecutive_failures = 0;
    return reply;
  }
  if (common::IsRetryable(reply.error().code)) {
    NoteFailureLocked(slot, reply.error());
  }
  return reply;
}

common::Result<std::string> SupervisedWorkerPool::Call(const std::string& request) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.calls;
  metrics_->IncrementCounter("proc.pool.calls");
  if (pool_.size() == 0) {
    ++stats_.failed_calls;
    return common::FailedPrecondition("supervised worker pool is not running");
  }
  const int first = PickWorkerLocked(-1);
  if (first < 0) {
    ++stats_.failed_calls;
    metrics_->IncrementCounter("proc.pool.rejected_all_down");
    return common::Unavailable("all " + std::to_string(pool_.size()) +
                               " workers are down (restart budgets exhausted)");
  }
  auto attempt = CallOnceLocked(first, request);
  if (attempt.ok()) {
    return attempt;
  }
  if (!options_.retry_on_sibling || !common::IsRetryable(attempt.error().code)) {
    ++stats_.failed_calls;
    metrics_->IncrementCounter("proc.pool.failed_calls");
    return attempt;
  }
  const int second = PickWorkerLocked(first);
  if (second < 0) {
    ++stats_.failed_calls;
    metrics_->IncrementCounter("proc.pool.failed_calls");
    return attempt;
  }
  ++stats_.sibling_retries;
  metrics_->IncrementCounter("proc.pool.sibling_retries");
  auto retried = CallOnceLocked(second, request);
  if (!retried.ok()) {
    ++stats_.failed_calls;
    metrics_->IncrementCounter("proc.pool.failed_calls");
  }
  return retried;
}

void SupervisedWorkerPool::KillWorker(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.Kill(slot);
}

WorkerHealth SupervisedWorkerPool::Health(int slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot < 0 || slot >= static_cast<int>(health_.size())) {
    return WorkerHealth{};
  }
  return health_[slot];
}

std::vector<WorkerHealth> SupervisedWorkerPool::FleetHealth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

bool SupervisedWorkerPool::AllDown() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (health_.empty()) {
    return false;
  }
  return std::all_of(health_.begin(), health_.end(), [](const WorkerHealth& h) {
    return h.state == WorkerState::kDown;
  });
}

int SupervisedWorkerPool::live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const WorkerHealth& h : health_) {
    if (h.state != WorkerState::kDown) {
      ++live;
    }
  }
  return live;
}

int SupervisedWorkerPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

SupervisedPoolStats SupervisedWorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SupervisedWorkerPool::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.Shutdown();
  health_.clear();
}

}  // namespace focus::runtime
