// Table 1 + §2.2 dataset characterization: the 13 video streams, their types and
// descriptions, and the measured statistics the paper's design rests on (fraction of
// frames with moving objects, limited class sets, class dominance, cross-stream
// Jaccard indexes).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/video/dataset.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);

  bench::PrintHeader("Table 1: Video dataset characteristics (simulated)");
  std::printf("%-6.2f hours per stream at %.0f fps (FOCUS_BENCH_HOURS to change)\n",
              config.hours, config.fps);
  std::printf("%-13s %-12s %-12s %10s %9s %8s %8s %8s %8s\n", "Name", "Type", "Location",
              "Detections", "Objects", "FrObj%", "Classes", "Cov95%", "Top1%");

  std::vector<video::StreamStatistics> all_stats;
  for (const video::StreamProfile& profile : video::Table1Profiles()) {
    video::StreamRun run = bench::MakeRun(catalog, profile.name, config);
    video::StreamStatistics stats = video::ComputeStreamStatistics(run);
    all_stats.push_back(stats);
    std::printf("%-13s %-12s %-12s %10lld %9lld %7.1f%% %8d %7.1f%% %7.1f%%\n",
                profile.name.c_str(), video::StreamTypeName(profile.type),
                profile.location.c_str(), static_cast<long long>(stats.total_detections),
                static_cast<long long>(stats.num_moving_objects),
                100.0 * stats.FractionFramesWithObjects(), stats.distinct_classes,
                100.0 * stats.classes_covering_95pct, 100.0 * stats.top_class_share);
  }

  std::printf("\nPaper checkpoints (§2.2):\n");
  std::printf("  frames with moving objects: paper reports one-half to two-thirds overall\n");
  std::printf("  classes covering 95%% of objects: paper reports 3%%-10%% of the 1000-class space\n");
  std::printf("  mean pairwise Jaccard of class sets: paper reports 0.46; measured %.2f\n",
              video::MeanPairwiseJaccard(all_stats));
  return 0;
}
