#include "src/cluster/sharded_clusterer.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/cluster/cluster_codec.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/runtime/worker_pool.h"
#include "src/storage/arena_file.h"
#include "src/storage/record_log.h"
#include "src/storage/serializer.h"
#include "src/storage/snapshot_store.h"

namespace focus::cluster {

namespace {

// Version tag of the sharded.meta checkpoint snapshot. v2 added the
// boundary_merge flag to the options echo: the merge-pass cadence is part of
// the clustering semantics, so a resumed run must not silently switch modes.
constexpr uint32_t kShardedMetaVersion = 2;

}  // namespace

ShardedClusterer::ShardedClusterer(ShardedClustererOptions options)
    : options_(options) {
  FOCUS_CHECK(options_.num_shards >= 1);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<IncrementalClusterer>(options_.base));
    if (options_.num_shards > 1) {
      // Cross-shard merges must see retired centroids as targets: a duplicate
      // of a retired cluster can appear in another shard after the retirement
      // (at one shard there is no cross-shard pair, so skip the bookkeeping).
      shards_.back()->EnableRetiredMergeTargets();
    }
  }
  shard_items_.resize(options_.num_shards);
  merge_scanned_.resize(options_.num_shards, 0);
  merge_considered_.resize(options_.num_shards);
}

size_t ShardedClusterer::ShardOf(common::ObjectId object) const {
  if (options_.num_shards <= 1) {
    return 0;
  }
  // SplitMix64 rather than object % num_shards: object ids are often assigned
  // sequentially, and a modulo partition of a sequential range correlates with
  // arrival order (bursts land on one shard).
  return static_cast<size_t>(common::SplitMix64(static_cast<uint64_t>(object)) %
                             static_cast<uint64_t>(options_.num_shards));
}

int64_t ShardedClusterer::Add(const video::Detection& detection,
                              const common::FeatureVec& feature) {
  const size_t s = ShardOf(detection.object_id);
  const int64_t local = shards_[s]->Add(detection, feature);
  AfterAssignments(1);
  return GlobalId(s, local);
}

int64_t ShardedClusterer::AddSuppressed(const video::Detection& detection,
                                        const common::FeatureVec& feature) {
  const size_t s = ShardOf(detection.object_id);
  const int64_t local = shards_[s]->AddSuppressed(detection, feature);
  AfterAssignments(1);
  return GlobalId(s, local);
}

void ShardedClusterer::AssignBatch(const WorkItem* items, size_t count,
                                   runtime::WorkerPool* pool, int64_t* out) {
  const size_t num_shards = options_.num_shards;
  for (std::vector<size_t>& v : shard_items_) {
    v.clear();
  }
  for (size_t i = 0; i < count; ++i) {
    FOCUS_CHECK(items[i].detection != nullptr && items[i].feature != nullptr);
    shard_items_[ShardOf(items[i].detection->object_id)].push_back(i);
  }

  // One ordered task per shard: assignment order within a shard must follow
  // stream order (the clusterer is stateful), so the shard is the finest safe
  // work item. Out-slots are disjoint per item, so no synchronization beyond
  // the pool's Drain() is needed.
  auto run_shard = [this, items, out](size_t s) {
    IncrementalClusterer& shard = *shards_[s];
    for (size_t i : shard_items_[s]) {
      const WorkItem& item = items[i];
      const int64_t local = item.suppressed
                                ? shard.AddSuppressed(*item.detection, *item.feature)
                                : shard.Add(*item.detection, *item.feature);
      out[i] = GlobalId(s, local);
    }
  };

  if (pool == nullptr || num_shards == 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      run_shard(s);
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_items_[s].empty()) {
        continue;
      }
      FOCUS_CHECK(pool->Submit([run_shard, s] { run_shard(s); }));
    }
    pool->Drain();
  }
  AfterAssignments(static_cast<int64_t>(count));
}

void ShardedClusterer::AfterAssignments(int64_t count) {
  // Boundary-merge mode never merges mid-window: a periodic pass would union
  // clusters at mid-window positions, producing edges a halted run's
  // boundary-position full pass cannot reproduce — which is exactly the
  // byte-identity the windowed finalizer relies on. The assignment counter
  // also stays untouched so checkpoints are position-independent of batching.
  if (options_.boundary_merge || options_.merge_interval <= 0) {
    return;
  }
  assignments_since_merge_ += count;
  if (assignments_since_merge_ >= options_.merge_interval) {
    RunMergePass(/*full=*/false);
    assignments_since_merge_ = 0;
  }
}

int64_t ShardedClusterer::Find(int64_t global_id) const {
  const int64_t n = static_cast<int64_t>(parent_.size());
  int64_t root = global_id;
  while (root < n && parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  // Path compression toward the root keeps repeated canonical lookups cheap.
  int64_t walk = global_id;
  while (walk < n && parent_[static_cast<size_t>(walk)] != root) {
    const int64_t next = parent_[static_cast<size_t>(walk)];
    parent_[static_cast<size_t>(walk)] = root;
    walk = next;
  }
  return root;
}

void ShardedClusterer::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) {
    return;
  }
  if (ra > rb) {
    std::swap(ra, rb);
  }
  // Attach the larger root under the smaller so every component's root is its
  // minimum global id (the canonical id).
  if (rb >= static_cast<int64_t>(parent_.size())) {
    const size_t old = parent_.size();
    parent_.resize(static_cast<size_t>(rb) + 1);
    for (size_t g = old; g < parent_.size(); ++g) {
      parent_[g] = static_cast<int64_t>(g);
    }
  }
  parent_[static_cast<size_t>(rb)] = ra;
  ++merges_folded_;
}

void ShardedClusterer::MergePass() { RunMergePass(/*full=*/true); }

void ShardedClusterer::QueryAgainstShards(size_t s, int64_t local_id,
                                          const common::FeatureVec& centroid,
                                          float threshold_sq, bool lower_only) {
  for (size_t t = 0; t < (lower_only ? s : options_.num_shards); ++t) {
    if (t == s) {
      continue;
    }
    // Nearest target within T across the shard's active centroids AND its
    // frozen retired ones: a cluster that retired before this query's
    // cluster even existed is still the same real-world appearance and
    // must fold. Ties between the two stores resolve toward the smaller
    // local id, matching the single-store smallest-id semantics.
    int64_t target = -1;
    float target_dist = 0.0f;
    for (const CentroidStore* store :
         {&shards_[t]->centroid_store(), &shards_[t]->retired_store()}) {
      if (store->empty() || store->dim() != centroid.size()) {
        continue;
      }
      float dist_sq = 0.0f;
      const int64_t found =
          store->FindNearest(centroid.data(), centroid.size(), threshold_sq, &dist_sq);
      if (found < 0) {
        continue;
      }
      if (target < 0 || dist_sq < target_dist ||
          (dist_sq == target_dist && found < target)) {
        target = found;
        target_dist = dist_sq;
      }
    }
    if (target >= 0) {
      Union(GlobalId(s, local_id), GlobalId(t, target));
    }
  }
}

void ShardedClusterer::RunMergePass(bool full) {
  if (options_.num_shards <= 1) {
    return;
  }
  const float threshold_sq =
      static_cast<float>(options_.base.threshold * options_.base.threshold);
  // Re-queue radius: an already-considered cluster whose centroid moved more
  // than this (squared) distance since its last consideration is queried
  // again — its neighbourhood changed enough that a fold it previously missed
  // may now be in range.
  const double requeue_radius = options_.merge_requeue_fraction * options_.base.threshold;
  const double requeue_dist_sq = requeue_radius * requeue_radius;
  // Fixed scan order (shard ascending, local id ascending, other shards
  // ascending as targets) plus CentroidStore's smallest-id tie break keep the
  // union-find a pure function of the stream. Targets cover the active working
  // set and the frozen retired centroids (retired_store): a retired cluster
  // can no longer drift, but its appearance can re-arise in another shard
  // after the retirement, and the pair must still fold — each such pair is
  // captured from the later cluster's side when it queries as a new cluster.
  // Incremental passes (full == false) use clusters
  // created since the previous pass as queries, plus active clusters that
  // drifted past the re-queue radius since they were last considered. The
  // drift sweep itself costs one L2 distance per already-considered active
  // cluster per pass — about one assignment-scan equivalent per
  // merge_interval assignments — so the *merge query* cost stays proportional
  // to churn and drift, not to the active working set; the full pass
  // restricts targets to earlier shards (every unordered cross-shard pair is
  // still covered, from its higher-shard side). Tracking cumulative
  // displacement at Join time instead of snapshot vectors would drop both the
  // sweep and the snapshot copies from the checkpoint meta (ROADMAP).
  for (size_t s = 0; s < options_.num_shards; ++s) {
    const std::vector<Cluster>& clusters = shards_[s]->clusters();
    std::vector<MergeCandidate>& considered = merge_considered_[s];

    auto run_queries = [&](size_t l, const Cluster& c) {
      QueryAgainstShards(s, static_cast<int64_t>(l), c.centroid, threshold_sq,
                         /*lower_only=*/full);
    };

    // Previously considered clusters, ascending local id: drop retired ones
    // (their centroids never merge again), re-query drifted or full-pass
    // ones. The union-find's final components are independent of query order
    // within a pass (stores do not change mid-pass), so splitting old and new
    // candidates into two ascending sweeps preserves determinism.
    size_t keep = 0;
    for (size_t i = 0; i < considered.size(); ++i) {
      MergeCandidate& candidate = considered[i];
      const Cluster& c = clusters[candidate.local_id];
      if (!c.active) {
        // Retired since last considered: one final query with the frozen
        // centroid (it may have drifted into range of another shard's cluster
        // between its last consideration and its retirement), then drop — the
        // frozen centroid stays reachable as a merge *target* through
        // retired_store() forever.
        run_queries(candidate.local_id, c);
        continue;
      }
      bool query = full;
      if (!query && requeue_dist_sq > 0.0) {
        query = common::SquaredL2Distance(c.centroid, candidate.snapshot) > requeue_dist_sq;
      }
      if (query) {
        run_queries(candidate.local_id, c);
        candidate.snapshot = c.centroid;  // Drift measures from here now.
      }
      if (keep != i) {  // Guard the self-move: it would empty the snapshot.
        considered[keep] = std::move(candidate);
      }
      ++keep;
    }
    considered.resize(keep);
    // Clusters created since the previous pass. A cluster that already retired
    // (created and evicted within one interval) still queries once with its
    // frozen centroid — its duplicate may be live in another shard — but is
    // not tracked for drift: frozen centroids never move, and other shards'
    // later clusters find it through the retired target store.
    for (size_t l = merge_scanned_[s]; l < clusters.size(); ++l) {
      const Cluster& c = clusters[l];
      run_queries(l, c);
      if (c.active) {
        considered.push_back({l, c.centroid});
      }
    }
    merge_scanned_[s] = clusters.size();
  }
}

void ShardedClusterer::BoundaryMergePass() {
  if (options_.num_shards <= 1) {
    return;
  }
  const float threshold_sq =
      static_cast<float>(options_.base.threshold * options_.base.threshold);

  // A cluster that did not move since its last merge query already holds its
  // exact nearest-within-T edges *unless a neighbour moved*: every dirtied
  // cluster below is therefore also recorded as a "mover" whose old and new
  // positions invalidate the clusters around them. Phase A sweeps every shard
  // first so no mover is missed (a requery in phase B resets a snapshot, which
  // would otherwise mask phase A's own drift detection for that shard), then
  // phase B requeries the invalidated neighbourhoods. Union edges depend only
  // on the stores, which never change mid-pass, so the closure is independent
  // of the phase split.
  struct Mover {
    size_t shard = 0;
    common::FeatureVec old_pos;  // Empty for clusters new since the last pass.
    common::FeatureVec new_pos;
  };
  std::vector<Mover> movers;
  // Per shard: local ids already queried this pass (dedupe only; never iterated).
  std::vector<std::unordered_set<size_t>> queried(options_.num_shards);

  for (size_t s = 0; s < options_.num_shards; ++s) {
    const std::vector<Cluster>& clusters = shards_[s]->clusters();
    std::vector<MergeCandidate>& considered = merge_considered_[s];
    size_t keep = 0;
    for (size_t i = 0; i < considered.size(); ++i) {
      MergeCandidate& candidate = considered[i];
      const Cluster& c = clusters[candidate.local_id];
      if (!c.active) {
        // Retired since the last boundary: the one final query with the frozen
        // centroid, then drop (the full pass does the same). If it also moved
        // between its last query and retirement, its displacement invalidates
        // neighbours exactly like an active mover's.
        QueryAgainstShards(s, static_cast<int64_t>(candidate.local_id), c.centroid,
                           threshold_sq, /*lower_only=*/true);
        queried[s].insert(candidate.local_id);
        if (c.centroid != candidate.snapshot) {
          movers.push_back(Mover{s, candidate.snapshot, c.centroid});
        }
        continue;
      }
      if (c.centroid != candidate.snapshot) {
        // Any movement requeries — no drift tolerance: the full pass would
        // query this cluster at its new position, and even an epsilon move can
        // change the nearest-within-T answer, so byte-identity needs exact
        // dirty tracking here (the periodic passes' requeue_fraction knob is a
        // recall/cost tradeoff and does not apply in this mode).
        QueryAgainstShards(s, static_cast<int64_t>(candidate.local_id), c.centroid,
                           threshold_sq, /*lower_only=*/true);
        queried[s].insert(candidate.local_id);
        movers.push_back(Mover{s, candidate.snapshot, c.centroid});
        candidate.snapshot = c.centroid;
      }
      if (keep != i) {  // Guard the self-move: it would empty the snapshot.
        considered[keep] = std::move(candidate);
      }
      ++keep;
    }
    considered.resize(keep);
    // Clusters created since the previous pass: query (full-pass bound) and
    // invalidate around their position — they are new merge *targets* for
    // unmoved clusters in higher shards.
    for (size_t l = merge_scanned_[s]; l < clusters.size(); ++l) {
      const Cluster& c = clusters[l];
      QueryAgainstShards(s, static_cast<int64_t>(l), c.centroid, threshold_sq,
                         /*lower_only=*/true);
      queried[s].insert(l);
      movers.push_back(Mover{s, common::FeatureVec{}, c.centroid});
      if (c.active) {
        considered.push_back({l, c.centroid});
      }
    }
    merge_scanned_[s] = clusters.size();
  }

  // Phase B — reverse invalidation. The full pass covers each cross-shard pair
  // from its higher-shard side (queries target lower shards only), so a mover
  // in shard s can only change the answer of clusters in shards t > s. Any
  // cluster within T of the mover's old position (the mover may have been its
  // nearest and left) or new position (the mover may have arrived) re-issues
  // its exact query; everything farther than T was out of range before and
  // after, so its nearest-within-T is untouched. Over-inclusion is harmless —
  // a requery at an unchanged position re-adds existing edges.
  for (const Mover& m : movers) {
    for (size_t t = m.shard + 1; t < options_.num_shards; ++t) {
      const CentroidStore& store = shards_[t]->centroid_store();
      if (store.empty() || store.dim() != m.new_pos.size()) {
        continue;
      }
      auto requery = [&](int64_t local_id) {
        if (!queried[t].insert(static_cast<size_t>(local_id)).second) {
          return;
        }
        const Cluster& c = shards_[t]->clusters()[static_cast<size_t>(local_id)];
        QueryAgainstShards(t, local_id, c.centroid, threshold_sq, /*lower_only=*/true);
        // The requery re-measured this cluster's neighbourhood at its current
        // position; drift tracking restarts from here (ascending-id order of
        // merge_considered_ makes the entry binary-searchable).
        std::vector<MergeCandidate>& considered = merge_considered_[t];
        auto it = std::lower_bound(
            considered.begin(), considered.end(), static_cast<size_t>(local_id),
            [](const MergeCandidate& a, size_t v) { return a.local_id < v; });
        FOCUS_CHECK(it != considered.end() &&
                    it->local_id == static_cast<size_t>(local_id));
        it->snapshot = c.centroid;
      };
      if (!m.old_pos.empty()) {
        store.ForEachWithin(m.old_pos.data(), m.old_pos.size(), threshold_sq, requery);
      }
      store.ForEachWithin(m.new_pos.data(), m.new_pos.size(), threshold_sq, requery);
    }
  }
}

int64_t ShardedClusterer::CanonicalOf(int64_t global_id) const { return Find(global_id); }

std::vector<Cluster> ShardedClusterer::FinalizeClusters() {
  MergePass();
  const size_t num_shards = options_.num_shards;
  size_t max_locals = 0;
  for (const auto& shard : shards_) {
    max_locals = std::max(max_locals, shard->clusters().size());
  }

  std::vector<Cluster> table;
  std::unordered_map<int64_t, size_t> slot_of_root;
  // Global ids ascend over (local asc, shard asc), and every component's root
  // is its minimum id, so a component's canonical cluster is always created
  // before any cluster folds into it.
  for (size_t l = 0; l < max_locals; ++l) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (l >= shards_[s]->clusters().size()) {
        continue;
      }
      const Cluster& src = shards_[s]->clusters()[l];
      const int64_t g = GlobalId(s, static_cast<int64_t>(l));
      const int64_t root = Find(g);
      if (root == g) {
        table.push_back(src);
        table.back().id = g;
        slot_of_root.emplace(root, table.size() - 1);
        continue;
      }
      Cluster& dst = table[slot_of_root.at(root)];
      const double total = static_cast<double>(dst.size + src.size);
      const double ws = static_cast<double>(src.size) / total;
      for (size_t i = 0; i < dst.centroid.size(); ++i) {
        dst.centroid[i] =
            static_cast<float>(dst.centroid[i] * (1.0 - ws) + src.centroid[i] * ws);
      }
      dst.size += src.size;
      dst.members.insert(dst.members.end(), src.members.begin(), src.members.end());
      dst.active = dst.active || src.active;
    }
  }
  return table;
}

common::Result<bool> ShardedClusterer::Checkpoint(int64_t position,
                                                  std::string_view user_state,
                                                  runtime::WorkerPool* pool) {
  FOCUS_CHECK(persistent());
  const size_t num_shards = options_.num_shards;
  // Step 1: commit every shard's arena (msync + header) and encode its
  // bookkeeping. Shards are independent files and independent state, so with a
  // pool the commits fan out one task per shard; errors are collected into
  // per-shard slots and checked in ascending shard order, so the parallel and
  // inline paths return the same (first) error. Shard arenas may end up a
  // generation ahead of the meta if we crash below — recovery rolls each back
  // to the generation recorded here.
  std::vector<uint64_t> generations(num_shards, 0);
  std::vector<std::string> bookkeeping(num_shards);
  std::vector<std::optional<common::Error>> commit_errors(num_shards);
  auto commit_shard = [&](size_t s) {
    auto generation = shards_[s]->CommitArena();
    if (!generation.ok()) {
      commit_errors[s] = generation.error();
      return;
    }
    generations[s] = *generation;
    bookkeeping[s] = shards_[s]->EncodeBookkeeping();
  };
  const bool parallel = pool != nullptr && num_shards > 1;
  if (parallel) {
    for (size_t s = 0; s < num_shards; ++s) {
      FOCUS_CHECK(pool->Submit([&commit_shard, s] { commit_shard(s); }));
    }
    pool->Drain();
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      commit_shard(s);
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (commit_errors[s].has_value()) {
      return *commit_errors[s];
    }
  }

  // Step 2: one meta snapshot for every shard's bookkeeping plus the merge
  // state; its atomic rename commits the whole multi-shard checkpoint at once.
  storage::Encoder enc;
  enc.PutU32(kShardedMetaVersion);
  enc.PutVarint(options_.num_shards);
  enc.PutSignedVarint(options_.merge_interval);
  enc.PutDouble(options_.merge_requeue_fraction);
  enc.PutU32(options_.boundary_merge ? 1 : 0);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    enc.PutU64(generations[s]);
    enc.PutString(bookkeeping[s]);
  }
  enc.PutVarint(parent_.size());
  for (int64_t p : parent_) {
    enc.PutSignedVarint(p);
  }
  for (size_t s = 0; s < options_.num_shards; ++s) {
    enc.PutVarint(merge_scanned_[s]);
  }
  for (size_t s = 0; s < options_.num_shards; ++s) {
    enc.PutVarint(merge_considered_[s].size());
    for (const MergeCandidate& candidate : merge_considered_[s]) {
      enc.PutVarint(candidate.local_id);
      EncodeFeatureVec(enc, candidate.snapshot);
    }
  }
  enc.PutSignedVarint(assignments_since_merge_);
  enc.PutSignedVarint(merges_folded_);
  enc.PutSignedVarint(position);
  enc.PutString(user_state);
  enc.PutU32(storage::Crc32(enc.bytes()));
  if (auto wrote = storage::WriteFileAtomic(meta_path_, enc.bytes()); !wrote.ok()) {
    return wrote;
  }

  // Step 3: open every shard's fresh undo window — per-shard files again, so
  // the rotation fans out like step 1.
  std::vector<std::optional<common::Error>> rotate_errors(num_shards);
  auto rotate_shard = [&](size_t s) {
    if (auto rotated = shards_[s]->RotateUndoLog(generations[s]); !rotated.ok()) {
      rotate_errors[s] = rotated.error();
    }
  };
  if (parallel) {
    for (size_t s = 0; s < num_shards; ++s) {
      FOCUS_CHECK(pool->Submit([&rotate_shard, s] { rotate_shard(s); }));
    }
    pool->Drain();
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      rotate_shard(s);
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (rotate_errors[s].has_value()) {
      return *rotate_errors[s];
    }
  }
  return true;
}

common::Result<ClustererRecovery> ShardedClusterer::OpenOrRecover(const std::string& dir) {
  FOCUS_CHECK(!persistent() && total_assignments() == 0);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return common::Error{common::ErrorCode::kIo,
                         "create persist dir: " + dir + ": " + ec.message()};
  }
  persist_dir_ = dir;
  meta_path_ = dir + "/sharded.meta";
  auto arena_path = [&](size_t s) { return dir + "/shard-" + std::to_string(s) + ".arena"; };
  auto undo_path = [&](size_t s) { return dir + "/shard-" + std::to_string(s) + ".undo"; };

  if (!storage::FileExists(meta_path_)) {
    // No committed checkpoint: fresh persistent state, stale shard files dropped.
    for (size_t s = 0; s < options_.num_shards; ++s) {
      std::filesystem::remove(arena_path(s), ec);
      std::filesystem::remove(undo_path(s), ec);
      auto arena = storage::ArenaFile::Open(arena_path(s));
      if (!arena.ok()) {
        return arena.error();
      }
      if (auto attached =
              shards_[s]->AttachPersistence(std::move(arena).value(), undo_path(s));
          !attached.ok()) {
        return attached.error();
      }
    }
    return ClustererRecovery{};
  }

  auto blob = storage::ReadFile(meta_path_);
  if (!blob.ok()) {
    return blob.error();
  }
  auto corrupt = [&] {
    return common::Error{common::ErrorCode::kIo, "sharded meta corrupt: " + meta_path_};
  };
  storage::Decoder dec(*blob);
  uint32_t version = 0;
  uint64_t num_shards = 0;
  int64_t merge_interval = 0;
  double requeue_fraction = 0.0;
  uint32_t boundary_merge = 0;
  if (!dec.GetU32(&version) || version != kShardedMetaVersion ||
      !dec.GetVarint(&num_shards) || !dec.GetSignedVarint(&merge_interval) ||
      !dec.GetDouble(&requeue_fraction) || !dec.GetU32(&boundary_merge)) {
    return corrupt();
  }
  if (num_shards != options_.num_shards || merge_interval != options_.merge_interval ||
      requeue_fraction != options_.merge_requeue_fraction ||
      (boundary_merge != 0) != options_.boundary_merge) {
    return common::FailedPrecondition(
        "sharded clusterer options do not match the checkpointed run");
  }
  std::vector<uint64_t> generations(options_.num_shards, 0);
  std::vector<std::string> bookkeeping(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    if (!dec.GetU64(&generations[s]) || !dec.GetString(&bookkeeping[s])) {
      return corrupt();
    }
  }
  uint64_t parent_len = 0;
  if (!dec.GetVarint(&parent_len) || parent_len > dec.remaining()) {
    return corrupt();
  }
  std::vector<int64_t> parent(static_cast<size_t>(parent_len));
  for (int64_t& p : parent) {
    if (!dec.GetSignedVarint(&p)) {
      return corrupt();
    }
  }
  std::vector<size_t> merge_scanned(options_.num_shards, 0);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    uint64_t scanned = 0;
    if (!dec.GetVarint(&scanned)) {
      return corrupt();
    }
    merge_scanned[s] = static_cast<size_t>(scanned);
  }
  std::vector<std::vector<MergeCandidate>> merge_considered(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    uint64_t count = 0;
    if (!dec.GetVarint(&count) || count > dec.remaining()) {
      return corrupt();
    }
    merge_considered[s].resize(static_cast<size_t>(count));
    for (MergeCandidate& candidate : merge_considered[s]) {
      uint64_t local = 0;
      if (!dec.GetVarint(&local) || !DecodeFeatureVec(dec, &candidate.snapshot)) {
        return corrupt();
      }
      candidate.local_id = static_cast<size_t>(local);
    }
  }
  int64_t assignments_since_merge = 0;
  int64_t merges_folded = 0;
  int64_t position = 0;
  std::string user_state;
  size_t payload_end = 0;
  uint32_t crc = 0;
  if (!dec.GetSignedVarint(&assignments_since_merge) || !dec.GetSignedVarint(&merges_folded) ||
      !dec.GetSignedVarint(&position) || !dec.GetString(&user_state) ||
      (payload_end = dec.offset(), !dec.GetU32(&crc)) ||
      storage::Crc32(std::string_view(blob->data(), payload_end)) != crc) {
    return corrupt();
  }

  // Roll every shard arena back to the committed cut (the shared protocol in
  // storage::OpenArenaAtCheckpoint), then hand it to its shard. A shard is
  // re-sealed along with all the others if any of them had to be repaired.
  bool needs_reseal = false;
  for (size_t s = 0; s < options_.num_shards; ++s) {
    bool shard_needs_reseal = false;
    auto arena = storage::OpenArenaAtCheckpoint(arena_path(s), undo_path(s), generations[s],
                                                &shard_needs_reseal);
    if (!arena.ok()) {
      return arena.error();
    }
    needs_reseal = needs_reseal || shard_needs_reseal;
    if (auto restored = shards_[s]->RestorePersistent(std::move(arena).value(), undo_path(s),
                                                      bookkeeping[s]);
        !restored.ok()) {
      return restored.error();
    }
  }
  parent_ = std::move(parent);
  merge_scanned_ = std::move(merge_scanned);
  merge_considered_ = std::move(merge_considered);
  assignments_since_merge_ = assignments_since_merge;
  merges_folded_ = merges_folded;

  // Re-seal when any shard rolled back (headers, meta, and undo windows must
  // be mutually consistent before any mutation); a clean recovery of every
  // shard skips the rewrite — the on-disk cut already is the checkpoint.
  if (needs_reseal) {
    if (auto sealed = Checkpoint(position, user_state); !sealed.ok()) {
      return sealed.error();
    }
  }
  ClustererRecovery out;
  out.recovered = true;
  out.position = position;
  out.user_state = std::move(user_state);
  return out;
}

int64_t ShardedClusterer::total_assignments() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->total_assignments();
  }
  return total;
}

double ShardedClusterer::FastHitRate() const {
  int64_t hits = 0;
  int64_t lookups = 0;
  for (const auto& shard : shards_) {
    hits += shard->fast_hits();
    lookups += shard->fast_lookups();
  }
  return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
}

}  // namespace focus::cluster
