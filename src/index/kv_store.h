// Embedded ordered key-value store.
//
// The paper stores the top-K index in MongoDB for query-time retrieval (§5); this is
// the equivalent embedded substrate: an ordered string->string map with prefix scans
// and an atomic-rename file snapshot format, enough to persist and reload indexes
// across process restarts.
#ifndef FOCUS_SRC_INDEX_KV_STORE_H_
#define FOCUS_SRC_INDEX_KV_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace focus::index {

class KvStore {
 public:
  KvStore() = default;

  void Put(const std::string& key, std::string value) { map_[key] = std::move(value); }

  std::optional<std::string> Get(const std::string& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  bool Erase(const std::string& key) { return map_.erase(key) > 0; }

  // All (key, value) pairs whose key starts with |prefix|, in key order.
  std::vector<std::pair<std::string, std::string>> Scan(const std::string& prefix) const;

  size_t size() const { return map_.size(); }
  void Clear() { map_.clear(); }

  // Snapshot to / restore from a file. The format is length-prefixed binary; writes
  // go to a temp file renamed into place so a crash never leaves a torn snapshot.
  common::Result<bool> SaveToFile(const std::string& path) const;
  common::Result<bool> LoadFromFile(const std::string& path);

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace focus::index

#endif  // FOCUS_SRC_INDEX_KV_STORE_H_
