#include "src/core/query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "src/common/logging.h"
#include "src/core/live_snapshot.h"

namespace focus::core {

std::vector<std::pair<common::FrameIndex, common::FrameIndex>> MergeFrameRuns(
    std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs) {
  if (runs.empty()) {
    return runs;
  }
  std::sort(runs.begin(), runs.end());
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> merged;
  merged.push_back(runs.front());
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].first <= merged.back().second + 1) {
      merged.back().second = std::max(merged.back().second, runs[i].second);
    } else {
      merged.push_back(runs[i]);
    }
  }
  return merged;
}

std::pair<common::FrameIndex, common::FrameIndex> FrameBoundsOfRange(common::TimeRange range,
                                                                     double fps) {
  constexpr common::FrameIndex kMaxFrame = std::numeric_limits<common::FrameIndex>::max();
  const double frame_limit = static_cast<double>(kMaxFrame);
  // First frame with frame/fps >= begin_sec. The arithmetic estimate can land
  // one frame off ContainsFrame's frame/fps comparison when begin_sec * fps
  // rounds differently than the division; the fix-up loops below run at most a
  // step or two, keeping the bound exact without a per-frame walk. Estimates
  // beyond the representable frame range (range values are client input) are
  // clamped before the narrowing cast.
  common::FrameIndex first = 0;
  if (range.begin_sec > 0.0) {
    const double est = std::ceil(range.begin_sec * fps);
    if (!(est < frame_limit)) {
      // No representable frame reaches begin_sec: the range admits nothing.
      return {kMaxFrame, kMaxFrame - 1};
    }
    first = static_cast<common::FrameIndex>(est);
    while (first > 0 && static_cast<double>(first - 1) / fps >= range.begin_sec) {
      --first;
    }
    while (static_cast<double>(first) / fps < range.begin_sec) {
      ++first;
    }
  }
  // Last frame with frame/fps < end_sec (inclusive bound); open-ended otherwise.
  common::FrameIndex last = kMaxFrame;
  if (range.end_sec >= 0.0) {
    const double est = std::ceil(range.end_sec * fps);
    if (est < frame_limit) {
      last = static_cast<common::FrameIndex>(est);
      while (last > 0 && static_cast<double>(last - 1) / fps >= range.end_sec) {
        --last;
      }
      while (static_cast<double>(last) / fps < range.end_sec) {
        ++last;
      }
      --last;  // |last| was the first excluded frame.
    }
    // Otherwise every representable frame is below end_sec: leave it open.
  }
  return {first, last};
}

QueryEngine::QueryEngine(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn,
                         const cnn::Cnn* gt_cnn)
    : index_(index), ingest_cnn_(ingest_cnn), gt_cnn_(gt_cnn) {}

QueryEngine::QueryEngine(const LiveSnapshot* snapshot, const cnn::Cnn* ingest_cnn,
                         const cnn::Cnn* gt_cnn)
    : QueryEngine(&snapshot->index, ingest_cnn, gt_cnn) {}

QueryPlan QueryEngine::Plan(common::ClassId cls, int kx, common::TimeRange range, double fps,
                            int min_kx) const {
  QueryPlan plan;
  plan.queried = cls;
  plan.kx = kx;

  // QT1/QT2: map the queried class into the ingest model's label space (a class the
  // specialized model was not trained on lives under OTHER, §4.3) and pull the
  // posting list.
  plan.lookup = ingest_cnn_->MapTrueLabel(cls);
  const std::vector<int64_t>& candidates = index_->ClustersForClass(plan.lookup);

  // Map the time range to frame bounds once; clipping each run is then O(1).
  const bool clip = range.begin_sec > 0.0 || range.end_sec >= 0.0;
  if (clip) {
    std::tie(plan.range_first, plan.range_last) = FrameBoundsOfRange(range, fps);
  }

  for (int64_t id : candidates) {
    const index::ClusterEntry& entry = index_->cluster(id);
    if (kx > 0 && !entry.MatchesWithin(plan.lookup, kx)) {
      continue;
    }
    if (min_kx > 0 && entry.MatchesWithin(plan.lookup, min_kx)) {
      continue;  // Already admitted (and classified) by an earlier expansion.
    }
    plan.work.push_back(CentroidWorkItem{id, &entry.representative});
  }
  return plan;
}

std::vector<common::ClassId> QueryEngine::ClassifyPlan(const QueryPlan& plan) const {
  // Classify the centroid objects as one batch, through the work items'
  // pointers into the index (no Detection/feature copies on the query path).
  std::vector<const video::Detection*> crops;
  crops.reserve(plan.work.size());
  for (const CentroidWorkItem& item : plan.work) {
    crops.push_back(item.centroid);
  }
  std::vector<cnn::TopKResult> classified;
  gt_cnn_->ClassifyBatch(crops, /*k=*/1, &classified);
  std::vector<common::ClassId> verdicts;
  verdicts.reserve(classified.size());
  for (const cnn::TopKResult& topk : classified) {
    verdicts.push_back(topk.Top1());
  }
  return verdicts;
}

QueryResult QueryEngine::Resolve(const QueryPlan& plan,
                                 std::span<const common::ClassId> verdicts) const {
  FOCUS_CHECK(verdicts.size() == plan.work.size());
  QueryResult result;
  result.queried = plan.queried;

  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs;
  for (size_t i = 0; i < plan.work.size(); ++i) {
    // QT3 accounting: one GT-CNN inference per work item, summed term by term so
    // the total is bit-identical to the seed's per-centroid accumulation no
    // matter how the verdicts were actually executed.
    ++result.centroids_classified;
    result.gpu_millis += gt_cnn_->inference_cost_millis();
    if (verdicts[i] != plan.queried) {
      continue;
    }
    // QT4: the whole cluster inherits the centroid's label.
    ++result.clusters_matched;
    const index::ClusterEntry& entry = index_->cluster(plan.work[i].cluster_id);
    for (const cluster::MemberRun& run : entry.members) {
      const common::FrameIndex first = std::max(run.first_frame, plan.range_first);
      const common::FrameIndex last = std::min(run.last_frame, plan.range_last);
      if (first > last) {
        continue;
      }
      runs.emplace_back(first, last);
    }
  }
  result.frame_runs = MergeFrameRuns(std::move(runs));
  for (const auto& [first, last] : result.frame_runs) {
    result.frames_returned += last - first + 1;
  }
  return result;
}

QueryResult QueryEngine::Query(common::ClassId cls, int kx, common::TimeRange range,
                               double fps) const {
  const QueryPlan plan = Plan(cls, kx, range, fps);
  return Resolve(plan, ClassifyPlan(plan));
}

}  // namespace focus::core
