// Figure 6: the configuration space the tuner navigates for auburn_c — every viable
// configuration's (normalized ingest cost, normalized query latency), the Pareto
// boundary, and the three policy picks. Axes are normalized to running the GT-CNN on
// every sampled object, exactly as in the paper's figure.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/parameter_tuner.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "auburn_c", config);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  core::ParameterTuner tuner(&catalog, &gt, {});
  std::vector<core::EvaluatedConfig> grid =
      tuner.EvaluateGrid(run, run.profile().appearance_variability);
  core::TuningResult selected =
      core::SelectFromEvaluated(grid, core::AccuracyTarget{}, core::Policy::kBalance);

  bench::PrintHeader("Figure 6: Parameter selection space (auburn_c, 95/95 targets)");
  std::printf("evaluated configurations: %zu, viable: %zu, Pareto boundary: %zu\n\n",
              selected.evaluated.size(), selected.viable_indices.size(),
              selected.pareto_indices.size());

  std::printf("Pareto boundary (normalized ingest cost -> normalized query latency):\n");
  std::printf("%-14s %4s %5s %12s %12s %8s %8s\n", "Model", "K", "T", "IngestNorm",
              "QueryNorm", "Prec", "Recall");
  for (size_t idx : selected.pareto_indices) {
    const core::EvaluatedConfig& c = selected.evaluated[idx];
    std::printf("%-14s %4d %5.2f %12.5f %12.5f %8.3f %8.3f\n", c.params.model.name.c_str(),
                c.params.k, c.params.cluster_threshold, c.ingest_cost_norm,
                c.query_latency_norm, c.precision, c.recall);
  }

  for (core::Policy policy :
       {core::Policy::kOptIngest, core::Policy::kBalance, core::Policy::kOptQuery}) {
    core::TuningResult r = core::SelectFromEvaluated(grid, core::AccuracyTarget{}, policy);
    const core::EvaluatedConfig& c = r.chosen();
    std::printf("\n%-11s -> model=%s K=%d T=%.2f ingest_norm=%.5f query_norm=%.5f",
                core::PolicyName(policy), c.params.model.name.c_str(), c.params.k,
                c.params.cluster_threshold, c.ingest_cost_norm, c.query_latency_norm);
  }

  // A compact scatter summary of the viable set (the full figure's point cloud).
  std::printf("\n\nViable-set envelope: ");
  double min_i = 1e9, max_i = 0, min_q = 1e9, max_q = 0;
  for (size_t idx : selected.viable_indices) {
    const core::EvaluatedConfig& c = selected.evaluated[idx];
    min_i = std::min(min_i, c.ingest_cost_norm);
    max_i = std::max(max_i, c.ingest_cost_norm);
    min_q = std::min(min_q, c.query_latency_norm);
    max_q = std::max(max_q, c.query_latency_norm);
  }
  std::printf("ingest_norm in [%.5f, %.5f], query_norm in [%.5f, %.5f]\n", min_i, max_i, min_q,
              max_q);
  std::printf("Paper: the boundary spans roughly ingest 0.007-0.15, query 0.01-0.035 for this\n"
              "stream; the Balance point minimizes the sum of the two normalized costs.\n");
  return 0;
}
