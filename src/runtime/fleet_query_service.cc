#include "src/runtime/fleet_query_service.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/common/logging.h"

namespace focus::runtime {

namespace {

// Splitmix-style combine; the camera string dominates, epoch/cluster spread it.
size_t MixHash(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t FleetQueryService::CacheKeyHash::operator()(const CacheKey& key) const {
  size_t h = std::hash<std::string>{}(key.camera);
  h = MixHash(h, std::hash<uint64_t>{}(key.epoch));
  h = MixHash(h, std::hash<int64_t>{}(static_cast<int64_t>(key.cluster_id)));
  return h;
}

FleetQueryService::FleetQueryService(FleetQueryServiceOptions options,
                                     MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics != nullptr ? metrics : &GlobalMetrics()),
      cluster_(options.num_gpus) {
  FOCUS_CHECK(options.batch_size >= 1);
  // Split the capacity exactly across stripes (never more stripes than
  // entries), so the global bound the capacity promises still holds:
  // sum(stripe capacities) == verdict_cache_capacity.
  const size_t capacity = options_.verdict_cache_capacity;
  num_stripes_ = capacity == 0 ? 1 : std::min(kCacheStripes, capacity);
  for (size_t s = 0; s < num_stripes_; ++s) {
    stripes_[s].capacity = capacity / num_stripes_ + (s < capacity % num_stripes_ ? 1 : 0);
  }
}

FleetQueryService::Unit FleetQueryService::UnitFromRequest(const FleetQueryRequest& request) {
  FOCUS_CHECK(!request.camera.empty());
  const QueryRequest& query = request.query;
  FOCUS_CHECK((query.stream != nullptr) != (query.snapshot != nullptr));
  Unit unit;
  unit.camera = request.camera;
  if (query.stream != nullptr) {
    unit.plan = query.stream->Plan(query.cls, query.kx, query.range);
    unit.gt = &query.stream->gt_cnn();
    unit.stream = query.stream;
  } else {
    FOCUS_CHECK(query.ingest_cnn != nullptr && query.gt_cnn != nullptr);
    unit.epoch = query.snapshot->epoch;
    unit.plan = core::QueryEngine(query.snapshot.get(), query.ingest_cnn, query.gt_cnn)
                    .Plan(query.cls, query.kx, query.range, query.fps);
    unit.gt = query.gt_cnn;
    unit.snapshot = query.snapshot;
    unit.ingest_cnn = query.ingest_cnn;
  }
  return unit;
}

FleetQueryService::Unit FleetQueryService::UnitFromFederated(
    const core::FederatedCameraPlan& camera) {
  Unit unit;
  unit.camera = camera.camera;
  unit.epoch = camera.epoch;
  unit.plan = camera.plan;
  if (camera.stream != nullptr) {
    unit.gt = &camera.stream->gt_cnn();
    unit.stream = camera.stream;
  } else {
    FOCUS_CHECK(camera.snapshot != nullptr);
    unit.gt = camera.gt_cnn;
    unit.snapshot = camera.snapshot;
    unit.ingest_cnn = camera.ingest_cnn;
  }
  return unit;
}

size_t FleetQueryService::StripeIndexOf(const CacheKey& key) const {
  // hash(camera, centroid): epoch deliberately excluded, so every epoch of a
  // centroid shares a stripe and retirement stays a single-stripe sweep.
  size_t h = std::hash<std::string>{}(key.camera);
  h = MixHash(h, std::hash<int64_t>{}(key.cluster_id));
  return h % num_stripes_;
}

std::optional<common::ClassId> FleetQueryService::CacheLookup(const CacheKey& key) {
  CacheStripe& stripe = stripes_[StripeIndexOf(key)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return std::nullopt;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);  // Refresh.
  return it->second->second;
}

void FleetQueryService::CacheInsert(CacheKey key, common::ClassId top1) {
  if (options_.verdict_cache_capacity == 0) {
    return;
  }
  CacheStripe& stripe = stripes_[StripeIndexOf(key)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  FOCUS_CHECK(!stripe.map.contains(key));  // Only misses are inserted.
  stripe.lru.emplace_front(std::move(key), top1);
  stripe.map.emplace(stripe.lru.front().first, stripe.lru.begin());
  while (stripe.map.size() > stripe.capacity) {
    stripe.map.erase(stripe.lru.back().first);
    stripe.lru.pop_back();
    ++stats_.cache_evicted;
  }
}

void FleetQueryService::RetireEpochs(const std::string& camera, uint64_t newest_epoch) {
  for (size_t s = 0; s < num_stripes_; ++s) {
    CacheStripe& stripe = stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto it = stripe.lru.begin(); it != stripe.lru.end();) {
      if (it->first.camera == camera && it->first.epoch < newest_epoch) {
        stripe.map.erase(it->first);
        it = stripe.lru.erase(it);
        ++stats_.cache_retired;
      } else {
        ++it;
      }
    }
  }
}

size_t FleetQueryService::CacheSize() const {
  size_t total = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    total += stripes_[s].map.size();
  }
  return total;
}

std::vector<FleetQueryService::UnitOutcome> FleetQueryService::ExecuteUnitsLocked(
    const std::vector<Unit>& units, common::GpuMillis* submit_out) {
  const common::GpuMillis submit = cluster_.EarliestFree();
  *submit_out = submit;
  const int64_t cache_hits_before = stats_.cache_hits;
  const int64_t cache_misses_before = stats_.cache_misses;

  // Epoch advance first, across the whole admission: the first sighting of a
  // newer epoch of a camera retires every cached verdict of its older epochs
  // (a unit still pinning a stale snapshot in this same admission simply
  // re-pays — its entries re-enter the cache under the old epoch and age out
  // by LRU).
  for (const Unit& unit : units) {
    uint64_t& newest = newest_epoch_[unit.camera];
    if (unit.epoch > newest) {
      RetireEpochs(unit.camera, unit.epoch);
      newest = unit.epoch;
    }
  }

  // Phase 1 — resolve every work item against the global cache and deduplicate
  // within the admission. |local| pins this admission's verdict per key so that
  // concurrent duplicates are counted (and paid) once; fresh keys are marked
  // pending until their launch lands.
  struct LocalVerdict {
    common::ClassId top1 = common::kInvalidClass;
    common::GpuMillis finish_millis = 0.0;
    bool failed = false;
    bool pending = false;
  };
  struct FreshItem {
    size_t unit = 0;
    int64_t cluster_id = -1;
    const video::Detection* centroid = nullptr;
  };
  std::unordered_map<CacheKey, LocalVerdict, CacheKeyHash> local;
  std::vector<FreshItem> fresh;
  for (size_t u = 0; u < units.size(); ++u) {
    for (const core::CentroidWorkItem& item : units[u].plan.work) {
      ++stats_.work_items;
      CacheKey key{units[u].camera, units[u].epoch, item.cluster_id};
      if (local.contains(key)) {
        ++stats_.dedup_hits;
        continue;
      }
      if (const std::optional<common::ClassId> hit = CacheLookup(key)) {
        // A cached verdict costs nothing and waits on nothing: it contributes
        // the admission instant as its finish time.
        ++stats_.cache_hits;
        local.emplace(std::move(key), LocalVerdict{*hit, submit, false, false});
        continue;
      }
      ++stats_.cache_misses;
      fresh.push_back(FreshItem{u, item.cluster_id, item.centroid});
      local.emplace(std::move(key), LocalVerdict{common::kInvalidClass, 0.0, false, true});
    }
  }

  // Phase 2 — group fresh items by model architecture (cnn::ModelPackKey): one
  // launch runs one architecture, but per-camera instances of the same
  // architecture pool freely (each item is still classified through its own
  // Cnn instance — identical outputs to per-element classification). Groups
  // keep first-appearance order; items within a group keep admission order.
  struct PackGroup {
    const cnn::Cnn* cost_rep = nullptr;  // Any member; the key pins the cost curve.
    std::vector<size_t> items;           // Indices into |fresh|.
  };
  std::vector<PackGroup> groups;
  std::map<cnn::ModelPackKey, size_t> group_of;
  for (size_t f = 0; f < fresh.size(); ++f) {
    const cnn::Cnn* gt = units[fresh[f].unit].gt;
    auto [it, inserted] = group_of.try_emplace(gt->pack_key(), groups.size());
    if (inserted) {
      groups.push_back(PackGroup{gt, {}});
    }
    groups[it->second].items.push_back(f);
  }

  // Phase 3 — pack each group into launches (parallelism first, then
  // amortization up to batch_size: the query_service.h schedule), then order
  // submission across groups by estimated launch cost, heaviest first:
  // longest-processing-time onto the least-loaded device keeps heterogeneous
  // GT-CNN mixes balanced. Submission order affects the schedule (latency)
  // only — verdict values are launch-order independent.
  struct Launch {
    size_t group = 0;
    int64_t offset = 0;
    int64_t count = 0;
    common::GpuMillis estimate = 0.0;
  };
  std::vector<Launch> launches;
  for (size_t g = 0; g < groups.size(); ++g) {
    const int64_t n = static_cast<int64_t>(groups[g].items.size());
    const cnn::BatchCostModel cost_model = groups[g].cost_rep->batch_cost_model();
    const int64_t by_amortization =
        (n + options_.batch_size - 1) / static_cast<int64_t>(options_.batch_size);
    const int64_t rounds =
        (by_amortization + options_.num_gpus - 1) / static_cast<int64_t>(options_.num_gpus);
    const int64_t num_launches =
        std::min<int64_t>(n, rounds * static_cast<int64_t>(options_.num_gpus));
    const int64_t base = n / num_launches;
    const int64_t remainder = n % num_launches;
    int64_t offset = 0;
    for (int64_t launch = 0; launch < num_launches; ++launch) {
      const int64_t count = base + (launch < remainder ? 1 : 0);
      launches.push_back(Launch{g, offset, count, cost_model.EstimateMillis(count)});
      offset += count;
    }
  }
  std::stable_sort(launches.begin(), launches.end(),
                   [](const Launch& a, const Launch& b) { return a.estimate > b.estimate; });

  std::vector<const video::Detection*> crops;
  std::vector<cnn::TopKResult> classified;
  std::vector<common::ClassId> launch_verdicts;
  for (const Launch& launch : launches) {
    const PackGroup& group = groups[launch.group];
    // Classify the launch's items. Members may come from different cameras
    // (different Cnn instances of the one architecture): classify each
    // consecutive same-instance segment through its own instance.
    launch_verdicts.clear();
    int64_t seg_begin = launch.offset;
    while (seg_begin < launch.offset + launch.count) {
      const cnn::Cnn* gt = units[fresh[group.items[static_cast<size_t>(seg_begin)]].unit].gt;
      int64_t seg_end = seg_begin;
      crops.clear();
      while (seg_end < launch.offset + launch.count &&
             units[fresh[group.items[static_cast<size_t>(seg_end)]].unit].gt == gt) {
        crops.push_back(fresh[group.items[static_cast<size_t>(seg_end)]].centroid);
        ++seg_end;
      }
      gt->ClassifyBatch(crops, /*k=*/1, &classified);
      for (const cnn::TopKResult& result : classified) {
        launch_verdicts.push_back(result.Top1());
      }
      seg_begin = seg_end;
    }
    const common::GpuMillis cost = group.cost_rep->BatchCostMillis(launch.count);
    // Bounded-retry launch (docs/robustness.md), same loop as QueryService:
    // re-submit at the then-current frontier plus exponential backoff; a
    // timeout occupied a device for the full cost (wasted and accounted).
    const common::RetryPolicy& policy = options_.launch_retry;
    const int max_attempts = std::max(1, policy.max_attempts);
    double backoff = policy.initial_backoff_millis;
    common::GpuMillis at = submit;
    common::Result<GpuJobTicket> ticket = cluster_.TrySubmit(at, cost);
    for (int attempt = 1; !ticket.ok(); ++attempt) {
      if (ticket.error().code == common::ErrorCode::kTimeout) {
        stats_.wasted_gpu_millis += cost;
      }
      if (attempt >= max_attempts || !common::IsRetryable(ticket.error().code)) {
        break;
      }
      ++stats_.launch_retries;
      at = std::max(at, cluster_.EarliestFree()) + backoff;
      backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_millis);
      ticket = cluster_.TrySubmit(at, cost);
    }
    for (int64_t i = 0; i < launch.count; ++i) {
      const FreshItem& item = fresh[group.items[static_cast<size_t>(launch.offset + i)]];
      CacheKey key{units[item.unit].camera, units[item.unit].epoch, item.cluster_id};
      LocalVerdict& verdict = local.at(key);
      FOCUS_CHECK(verdict.pending);
      verdict.pending = false;
      if (ticket.ok()) {
        verdict.top1 = launch_verdicts[static_cast<size_t>(i)];
        verdict.finish_millis = ticket->finish_millis;
        // Only successful verdicts enter the global cache; a failure is not a
        // fact about the centroid.
        CacheInsert(std::move(key), verdict.top1);
      } else {
        verdict.failed = true;
        verdict.finish_millis = at;
      }
    }
    if (ticket.ok()) {
      ++stats_.launches;
      stats_.gpu_millis += cost;
    } else {
      ++stats_.launches_failed;
    }
  }

  // Phase 4 — fold verdicts back per unit, in plan order. A unit finishes when
  // the last launch carrying one of its verdicts finishes; a fully-cached (or
  // empty) unit finishes at the admission instant — zero added latency.
  std::vector<UnitOutcome> outcomes;
  outcomes.reserve(units.size());
  for (const Unit& unit : units) {
    UnitOutcome outcome;
    outcome.verdicts.reserve(unit.plan.work.size());
    outcome.finish_millis = submit;
    for (const core::CentroidWorkItem& item : unit.plan.work) {
      const LocalVerdict& verdict = local.at(CacheKey{unit.camera, unit.epoch, item.cluster_id});
      outcome.verdicts.push_back(verdict.top1);
      outcome.finish_millis = std::max(outcome.finish_millis, verdict.finish_millis);
      outcome.failed = outcome.failed || verdict.failed;
    }
    outcomes.push_back(std::move(outcome));
  }

  stats_.cache_size = CacheSize();
  metrics_->IncrementCounter("fleet.admissions");
  metrics_->IncrementCounter("fleet.cache_hits", stats_.cache_hits - cache_hits_before);
  metrics_->IncrementCounter("fleet.cache_misses", stats_.cache_misses - cache_misses_before);
  metrics_->Observe("fleet.admission_launches", static_cast<double>(launches.size()));
  return outcomes;
}

QueryExecution FleetQueryService::ResolveUnit(const Unit& unit, const UnitOutcome& outcome,
                                              common::GpuMillis submit) const {
  QueryExecution execution;
  execution.submit_millis = submit;
  execution.finish_millis = outcome.finish_millis;
  if (outcome.failed) {
    execution.error = common::Unavailable(
        "GT-CNN launch failed after " +
        std::to_string(std::max(1, options_.launch_retry.max_attempts)) + " attempts");
    return execution;
  }
  execution.result = unit.stream != nullptr
                         ? unit.stream->Resolve(unit.plan, outcome.verdicts)
                         : core::QueryEngine(unit.snapshot.get(), unit.ingest_cnn, unit.gt)
                               .Resolve(unit.plan, outcome.verdicts);
  return execution;
}

QueryExecution FleetQueryService::Execute(const FleetQueryRequest& request) {
  return ExecuteConcurrently({request})[0];
}

std::vector<QueryExecution> FleetQueryService::ExecuteConcurrently(
    const std::vector<FleetQueryRequest>& requests) {
  // Plan outside the service lock: planning only reads immutable indexes and
  // pinned snapshots.
  std::vector<Unit> units;
  units.reserve(requests.size());
  for (const FleetQueryRequest& request : requests) {
    units.push_back(UnitFromRequest(request));
  }

  // Fully-cached fast path: probe the striped cache without |mu_|. If every
  // work item of the admission hits (or duplicates an earlier item), nothing
  // launches — the admission finishes at the cluster's current frontier — so
  // concurrent warm HandleLine calls contend only on their verdicts' stripes,
  // never on the service-wide lock. Any miss falls through to the pooled slow
  // path; verdicts are pure functions of the centroid, so the two paths are
  // byte-identical and differ only in stats/latency accounting, which this
  // path replicates (same hit/dedup counting as phase 1 of the slow path).
  struct FastProbe {
    std::vector<std::vector<common::ClassId>> verdicts;
    int64_t items = 0;
    int64_t hits = 0;
    int64_t dups = 0;
    bool complete = true;
  };
  FastProbe probe;
  probe.verdicts.resize(units.size());
  std::unordered_map<CacheKey, common::ClassId, CacheKeyHash> probed;
  for (size_t u = 0; u < units.size() && probe.complete; ++u) {
    probe.verdicts[u].reserve(units[u].plan.work.size());
    for (const core::CentroidWorkItem& item : units[u].plan.work) {
      ++probe.items;
      CacheKey key{units[u].camera, units[u].epoch, item.cluster_id};
      if (auto it = probed.find(key); it != probed.end()) {
        ++probe.dups;
        probe.verdicts[u].push_back(it->second);
        continue;
      }
      const std::optional<common::ClassId> hit = CacheLookup(key);
      if (!hit.has_value()) {
        probe.complete = false;
        break;
      }
      ++probe.hits;
      probe.verdicts[u].push_back(*hit);
      probed.emplace(std::move(key), *hit);
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  common::GpuMillis submit = 0.0;
  std::vector<UnitOutcome> outcomes;
  bool fast = probe.complete;
  if (fast) {
    // Commit requires that no unit carries an epoch the service hasn't seen:
    // the first sighting of a newer epoch must retire its camera's older
    // verdicts, which is the slow path's job.
    for (const Unit& unit : units) {
      const auto newest = newest_epoch_.find(unit.camera);
      if (unit.epoch > (newest != newest_epoch_.end() ? newest->second : 0)) {
        fast = false;
        break;
      }
    }
  }
  stats_.requests += static_cast<int64_t>(requests.size());
  if (fast) {
    stats_.work_items += probe.items;
    stats_.cache_hits += probe.hits;
    stats_.dedup_hits += probe.dups;
    submit = cluster_.EarliestFree();
    stats_.cache_size = CacheSize();
    metrics_->IncrementCounter("fleet.admissions");
    metrics_->IncrementCounter("fleet.cache_hits", probe.hits);
    metrics_->Observe("fleet.admission_launches", 0.0);
    outcomes.reserve(units.size());
    for (size_t u = 0; u < units.size(); ++u) {
      outcomes.push_back(UnitOutcome{std::move(probe.verdicts[u]), submit, false});
    }
    lock.unlock();  // Resolution reads only the units and outcomes.
  } else {
    outcomes = ExecuteUnitsLocked(units, &submit);
  }

  std::vector<QueryExecution> executions;
  executions.reserve(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    QueryExecution execution = ResolveUnit(units[u], outcomes[u], submit);
    metrics_->IncrementCounter("fleet.requests");
    if (execution.error.has_value()) {
      metrics_->IncrementCounter("fleet.requests_failed");
    } else {
      metrics_->Observe("fleet.latency_millis", execution.latency_millis());
    }
    executions.push_back(std::move(execution));
  }
  return executions;
}

FederatedExecution FleetQueryService::ExecuteFederated(const core::FederatedPlan& plan,
                                                       const std::string& tenant) {
  // Routed through the tenant DRR queues, not executed immediately: the plan
  // enqueues as one entry under |tenant| and the drain admits it in
  // weighted-fair rounds against whatever other tenants already have queued —
  // a federated caller waits its turn exactly like queued single-camera
  // traffic. Other entries the drain completes along the way stay buffered
  // for their own DrainAdmitted/TakeFederated callers.
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ticket = EnqueueLocked(tenant, PendingEntry{std::nullopt, plan, nullptr});
  DrainRoundsLocked();
  auto it = completed_federated_.find(ticket);
  if (it == completed_federated_.end()) {
    // The drain could not admit the plan: it is oversized against
    // |round_cost_budget_millis| and |split_oversized_plans| is disabled. The
    // entry stays queued — observable via QueueDepths() — and the caller gets
    // a typed error instead of an unfulfillable wait.
    FederatedExecution execution;
    execution.error = common::FailedPrecondition(
        "federated plan exceeds round_cost_budget_millis and "
        "split_oversized_plans is disabled; entry remains queued");
    return execution;
  }
  FederatedExecution execution = std::move(it->second);
  completed_federated_.erase(it);
  return execution;
}

std::vector<common::ClassId> FleetQueryService::ClassifySessionPlan(
    const std::string& camera, const core::FocusStream& stream, const core::QueryPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  Unit unit;
  unit.camera = camera;
  unit.plan = plan;
  unit.gt = &stream.gt_cnn();
  stats_.requests += 1;
  common::GpuMillis submit = 0.0;
  std::vector<UnitOutcome> outcomes = ExecuteUnitsLocked({std::move(unit)}, &submit);
  metrics_->IncrementCounter("fleet.session_expansions");
  return std::move(outcomes[0].verdicts);
}

void FleetQueryService::SetTenantWeight(const std::string& tenant, double weight) {
  FOCUS_CHECK(weight > 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  tenant_weights_[tenant] = weight;
}

uint64_t FleetQueryService::EnqueueLocked(const std::string& tenant, PendingEntry entry) {
  const uint64_t ticket = next_ticket_++;
  auto& queue = queues_[tenant];
  queue.emplace_back(ticket, std::move(entry));
  metrics_->IncrementCounter("fleet.enqueued");
  metrics_->IncrementCounter("fleet.tenant." + tenant + ".enqueued");
  metrics_->SetGauge("fleet.tenant." + tenant + ".queue_depth",
                     static_cast<double>(queue.size()));
  return ticket;
}

uint64_t FleetQueryService::Enqueue(FleetQueryRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string tenant = request.tenant;
  return EnqueueLocked(tenant, PendingEntry{std::move(request), std::nullopt, nullptr});
}

uint64_t FleetQueryService::EnqueueFederated(core::FederatedPlan plan,
                                             const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueLocked(tenant, PendingEntry{std::nullopt, std::move(plan), nullptr});
}

void FleetQueryService::DrainRoundsLocked() {
  // Deficit round robin over tenants in name order: each round a tenant earns
  // its weight in credits and dequeues one entry per whole credit (FIFO
  // within the tenant; a federated plan is one entry however many cameras it
  // fans out to). Every round executes as ONE pooled admission — all its
  // entries' units share dedup, cache, and launches, and later rounds submit
  // at the advanced cluster frontier with earlier rounds' verdicts already
  // cached. Completions land in |completed_| / |completed_federated_|.
  //
  // With |round_cost_budget_millis| set, a tenant's round additionally admits
  // only while the estimated GT-CNN cost fits the budget. An entry whose cost
  // alone exceeds a whole round's budget can never be admitted in one piece;
  // the packer splits it into budget-sized slices executed across consecutive
  // rounds (one credit per slice, queue-front slot held until the final
  // slice). Verdicts are pure functions of their centroids, so accumulating
  // them per unit across slices and resolving against the full plan is
  // byte-identical to unsplit execution.
  const double budget = options_.round_cost_budget_millis;
  auto materialize = [this](PendingEntry& entry) -> SplitProgress& {
    if (entry.progress == nullptr) {
      auto progress = std::make_shared<SplitProgress>();
      if (entry.request.has_value()) {
        progress->units.push_back(UnitFromRequest(*entry.request));
      } else {
        progress->units.reserve(entry.federated->cameras.size());
        for (const core::FederatedCameraPlan& camera : entry.federated->cameras) {
          progress->units.push_back(UnitFromFederated(camera));
        }
      }
      entry.progress = std::move(progress);
    }
    return *entry.progress;
  };
  auto item_cost = [](const Unit& unit) -> double {
    return unit.gt != nullptr ? unit.gt->batch_cost_model().EstimateMillis(1) : 0.0;
  };
  auto remaining_cost = [&item_cost](const SplitProgress& progress) -> double {
    double cost = 0.0;
    for (size_t u = progress.next_unit; u < progress.units.size(); ++u) {
      const size_t done = u == progress.next_unit ? progress.next_item : 0;
      cost += static_cast<double>(progress.units[u].plan.work.size() - done) *
              item_cost(progress.units[u]);
    }
    return cost;
  };
  std::map<std::string, double> credit;
  bool work_left = true;
  while (work_left) {
    struct Admitted {
      uint64_t ticket = 0;
      PendingEntry entry;
      size_t unit_begin = 0;
      size_t unit_count = 0;
    };
    // One budget-sized span of items cut from a split entry's unit this round.
    struct Slice {
      std::shared_ptr<SplitProgress> progress;
      size_t prog_unit = 0;
      size_t item_begin = 0;
      size_t item_count = 0;
      size_t exec_index = 0;
    };
    // Split entries whose final slice runs this round: they complete after it.
    struct Finishing {
      uint64_t ticket = 0;
      PendingEntry entry;
    };
    std::vector<Admitted> round;
    std::vector<Slice> slices;
    std::vector<Finishing> finishing;
    work_left = false;
    for (auto& [tenant, queue] : queues_) {
      if (queue.empty()) {
        continue;
      }
      auto weight_it = tenant_weights_.find(tenant);
      credit[tenant] += weight_it != tenant_weights_.end() ? weight_it->second : 1.0;
      int64_t admitted = 0;
      double spent = 0.0;
      while (credit[tenant] >= 1.0 && !queue.empty()) {
        PendingEntry& front = queue.front().second;
        // |resumed| = at least one slice of this entry already executed; its
        // accumulated verdicts force it through the slice path regardless of
        // what its remaining cost would fit.
        const bool resumed = front.progress != nullptr && !front.progress->partial.empty();
        if (budget <= 0.0) {
          // Unbudgeted: admit the whole entry (the historical behavior).
          credit[tenant] -= 1.0;
          ++admitted;
          round.push_back(Admitted{queue.front().first, std::move(front), 0, 0});
          queue.pop_front();
          continue;
        }
        if (!resumed) {
          const double cost = remaining_cost(materialize(front));
          if (spent + cost <= budget) {
            credit[tenant] -= 1.0;
            ++admitted;
            spent += cost;
            round.push_back(Admitted{queue.front().first, std::move(front), 0, 0});
            queue.pop_front();
            continue;
          }
          if (cost <= budget) {
            break;  // Fits a fresh round's budget; resume next round.
          }
          if (!options_.split_oversized_plans) {
            // Oversized with splitting disabled: the entry can never be
            // admitted. Leave it queued (observable via QueueDepths / the
            // typed ExecuteFederated error) and end this tenant's round so
            // the drain terminates.
            break;
          }
        }
        if (spent > 0.0) {
          break;  // A slice always starts on a fresh round's whole budget.
        }
        // Cut one budget-sized slice off the front entry. The entry keeps its
        // queue-front slot until the final slice.
        SplitProgress& progress = materialize(front);
        if (!resumed) {
          stats_.plans_split += 1;
          metrics_->IncrementCounter("fleet.plans_split");
          stats_.requests += 1;  // A split entry is still one request.
        }
        credit[tenant] -= 1.0;
        ++admitted;
        metrics_->IncrementCounter("fleet.plan_slices");
        bool took = false;
        double slice_cost = 0.0;
        while (progress.next_unit < progress.units.size()) {
          const Unit& unit = progress.units[progress.next_unit];
          if (progress.next_item >= unit.plan.work.size()) {
            ++progress.next_unit;
            progress.next_item = 0;
            continue;
          }
          const size_t remaining = unit.plan.work.size() - progress.next_item;
          size_t take = remaining;
          const double per_item = item_cost(unit);
          if (per_item > 0.0) {
            const double room = (budget - slice_cost) / per_item;
            if (room < 1.0) {
              if (took) {
                break;
              }
              take = 1;  // Liveness: every slice moves at least one item.
            } else {
              take = std::min(remaining, static_cast<size_t>(room));
            }
          }
          slices.push_back(
              Slice{front.progress, progress.next_unit, progress.next_item, take, 0});
          slice_cost += static_cast<double>(take) * per_item;
          progress.next_item += take;
          took = true;
          if (slice_cost >= budget) {
            break;
          }
        }
        spent += slice_cost;
        while (progress.next_unit < progress.units.size() &&
               progress.next_item >= progress.units[progress.next_unit].plan.work.size()) {
          ++progress.next_unit;
          progress.next_item = 0;
        }
        if (progress.next_unit >= progress.units.size()) {
          finishing.push_back(Finishing{queue.front().first, std::move(front)});
          queue.pop_front();
        }
        break;  // The slice consumed this tenant's round.
      }
      if (admitted > 0) {
        metrics_->IncrementCounter("fleet.tenant." + tenant + ".admitted", admitted);
        metrics_->SetGauge("fleet.tenant." + tenant + ".queue_depth",
                           static_cast<double>(queue.size()));
      }
      work_left = work_left || !queue.empty();
    }
    if (round.empty() && slices.empty() && finishing.empty()) {
      // Nothing admitted. Keep looping only while some non-empty tenant is
      // still accruing fractional credit; otherwise every remaining front is
      // un-admittable (oversized with splitting disabled) and looping would
      // never terminate.
      bool accruing = false;
      for (const auto& [tenant, queue] : queues_) {
        if (!queue.empty() && credit[tenant] < 1.0) {
          accruing = true;
          break;
        }
      }
      if (!accruing) {
        break;
      }
      continue;
    }
    std::vector<Unit> units;
    for (Admitted& admitted : round) {
      admitted.unit_begin = units.size();
      if (admitted.entry.progress != nullptr) {
        // Cost estimation already planned this entry; reuse its units.
        for (Unit& unit : admitted.entry.progress->units) {
          units.push_back(std::move(unit));
        }
        admitted.entry.progress.reset();
      } else if (admitted.entry.request.has_value()) {
        units.push_back(UnitFromRequest(*admitted.entry.request));
      } else {
        for (const core::FederatedCameraPlan& camera : admitted.entry.federated->cameras) {
          units.push_back(UnitFromFederated(camera));
        }
      }
      admitted.unit_count = units.size() - admitted.unit_begin;
    }
    for (Slice& slice : slices) {
      // Classification-only sub-unit: ExecuteUnitsLocked reads camera, epoch,
      // plan.work, and gt; resolution happens against the full unit at the
      // final slice, so stream/snapshot stay null here.
      const Unit& source = slice.progress->units[slice.prog_unit];
      Unit exec;
      exec.camera = source.camera;
      exec.epoch = source.epoch;
      exec.gt = source.gt;
      exec.plan = source.plan;
      exec.plan.work.assign(
          source.plan.work.begin() + static_cast<ptrdiff_t>(slice.item_begin),
          source.plan.work.begin() + static_cast<ptrdiff_t>(slice.item_begin + slice.item_count));
      slice.exec_index = units.size();
      units.push_back(std::move(exec));
    }
    stats_.requests += static_cast<int64_t>(round.size());
    common::GpuMillis submit = 0.0;
    const std::vector<UnitOutcome> outcomes = ExecuteUnitsLocked(units, &submit);
    for (const Slice& slice : slices) {
      SplitProgress& progress = *slice.progress;
      if (progress.partial.empty()) {
        progress.partial.resize(progress.units.size());
        for (size_t u = 0; u < progress.units.size(); ++u) {
          progress.partial[u].verdicts.assign(progress.units[u].plan.work.size(),
                                              common::ClassId{});
          progress.partial[u].finish_millis = submit;
        }
        progress.first_submit = submit;
      }
      const UnitOutcome& outcome = outcomes[slice.exec_index];
      UnitOutcome& into = progress.partial[slice.prog_unit];
      into.failed = into.failed || outcome.failed;
      into.finish_millis = std::max(into.finish_millis, outcome.finish_millis);
      const size_t copied = std::min(slice.item_count, outcome.verdicts.size());
      for (size_t i = 0; i < copied; ++i) {
        into.verdicts[slice.item_begin + i] = outcome.verdicts[i];
      }
    }
    auto complete = [this](uint64_t ticket, PendingEntry& entry, const Unit* entry_units,
                           const UnitOutcome* entry_outcomes, size_t count,
                           common::GpuMillis entry_submit) {
      if (entry.request.has_value()) {
        QueryExecution execution = ResolveUnit(entry_units[0], entry_outcomes[0], entry_submit);
        metrics_->IncrementCounter("fleet.requests");
        if (execution.error.has_value()) {
          metrics_->IncrementCounter("fleet.requests_failed");
        } else {
          metrics_->Observe("fleet.latency_millis", execution.latency_millis());
        }
        completed_.emplace_back(ticket, std::move(execution));
        return;
      }
      const core::FederatedPlan& plan = *entry.federated;
      FederatedExecution federated;
      federated.submit_millis = entry_submit;
      federated.finish_millis = entry_submit;
      std::vector<core::QueryResult> per_camera;
      per_camera.reserve(count);
      for (size_t u = 0; u < count; ++u) {
        QueryExecution execution = ResolveUnit(entry_units[u], entry_outcomes[u], entry_submit);
        federated.finish_millis = std::max(federated.finish_millis, execution.finish_millis);
        if (execution.error.has_value() && !federated.error.has_value()) {
          federated.error = execution.error;
        }
        per_camera.push_back(std::move(execution.result));
      }
      federated.result = core::MergeFederatedResults(plan, std::move(per_camera));
      metrics_->IncrementCounter("fleet.federated_queries");
      metrics_->IncrementCounter("fleet.federated_cameras", static_cast<int64_t>(count));
      if (federated.error.has_value()) {
        metrics_->IncrementCounter("fleet.requests_failed");
      } else {
        metrics_->Observe("fleet.latency_millis", federated.latency_millis());
      }
      completed_federated_.emplace(ticket, std::move(federated));
    };
    for (Admitted& admitted : round) {
      complete(admitted.ticket, admitted.entry, units.data() + admitted.unit_begin,
               outcomes.data() + admitted.unit_begin, admitted.unit_count, submit);
    }
    for (Finishing& fin : finishing) {
      SplitProgress& progress = *fin.entry.progress;
      complete(fin.ticket, fin.entry, progress.units.data(), progress.partial.data(),
               progress.units.size(), progress.first_submit);
    }
  }
  for (auto it = queues_.begin(); it != queues_.end();) {
    it = it->second.empty() ? queues_.erase(it) : std::next(it);
  }
}

std::vector<std::pair<uint64_t, QueryExecution>> FleetQueryService::DrainAdmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainRoundsLocked();
  return std::exchange(completed_, {});
}

std::optional<FederatedExecution> FleetQueryService::TakeFederated(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = completed_federated_.find(ticket);
  if (it == completed_federated_.end()) {
    return std::nullopt;
  }
  FederatedExecution execution = std::move(it->second);
  completed_federated_.erase(it);
  return execution;
}

std::map<std::string, size_t> FleetQueryService::QueueDepths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, size_t> depths;
  for (const auto& [tenant, queue] : queues_) {
    if (!queue.empty()) {
      depths[tenant] = queue.size();
    }
  }
  return depths;
}

FleetServiceStats FleetQueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetServiceStats snapshot = stats_;
  snapshot.cache_size = CacheSize();
  return snapshot;
}

}  // namespace focus::runtime
