// Tests for the NoScope-style per-query cascade baseline: cost structure (training
// paid once per class, filter+verify per query), the difference detector, result
// sanity against ground truth, and the architectural contrast with Focus that §7.3
// claims (repeated multi-class querying amortizes for Focus but not for NoScope).
#include <gtest/gtest.h>

#include "src/baseline/noscope.h"
#include "src/cnn/ground_truth.h"
#include "src/core/accuracy_evaluator.h"
#include "src/core/focus_stream.h"
#include "src/video/stream_generator.h"

namespace focus::baseline {
namespace {

class NoScopeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(31);
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    run_ = new video::StreamRun(catalog_, profile, 150.0, 30.0, 13);
    gt_ = new cnn::Cnn(cnn::GtCnnDesc(catalog_->world_seed()), catalog_);
    truth_ = new cnn::SegmentGroundTruth(*run_, *gt_);
    auto dominant = truth_->DominantClasses(0.95, 4);
    ASSERT_FALSE(dominant.empty());
    dominant_ = dominant;
  }

  static void TearDownTestSuite() {
    delete truth_;
    delete gt_;
    delete run_;
    delete catalog_;
    truth_ = nullptr;
    gt_ = nullptr;
    run_ = nullptr;
    catalog_ = nullptr;
  }

  static video::ClassCatalog* catalog_;
  static video::StreamRun* run_;
  static cnn::Cnn* gt_;
  static cnn::SegmentGroundTruth* truth_;
  static std::vector<common::ClassId> dominant_;
};

video::ClassCatalog* NoScopeTest::catalog_ = nullptr;
video::StreamRun* NoScopeTest::run_ = nullptr;
cnn::Cnn* NoScopeTest::gt_ = nullptr;
cnn::SegmentGroundTruth* NoScopeTest::truth_ = nullptr;
std::vector<common::ClassId> NoScopeTest::dominant_;

TEST_F(NoScopeTest, TrainingPaidOncePerClass) {
  NoScopeSession session(run_, catalog_, gt_);
  NoScopeQueryResult first = session.Query(dominant_[0]);
  EXPECT_GT(first.train_gpu_millis, 0.0);
  EXPECT_EQ(session.models_trained(), 1u);

  NoScopeQueryResult repeat = session.Query(dominant_[0]);
  EXPECT_DOUBLE_EQ(repeat.train_gpu_millis, 0.0);  // Model cached.
  EXPECT_EQ(session.models_trained(), 1u);
  // But the filter pass is not cached — NoScope has no index.
  EXPECT_GT(repeat.filter_gpu_millis, 0.0);
  EXPECT_DOUBLE_EQ(repeat.filter_gpu_millis, first.filter_gpu_millis);
}

TEST_F(NoScopeTest, EachNewClassTrainsANewModel) {
  ASSERT_GE(dominant_.size(), 2u);
  NoScopeSession session(run_, catalog_, gt_);
  session.Query(dominant_[0]);
  NoScopeQueryResult second = session.Query(dominant_[1]);
  EXPECT_GT(second.train_gpu_millis, 0.0);
  EXPECT_EQ(session.models_trained(), 2u);
}

TEST_F(NoScopeTest, VerifiesOnlyBinaryPositives) {
  NoScopeSession session(run_, catalog_, gt_);
  NoScopeQueryResult result = session.Query(dominant_[0]);
  EXPECT_GT(result.binary_invocations, 0);
  EXPECT_LE(result.verified_detections, result.binary_invocations);
  // Verification is the expensive stage per item, filtering the cheap one.
  EXPECT_DOUBLE_EQ(result.verify_gpu_millis,
                   static_cast<double>(result.verified_detections) *
                       gt_->inference_cost_millis());
}

TEST_F(NoScopeTest, DifferenceDetectorCutsBinaryInvocations) {
  NoScopeSession with(run_, catalog_, gt_);
  NoScopeOptions no_diff;
  no_diff.use_difference_detector = false;
  NoScopeSession without(run_, catalog_, gt_, no_diff);
  NoScopeQueryResult a = with.Query(dominant_[0]);
  NoScopeQueryResult b = without.Query(dominant_[0]);
  EXPECT_LT(a.binary_invocations, b.binary_invocations);
}

TEST_F(NoScopeTest, CheaperThanQueryAllPerQuery) {
  // A training sample proportionate to the short test recording (the 120 s default
  // targets multi-hour streams and would dominate a 150 s run).
  NoScopeOptions options;
  options.train_sample_sec = 20.0;
  NoScopeSession session(run_, catalog_, gt_, options);
  NoScopeQueryResult result = session.Query(dominant_[0]);
  int64_t detections = 0;
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    detections += static_cast<int64_t>(dets.size());
  });
  const common::GpuMillis query_all =
      static_cast<double>(detections) * gt_->inference_cost_millis();
  // Even including training, the cascade beats brute force on a busy stream.
  EXPECT_LT(result.total_gpu_millis(), query_all);
}

TEST_F(NoScopeTest, RecallAgainstGroundTruthIsHigh) {
  NoScopeSession session(run_, catalog_, gt_);
  NoScopeQueryResult result = session.Query(dominant_[0]);
  core::AccuracyEvaluator evaluator(truth_, run_->fps());
  core::PrecisionRecall pr = evaluator.Evaluate(dominant_[0], result.query);
  // GT-CNN verification keeps precision near-perfect; recall is bounded by the
  // binary model's misses.
  EXPECT_GE(pr.precision, 0.9);
  EXPECT_GE(pr.recall, 0.5);
}

TEST_F(NoScopeTest, TimeRangeRestrictsCascade) {
  NoScopeSession session(run_, catalog_, gt_);
  common::TimeRange window{.begin_sec = 0.0, .end_sec = 50.0};
  NoScopeQueryResult windowed = session.Query(dominant_[0], window);
  NoScopeQueryResult full = session.Query(dominant_[0]);
  EXPECT_LE(windowed.binary_invocations, full.binary_invocations);
  for (const auto& [first, last] : windowed.query.frame_runs) {
    EXPECT_LT(static_cast<double>(last) / run_->fps(), window.end_sec);
  }
}

TEST_F(NoScopeTest, FocusAmortizesAcrossClassesNoScopeDoesNot) {
  // The §7.3 architectural claim, measured: query every dominant class once. Focus
  // pays its (tuning + ingest) once and tiny per-query verification; NoScope pays
  // training plus a full filter pass per class.
  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(run_, catalog_, options);
  ASSERT_TRUE(focus_or.ok());
  const core::FocusStream& focus = **focus_or;

  common::GpuMillis focus_total = focus.total_ingest_gpu_millis();
  NoScopeSession session(run_, catalog_, gt_);
  common::GpuMillis noscope_total = 0.0;
  for (common::ClassId cls : dominant_) {
    focus_total += focus.Query(cls).gpu_millis;
    noscope_total += session.Query(cls).total_gpu_millis();
  }
  // With several classes queried, the one-time index already wins.
  EXPECT_LT(focus_total, noscope_total);
}

}  // namespace
}  // namespace focus::baseline
