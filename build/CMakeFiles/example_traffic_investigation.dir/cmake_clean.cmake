file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_investigation.dir/examples/traffic_investigation.cpp.o"
  "CMakeFiles/example_traffic_investigation.dir/examples/traffic_investigation.cpp.o.d"
  "example_traffic_investigation"
  "example_traffic_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
