// Query-time execution service: a cross-query batch scheduler for GT-CNN work on a
// GPU fleet.
//
// The core QueryEngine reports query cost in GPU-milliseconds of GT-CNN work; this
// service turns that into the latency a user experiences by scheduling the centroid
// classifications of one or more concurrent queries onto a shared virtual GpuCluster
// (§5: "We parallelize a query's work across many worker processes if resources are
// idle"). It reproduces the paper's headline translation: 280 GPU-hours of Query-all
// work versus "with a 10-GPU cluster, the query latency on a 24-hour video goes down
// from one hour to less than two minutes" for Focus.
//
// Execution is the plan/execute pipeline of query_engine.h, with batching as the
// native mode:
//   1. every request is Plan()ed (index lookups — free, no GPU work);
//   2. the plans' centroid work items are pooled and deduplicated: a (stream,
//      centroid) classification shared by concurrent queries — the same cluster
//      indexed under several queried classes — is executed once and its verdict
//      shared;
//   3. the unique items are packed into GT-CNN launches: parallelism first (at
//      least one launch per idle GPU while work remains — a query's work fans out
//      across the fleet), then amortization (launches grow up to
//      QueryServiceOptions::batch_size images, paying the per-launch overhead once
//      per batch instead of once per image: cnn::Cnn::BatchCostMillis);
//   4. each plan is Resolve()d from the shared verdict table; a request finishes
//      when the last launch carrying one of its verdicts finishes.
//
// batch_size = 1 reproduces the per-centroid fan-out of the pre-plan/execute
// service exactly (one launch per unique centroid, each costing one inference).
// QueryResult::gpu_millis always accounts the per-centroid cost (the
// execution-independent figure result consumers compare against Query-all); the
// launch-amortized cost actually charged to the cluster is in last_stats().
#ifndef FOCUS_SRC_RUNTIME_QUERY_SERVICE_H_
#define FOCUS_SRC_RUNTIME_QUERY_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/retry.h"
#include "src/core/focus_stream.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/metrics.h"

namespace focus::runtime {

// One query request: against a built FocusStream, or — live query-over-ingest —
// against a published epoch snapshot of a stream still being ingested. Exactly
// one of |stream| / |snapshot| is set.
struct QueryRequest {
  const core::FocusStream* stream = nullptr;  // Must outlive the service call.
  common::ClassId cls = common::kInvalidClass;
  int kx = -1;                 // Dynamic Kx (§5); negative uses the indexed K.
  common::TimeRange range{};   // Restriction to a time window.

  // --- Live snapshot target (src/core/live_snapshot.h) ---
  // The request's shared_ptr keeps the snapshot — and every index entry the
  // plan points into — alive through execution even if the ingest worker
  // publishes a newer epoch mid-query. Two concurrent requests against the
  // same snapshot object share centroid verdicts exactly like two requests
  // against the same stream; requests against different epochs never do (the
  // entries differ). |ingest_cnn| (label-space mapping) and |gt_cnn| (centroid
  // verdicts) are required with a snapshot; |fps| is the recording rate used
  // for time-range planning (runtime::LiveStreamContext carries all three).
  std::shared_ptr<const core::LiveSnapshot> snapshot;
  const cnn::Cnn* ingest_cnn = nullptr;
  const cnn::Cnn* gt_cnn = nullptr;
  double fps = 30.0;
};

struct QueryExecution {
  core::QueryResult result;
  // Virtual wall-clock times on the shared cluster.
  common::GpuMillis submit_millis = 0.0;
  common::GpuMillis finish_millis = 0.0;
  // Set when a GT-CNN launch carrying this request's verdicts stayed failed
  // past QueryServiceOptions::launch_retry: |result| is then the
  // default-constructed empty answer and must not be served as authoritative
  // (the server layer degrades or errors; docs/robustness.md).
  std::optional<common::Error> error;

  common::GpuMillis latency_millis() const { return finish_millis - submit_millis; }
};

struct QueryServiceOptions {
  int num_gpus = 10;   // The paper's example cluster size.
  // Maximum images per GT-CNN launch. 1 reproduces the legacy per-centroid
  // scheduling (every classification its own launch at full single-inference
  // cost); larger values amortize the launch overhead whenever there is more
  // work than idle GPUs.
  int batch_size = 32;
  // Retry policy for GT-CNN launches that fail or time out (injected via the
  // "gpu.launch" / "gpu.timeout" fault sites): each retry re-submits at the
  // cluster's then-current frontier plus the policy's exponential backoff, all
  // in virtual time. A launch that stays failed marks every execution whose
  // verdicts it carried with QueryExecution::error.
  common::RetryPolicy launch_retry;
};

// Accounting of one Execute/ExecuteConcurrently admission (see last_stats()).
struct QueryBatchStats {
  int64_t requests = 0;
  int64_t work_items = 0;    // Sum of plan sizes across requests (pre-dedup).
  int64_t unique_items = 0;  // Centroids actually classified after dedup.
  int64_t dedup_hits = 0;    // work_items - unique_items.
  int64_t launches = 0;      // GT-CNN batches submitted to the cluster.
  // GPU time actually charged to the cluster (launch-amortized). At
  // batch_size = 1 with no dedup this equals the sum of result gpu_millis.
  common::GpuMillis gpu_millis = 0.0;
  // Fault handling (docs/robustness.md): launch re-submissions consumed by
  // launch_retry, launches abandoned after the policy was exhausted (their
  // requests carry QueryExecution::error), and device time burned by launches
  // that timed out after occupying their full cost.
  int64_t launch_retries = 0;
  int64_t launches_failed = 0;
  common::GpuMillis wasted_gpu_millis = 0.0;
};

class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options, MetricsRegistry* metrics = nullptr);

  // Runs one query through the batched pipeline: plan (free), batch the centroid
  // classifications onto the cluster starting at its current frontier, resolve.
  QueryExecution Execute(const QueryRequest& request);

  // Runs a batch of queries submitted simultaneously, sharing the cluster AND the
  // classification work: duplicate (stream, centroid) items across requests are
  // classified once. Returns executions in request order. Models several analysts
  // querying at once.
  std::vector<QueryExecution> ExecuteConcurrently(const std::vector<QueryRequest>& requests);

  // Resets the shared cluster clock (e.g., between experiments).
  void ResetCluster();

  const GpuCluster& cluster() const { return cluster_; }

  // Accounting of the most recent Execute/ExecuteConcurrently call.
  const QueryBatchStats& last_stats() const { return last_stats_; }

 private:
  QueryServiceOptions options_;
  MetricsRegistry* metrics_;
  GpuCluster cluster_;
  QueryBatchStats last_stats_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_QUERY_SERVICE_H_
