# Empty dependencies file for centroid_store_test.
# This may be replaced when dependencies are built.
