// Streaming and batch statistics used by the evaluation harness.
#ifndef FOCUS_SRC_COMMON_STATS_H_
#define FOCUS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace focus::common {

// Welford running mean / variance / min / max.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // Sample variance (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Arithmetic mean of a batch; 0 for an empty batch.
double Mean(const std::vector<double>& xs);

// Geometric mean of a batch of positive values; 0 if any value is non-positive or the
// batch is empty. Used for averaging improvement factors across streams, as is
// conventional for speedup-style metrics.
double GeometricMean(const std::vector<double>& xs);

// Returns the q-quantile (q in [0,1]) using linear interpolation between order
// statistics. Sorts a copy; 0 for an empty batch.
double Quantile(std::vector<double> xs, double q);

// Empirical CDF: given per-item weights keyed by an ordinal (e.g., objects per class),
// produces the cumulative share of total weight covered by the top-N heaviest keys,
// for N = 1..keys. Mirrors the construction of Figure 3 in the paper.
struct CdfPoint {
  // Fraction of keys included, in (0, 1].
  double key_fraction = 0.0;
  // Fraction of total weight covered by those keys, in [0, 1].
  double weight_fraction = 0.0;
};
std::vector<CdfPoint> TopHeavyCdf(const std::map<int, uint64_t>& weight_by_key, size_t total_key_space);

// Smallest fraction of the key space whose heaviest keys cover at least
// |target_weight_fraction| of the total weight. Returns 0 when there is no weight.
double FractionOfKeysCovering(const std::map<int, uint64_t>& weight_by_key, size_t total_key_space,
                              double target_weight_fraction);

// Jaccard index |A ∩ B| / |A ∪ B| of two sets given as sorted unique vectors.
double JaccardIndex(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_STATS_H_
