// Unit tests for the KvStore and the top-K index.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "src/index/kv_store.h"
#include "src/index/topk_index.h"

namespace focus::index {
namespace {

TEST(KvStoreTest, PutGetErase) {
  KvStore store;
  store.Put("a", "1");
  store.Put("b", "2");
  EXPECT_EQ(store.Get("a").value(), "1");
  EXPECT_FALSE(store.Get("c").has_value());
  EXPECT_TRUE(store.Erase("a"));
  EXPECT_FALSE(store.Erase("a"));
  EXPECT_FALSE(store.Get("a").has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OverwriteReplacesValue) {
  KvStore store;
  store.Put("k", "old");
  store.Put("k", "new");
  EXPECT_EQ(store.Get("k").value(), "new");
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, PrefixScanInOrder) {
  KvStore store;
  store.Put("idx/2", "b");
  store.Put("idx/1", "a");
  store.Put("other/1", "x");
  store.Put("idx/3", "c");
  auto rows = store.Scan("idx/");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "idx/1");
  EXPECT_EQ(rows[2].second, "c");
  EXPECT_TRUE(store.Scan("zzz").empty());
}

TEST(KvStoreTest, SaveAndLoadRoundTrip) {
  std::string path = std::filesystem::temp_directory_path() / "focus_kv_test.bin";
  {
    KvStore store;
    store.Put("key1", "value1");
    store.Put("key2", std::string("bin\0ary", 7));
    auto saved = store.SaveToFile(path);
    ASSERT_TRUE(saved.ok()) << saved.error().message;
  }
  KvStore loaded;
  auto ok = loaded.LoadFromFile(path);
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Get("key1").value(), "value1");
  EXPECT_EQ(loaded.Get("key2").value(), std::string("bin\0ary", 7));
  std::remove(path.c_str());
}

TEST(KvStoreTest, LoadMissingFileIsNotFound) {
  KvStore store;
  auto result = store.LoadFromFile("/nonexistent/path/focus.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::ErrorCode::kNotFound);
}

TEST(KvStoreTest, LoadCorruptFileFails) {
  std::string path = std::filesystem::temp_directory_path() / "focus_kv_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a snapshot";
  }
  KvStore store;
  store.Put("pre", "served");
  auto result = store.LoadFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::ErrorCode::kIo);
  // Failed load must not clobber existing contents.
  EXPECT_EQ(store.Get("pre").value(), "served");
  std::remove(path.c_str());
}

ClusterEntry MakeEntry(int64_t id, std::vector<common::ClassId> classes,
                       std::vector<cluster::MemberRun> members) {
  ClusterEntry e;
  e.cluster_id = id;
  e.topk_classes = std::move(classes);
  for (size_t i = 0; i < e.topk_classes.size(); ++i) {
    e.topk_ranks.push_back(static_cast<int32_t>(i) + 1);
  }
  e.members = std::move(members);
  e.size = 0;
  for (const auto& run : e.members) {
    e.size += run.FrameCount();
  }
  e.representative.object_id = e.members.empty() ? 0 : e.members[0].object;
  e.representative.frame = e.members.empty() ? 0 : e.members[0].first_frame;
  e.representative.true_class = e.topk_classes.empty() ? 0 : e.topk_classes[0];
  e.representative.appearance = {1.0f, 0.0f, 0.5f};
  return e;
}

TEST(TopKIndexTest, PostingsMapClassesToClusters) {
  TopKIndex index;
  index.AddCluster(MakeEntry(0, {1, 2, 3}, {{10, 0, 5}}));
  index.AddCluster(MakeEntry(1, {2, 4}, {{11, 3, 9}}));
  EXPECT_EQ(index.num_clusters(), 2u);
  EXPECT_EQ(index.ClustersForClass(2).size(), 2u);
  EXPECT_EQ(index.ClustersForClass(1).size(), 1u);
  EXPECT_TRUE(index.ClustersForClass(99).empty());
  auto classes = index.IndexedClasses();
  EXPECT_EQ(classes.size(), 4u);
}

TEST(TopKIndexTest, MatchesWithinUsesRankedPrefix) {
  ClusterEntry e = MakeEntry(0, {7, 8, 9}, {{1, 0, 1}});
  EXPECT_TRUE(e.MatchesWithin(7, 1));
  EXPECT_FALSE(e.MatchesWithin(8, 1));
  EXPECT_TRUE(e.MatchesWithin(8, 2));
  EXPECT_TRUE(e.MatchesWithin(9, 100));  // kx beyond the list is clamped.
  EXPECT_FALSE(e.MatchesWithin(99, 100));
}

TEST(TopKIndexTest, TotalsAndFrameCounts) {
  TopKIndex index;
  index.AddCluster(MakeEntry(0, {1}, {{10, 0, 4}, {11, 2, 3}}));
  EXPECT_EQ(index.total_indexed_detections(), 7);
  EXPECT_EQ(index.cluster(0).TotalFrameCount(), 7);
}

TEST(TopKIndexTest, KvStoreRoundTripPreservesEverything) {
  TopKIndex index;
  index.AddCluster(MakeEntry(0, {1, 2}, {{10, 0, 5}, {12, 8, 9}}));
  index.AddCluster(MakeEntry(1, {3}, {{11, 3, 9}}));

  KvStore store;
  auto saved = index.SaveTo(store, "stream0");
  ASSERT_TRUE(saved.ok());

  TopKIndex loaded;
  auto ok = loaded.LoadFrom(store, "stream0");
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  ASSERT_EQ(loaded.num_clusters(), 2u);
  EXPECT_EQ(loaded.ClustersForClass(2).size(), 1u);
  const ClusterEntry& e = loaded.cluster(0);
  EXPECT_EQ(e.members.size(), 2u);
  EXPECT_EQ(e.members[1].object, 12);
  EXPECT_EQ(e.topk_classes, (std::vector<common::ClassId>{1, 2}));
  EXPECT_EQ(e.representative.appearance.size(), 3u);
  EXPECT_EQ(e.size, 8);
  EXPECT_EQ(loaded.total_indexed_detections(), index.total_indexed_detections());
}

TEST(TopKIndexTest, LoadFromMissingPrefixFails) {
  KvStore store;
  TopKIndex index;
  auto result = index.LoadFrom(store, "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::ErrorCode::kNotFound);
}

TEST(TopKIndexTest, MergeFromRenumbersAndShiftsFrames) {
  TopKIndex day1;
  day1.AddCluster(MakeEntry(0, {1, 2}, {{10, 0, 5}}));
  day1.AddCluster(MakeEntry(1, {3}, {{11, 6, 9}}));

  TopKIndex day2;
  day2.AddCluster(MakeEntry(0, {2, 5}, {{20, 0, 4}}));

  // Day 2's frames continue day 1's timeline at frame 1000.
  day1.MergeFrom(std::move(day2), /*frame_offset=*/1000);

  ASSERT_EQ(day1.num_clusters(), 3u);
  const ClusterEntry& merged = day1.cluster(2);
  EXPECT_EQ(merged.cluster_id, 2);  // Renumbered dense.
  EXPECT_EQ(merged.members[0].first_frame, 1000);
  EXPECT_EQ(merged.members[0].last_frame, 1004);
  EXPECT_EQ(merged.representative.frame, 1000);

  // Postings span both shards.
  EXPECT_EQ(day1.ClustersForClass(2), (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(day1.ClustersForClass(5), (std::vector<int64_t>{2}));
  EXPECT_EQ(day1.total_indexed_detections(), 6 + 4 + 5);
}

TEST(TopKIndexTest, MergeFromEmptyIsNoop) {
  TopKIndex index;
  index.AddCluster(MakeEntry(0, {7}, {{1, 0, 3}}));
  index.MergeFrom(TopKIndex{}, 500);
  EXPECT_EQ(index.num_clusters(), 1u);
  EXPECT_EQ(index.cluster(0).members[0].first_frame, 0);
}

TEST(TopKIndexTest, MergeIntoEmptyAdoptsEverything) {
  TopKIndex empty;
  TopKIndex shard;
  shard.AddCluster(MakeEntry(0, {4}, {{2, 10, 12}}));
  empty.MergeFrom(std::move(shard));
  ASSERT_EQ(empty.num_clusters(), 1u);
  EXPECT_EQ(empty.ClustersForClass(4).size(), 1u);
  EXPECT_EQ(empty.cluster(0).members[0].first_frame, 10);  // Zero offset.
}

}  // namespace
}  // namespace focus::index
