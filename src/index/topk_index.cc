#include "src/index/topk_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace focus::index {

namespace {

// Minimal binary (de)serialization into std::string values for the KvStore.
void PutRaw(std::string& out, const void* data, size_t n) {
  out.append(static_cast<const char*>(data), n);
}
template <typename T>
void PutPod(std::string& out, T v) {
  PutRaw(out, &v, sizeof(v));
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  template <typename T>
  bool Read(T* v) {
    if (pos_ + sizeof(T) > data_.size()) {
      return false;
    }
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ok() const { return pos_ <= data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

std::string EncodeCluster(const ClusterEntry& e) {
  std::string out;
  PutPod(out, e.cluster_id);
  PutPod(out, e.size);
  // Representative detection.
  PutPod(out, e.representative.frame);
  PutPod(out, e.representative.object_id);
  PutPod(out, e.representative.true_class);
  PutPod(out, e.representative.bbox.x);
  PutPod(out, e.representative.bbox.y);
  PutPod(out, e.representative.bbox.w);
  PutPod(out, e.representative.bbox.h);
  PutPod(out, static_cast<uint32_t>(e.representative.appearance.size()));
  for (float f : e.representative.appearance) {
    PutPod(out, f);
  }
  PutPod(out, static_cast<uint32_t>(e.members.size()));
  for (const cluster::MemberRun& run : e.members) {
    PutPod(out, run.object);
    PutPod(out, run.first_frame);
    PutPod(out, run.last_frame);
  }
  PutPod(out, static_cast<uint32_t>(e.topk_classes.size()));
  for (common::ClassId cls : e.topk_classes) {
    PutPod(out, cls);
  }
  PutPod(out, static_cast<uint32_t>(e.topk_ranks.size()));
  for (int32_t rank : e.topk_ranks) {
    PutPod(out, rank);
  }
  return out;
}

bool DecodeCluster(const std::string& data, ClusterEntry* e) {
  Reader r(data);
  uint32_t n = 0;
  if (!r.Read(&e->cluster_id) || !r.Read(&e->size) || !r.Read(&e->representative.frame) ||
      !r.Read(&e->representative.object_id) || !r.Read(&e->representative.true_class) ||
      !r.Read(&e->representative.bbox.x) || !r.Read(&e->representative.bbox.y) ||
      !r.Read(&e->representative.bbox.w) || !r.Read(&e->representative.bbox.h) || !r.Read(&n)) {
    return false;
  }
  e->representative.appearance.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.Read(&e->representative.appearance[i])) {
      return false;
    }
  }
  if (!r.Read(&n)) {
    return false;
  }
  e->members.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.Read(&e->members[i].object) || !r.Read(&e->members[i].first_frame) ||
        !r.Read(&e->members[i].last_frame)) {
      return false;
    }
  }
  if (!r.Read(&n)) {
    return false;
  }
  e->topk_classes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.Read(&e->topk_classes[i])) {
      return false;
    }
  }
  if (!r.Read(&n)) {
    return false;
  }
  e->topk_ranks.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.Read(&e->topk_ranks[i])) {
      return false;
    }
  }
  return true;
}

std::string ClusterKey(const std::string& prefix, int64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/c/%012lld", static_cast<long long>(id));
  return prefix + buf;
}

}  // namespace

void TopKIndex::AddCluster(ClusterEntry entry) {
  int64_t id = static_cast<int64_t>(clusters_.size());
  entry.cluster_id = id;
  total_detections_ += entry.size;
  for (common::ClassId cls : entry.topk_classes) {
    postings_[cls].push_back(id);
  }
  clusters_.push_back(std::move(entry));
}

const std::vector<int64_t>& TopKIndex::ClustersForClass(common::ClassId cls) const {
  auto it = postings_.find(cls);
  return it == postings_.end() ? empty_ : it->second;
}

std::vector<common::ClassId> TopKIndex::IndexedClasses() const {
  std::vector<common::ClassId> out;
  out.reserve(postings_.size());
  for (const auto& [cls, ids] : postings_) {
    if (!ids.empty()) {
      out.push_back(cls);
    }
  }
  return out;
}

common::Result<bool> TopKIndex::SaveTo(KvStore& store, const std::string& prefix) const {
  std::string meta;
  PutPod(meta, static_cast<uint64_t>(clusters_.size()));
  store.Put(prefix + "/meta", meta);
  for (const ClusterEntry& e : clusters_) {
    store.Put(ClusterKey(prefix, e.cluster_id), EncodeCluster(e));
  }
  return true;
}

common::Result<bool> TopKIndex::LoadFrom(const KvStore& store, const std::string& prefix) {
  auto meta = store.Get(prefix + "/meta");
  if (!meta.has_value()) {
    return common::NotFound("no index under prefix " + prefix);
  }
  Reader r(*meta);
  uint64_t count = 0;
  if (!r.Read(&count)) {
    return common::IoError("corrupt index meta under " + prefix);
  }
  clusters_.clear();
  postings_.clear();
  total_detections_ = 0;
  for (uint64_t i = 0; i < count; ++i) {
    auto blob = store.Get(ClusterKey(prefix, static_cast<int64_t>(i)));
    if (!blob.has_value()) {
      return common::IoError("missing cluster blob " + std::to_string(i));
    }
    ClusterEntry e;
    if (!DecodeCluster(*blob, &e)) {
      return common::IoError("corrupt cluster blob " + std::to_string(i));
    }
    AddCluster(std::move(e));
  }
  return true;
}

void TopKIndex::MergeFrom(TopKIndex other, common::FrameIndex frame_offset) {
  for (ClusterEntry& entry : other.clusters_) {
    entry.representative.frame += frame_offset;
    for (cluster::MemberRun& run : entry.members) {
      run.first_frame += frame_offset;
      run.last_frame += frame_offset;
    }
    // AddCluster renumbers the id and rebuilds the postings.
    AddCluster(std::move(entry));
  }
}

}  // namespace focus::index
