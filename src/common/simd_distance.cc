#include "src/common/simd_distance.h"

namespace focus::common::simd {

namespace {

// Width of the unrolled accumulator bank. Eight float lanes fill one AVX2
// register; on SSE2 the compiler splits them into two 4-lane registers.
constexpr size_t kLanes = 8;

// Dims per early-exit check in the bounded kernels: four lane-banks between
// branches keeps the exit test off the vector critical path while still
// abandoning hopeless candidates after a small prefix.
constexpr size_t kBoundChunk = 32;

inline float ReduceLanes(const float acc[kLanes]) {
  return ((acc[0] + acc[4]) + (acc[1] + acc[5])) +
         ((acc[2] + acc[6]) + (acc[3] + acc[7]));
}

}  // namespace

float SquaredL2(const float* a, const float* b, size_t dim) {
  float acc[kLanes] = {};
  size_t i = 0;
  const size_t n = dim - dim % kLanes;
  for (; i < n; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      float d = a[i + j] - b[i + j];
      acc[j] += d * d;
    }
  }
  float sum = ReduceLanes(acc);
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredL2Bounded(const float* a, const float* b, size_t dim, float bound) {
  float sum = 0.0f;
  size_t i = 0;
  const size_t n_chunk = dim - dim % kBoundChunk;
  for (; i < n_chunk; i += kBoundChunk) {
    float acc[kLanes] = {};
    for (size_t k = 0; k < kBoundChunk; k += kLanes) {
      for (size_t j = 0; j < kLanes; ++j) {
        float d = a[i + k + j] - b[i + k + j];
        acc[j] += d * d;
      }
    }
    sum += ReduceLanes(acc);
    if (sum > bound) {
      return sum;
    }
  }
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float Dot(const float* a, const float* b, size_t dim) {
  float acc[kLanes] = {};
  size_t i = 0;
  const size_t n = dim - dim % kLanes;
  for (; i < n; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      acc[j] += a[i + j] * b[i + j];
    }
  }
  float sum = ReduceLanes(acc);
  for (; i < dim; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

float NormSquared(const float* v, size_t dim) {
  float acc[kLanes] = {};
  size_t i = 0;
  const size_t n = dim - dim % kLanes;
  for (; i < n; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      acc[j] += v[i + j] * v[i + j];
    }
  }
  float sum = ReduceLanes(acc);
  for (; i < dim; ++i) {
    sum += v[i] * v[i];
  }
  return sum;
}

void SquaredL2Batch(const float* query, const float* block, size_t n, size_t dim,
                    float bound, float* out) {
  for (size_t row = 0; row < n; ++row) {
    out[row] = SquaredL2Bounded(query, block + row * dim, dim, bound);
  }
}

}  // namespace focus::common::simd
