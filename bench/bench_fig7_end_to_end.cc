// Figure 7: end-to-end results for all 13 streams with the default Balance policy and
// 95/95 accuracy targets. Top panel: how much cheaper Focus's ingest is than
// Ingest-all; bottom panel: how much faster Focus's queries are than Query-all.
// Paper: ingest 43x-98x cheaper (average 58x); queries 11x-57x faster (average 37x).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);

  bench::PrintHeader("Figure 7: Focus vs Ingest-all (cost) and Query-all (latency), 13 streams");
  std::printf("%-12s %-14s %4s %5s %14s %13s %7s %7s %10s %9s\n", "Stream", "Model", "K", "T",
              "IngestCheaper", "QueryFaster", "Prec", "Recall", "Detections", "Clusters");

  std::vector<double> ingest_factors;
  std::vector<double> query_factors;
  std::vector<double> precisions;
  std::vector<double> recalls;
  for (const video::StreamProfile& profile : video::Table1Profiles()) {
    core::FocusOptions options;  // Balance policy, 95/95 targets.
    bench::StreamOutcome out = bench::RunFocusOnStream(catalog, profile.name, config, options);
    std::printf("%-12s %-14s %4d %5.2f %13.1fx %12.1fx %7.3f %7.3f %10lld %9lld\n",
                out.stream.c_str(), out.model.c_str(), out.k, out.threshold,
                out.ingest_cheaper_by, out.query_faster_by, out.precision, out.recall,
                static_cast<long long>(out.detections), static_cast<long long>(out.clusters));
    ingest_factors.push_back(out.ingest_cheaper_by);
    query_factors.push_back(out.query_faster_by);
    precisions.push_back(out.precision);
    recalls.push_back(out.recall);
  }

  std::printf("\n%-12s %32s %13.1fx %12.1fx %7.3f %7.3f\n", "Average", "",
              common::Mean(ingest_factors), common::Mean(query_factors),
              common::Mean(precisions), common::Mean(recalls));
  std::printf("\nPaper: ingest cheaper by 43x-98x (avg 58x); query faster by 11x-57x (avg 37x);\n"
              ">=95%% precision and recall throughout.\n");
  return 0;
}
