file(REMOVE_RECURSE
  "CMakeFiles/ingest_replay_test.dir/tests/ingest_replay_test.cc.o"
  "CMakeFiles/ingest_replay_test.dir/tests/ingest_replay_test.cc.o.d"
  "ingest_replay_test"
  "ingest_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingest_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
