#include "src/runtime/ingest_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/runtime/worker_pool.h"

namespace focus::runtime {

const char* StreamStateName(StreamState state) {
  switch (state) {
    case StreamState::kHealthy:
      return "Healthy";
    case StreamState::kDegraded:
      return "Degraded";
    case StreamState::kDown:
      return "Down";
  }
  return "Unknown";
}

IngestService::IngestService(IngestServiceOptions options, MetricsRegistry* metrics)
    : options_(options), metrics_(metrics != nullptr ? metrics : &GlobalMetrics()) {
  FOCUS_CHECK(options_.num_worker_threads >= 1);
  FOCUS_CHECK(options_.num_gpus >= 1);
  FOCUS_CHECK(options_.num_shards >= 0);
  FOCUS_CHECK(options_.max_worker_restarts >= 0);
}

int64_t IngestService::FinalizeCadenceFor(const IngestJob& job) const {
  return options_.finalize_every_frames > 0 ? options_.finalize_every_frames
                                            : job.options.finalize_every_frames;
}

size_t IngestService::AddStream(IngestJob job) {
  FOCUS_CHECK(job.run != nullptr);
  if (FinalizeCadenceFor(job) > 0) {
    // Live stream: build the query-side context now, before any worker starts,
    // so concurrent LatestSnapshot/LiveContext lookups never race AddStream.
    FOCUS_CHECK(!live_.contains(job.name));
    auto context = std::make_unique<LiveStreamContext>();
    const video::ClassCatalog& catalog = job.run->catalog();
    context->ingest_cnn = std::make_unique<cnn::Cnn>(job.params.model, &catalog);
    context->gt_cnn =
        std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(catalog.world_seed()), &catalog);
    context->fps = job.run->fps();
    live_.emplace(job.name, std::move(context));
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::shared_ptr<const core::LiveSnapshot> IngestService::LatestSnapshot(
    const std::string& name) const {
  const LiveStreamContext* context = LiveContext(name);
  return context != nullptr ? context->slot.Latest() : nullptr;
}

const LiveStreamContext* IngestService::LiveContext(const std::string& name) const {
  auto it = live_.find(name);
  return it != live_.end() ? it->second.get() : nullptr;
}

StreamHealth IngestService::Health(const std::string& name) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(name);
  return it != health_.end() ? it->second : StreamHealth{};
}

std::map<std::string, StreamHealth> IngestService::FleetHealth() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

void IngestService::RecordFailure(const std::string& name, const common::Error& error,
                                  bool down) {
  std::lock_guard<std::mutex> lock(health_mu_);
  StreamHealth& health = health_[name];
  health.state = down ? StreamState::kDown : StreamState::kDegraded;
  ++health.consecutive_failures;
  health.last_error = error.message;
  health.last_code = error.code;
}

void IngestService::RecordRestart(const std::string& name) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ++health_[name].restarts;
}

void IngestService::RecordSuccess(const std::string& name) {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(name);
  if (it == health_.end()) {
    return;  // Never failed: implicitly Healthy, keep the registry sparse.
  }
  it->second.state = StreamState::kHealthy;
  it->second.consecutive_failures = 0;
}

FleetIngestSummary IngestService::RunAll() {
  FleetIngestSummary summary;
  summary.reports.resize(jobs_.size());

  // Phase 1: run every stream's ingest pipeline on the worker pool. Each worker
  // builds its own CNN instance; results land in pre-sized slots so no locking is
  // needed beyond the pool's own synchronization.
  {
    WorkerPool pool(options_.num_worker_threads, std::max<size_t>(jobs_.size(), 1));
    for (size_t i = 0; i < jobs_.size(); ++i) {
      pool.Submit([this, i, &summary] {
        const IngestJob& job = jobs_[i];
        cnn::Cnn cheap(job.params.model, &job.run->catalog());
        IngestReport& report = summary.reports[i];
        report.name = job.name;
        core::IngestOptions opts = job.options;
        if (options_.num_shards > 0) {
          opts.num_shards = options_.num_shards;
        }
        if (!options_.persist_dir.empty()) {
          opts.persist_dir = options_.persist_dir + "/" + job.name;
        }
        opts.finalize_every_frames = FinalizeCadenceFor(job);
        if (auto live = live_.find(job.name); live != live_.end()) {
          opts.snapshot_slot = &live->second->slot;
        }
        // Supervision loop: a retryable failure restarts the worker in place —
        // on the persistent path the restarted attempt resumes from the last
        // checkpoint (RunIngestChecked re-runs OpenOrRecover), on the volatile
        // path it re-ingests from frame 0. The budget bounds flapping.
        int restarts_left = options_.max_worker_restarts;
        while (true) {
          auto outcome = core::RunIngestChecked(*job.run, cheap, job.params, opts);
          if (outcome.ok()) {
            report.result = *std::move(outcome);
            RecordSuccess(job.name);
            break;
          }
          const common::Error& error = outcome.error();
          const bool give_up = !common::IsRetryable(error.code) || restarts_left <= 0;
          RecordFailure(job.name, error, give_up);
          if (give_up) {
            FOCUS_LOG(kError) << "ingest worker down (" << job.name
                              << "): " << common::ErrorCodeName(error.code) << ": "
                              << error.message;
            report.error = error;
            break;
          }
          --restarts_left;
          RecordRestart(job.name);
          FOCUS_LOG(kWarning) << "ingest worker restart (" << job.name << ", "
                           << restarts_left << " left): " << error.message;
        }
        report.health = Health(job.name);
        const double video_millis = job.run->duration_sec() * 1000.0;
        report.gpu_occupancy =
            video_millis > 0.0 ? report.result.gpu_millis / video_millis : 0.0;
      });
    }
    pool.Drain();
    pool.Shutdown();
  }

  // Phase 2: deterministic cluster accounting, in registration order. Each stream's
  // inference workload is submitted as one batch of per-inference jobs arriving at
  // time zero — the replay upper-bounds queueing because live ingest spreads arrivals
  // over the recording.
  GpuCluster cluster(options_.num_gpus);
  for (size_t i = 0; i < jobs_.size(); ++i) {
    const IngestJob& job = jobs_[i];
    IngestReport& report = summary.reports[i];
    cnn::Cnn cheap(job.params.model, &job.run->catalog());
    report.cluster_finish_millis = cluster.SubmitBatch(
        0.0, report.result.cnn_invocations, cheap.inference_cost_millis());
    summary.total_gpu_occupancy += report.gpu_occupancy;

    metrics_->IncrementCounter("ingest.detections", report.result.detections);
    metrics_->IncrementCounter("ingest.cnn_invocations", report.result.cnn_invocations);
    metrics_->IncrementCounter("ingest.suppressed", report.result.suppressed);
    metrics_->Observe("ingest.gpu_occupancy", report.gpu_occupancy);
    if (report.health.restarts > 0) {
      metrics_->IncrementCounter("ingest.worker_restarts", report.health.restarts);
    }
    if (report.health.state == StreamState::kDown) {
      metrics_->IncrementCounter("ingest.streams_down", 1);
    }
  }
  summary.cluster = cluster.Stats();
  summary.min_gpus_for_realtime =
      std::max(1, static_cast<int>(std::ceil(summary.total_gpu_occupancy)));
  metrics_->SetGauge("ingest.min_gpus_for_realtime", summary.min_gpus_for_realtime);
  return summary;
}

double IngestService::CostPerStreamMonthly(double gpu_occupancy) const {
  return gpu_occupancy * options_.dollars_per_gpu_month;
}

}  // namespace focus::runtime
