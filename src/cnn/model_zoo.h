// The model zoo: the GT-CNN plus the candidate cheap architectures Focus searches
// over (§4.1: the user provides classifier architectures such as ResNet, AlexNet and
// VGG; Focus applies various levels of compression to build its CheapCNN options).
#ifndef FOCUS_SRC_CNN_MODEL_ZOO_H_
#define FOCUS_SRC_CNN_MODEL_ZOO_H_

#include <utility>
#include <vector>

#include "src/cnn/cost_model.h"
#include "src/cnn/model_desc.h"

namespace focus::cnn {

// The generic cheap CNN candidates, ordered roughly most- to least-expensive. The
// first three reproduce the paper's Figure 5 reference models: ResNet18 @ 224,
// ResNet18 minus 3 layers @ 112, and ResNet18 minus 5 layers @ 56 (approximately 8x,
// 28x and 58x cheaper than ResNet152 under the cost model).
std::vector<ModelDesc> GenericCheapCandidates(uint64_t weights_seed);

// Architecture grid (layers, input px) the specialization trainer instantiates
// per-stream models from (§4.3: a family of architectures with different numbers of
// convolutional layers and input resolutions).
struct SpecializedArch {
  int layers;
  int input_px;
};
std::vector<SpecializedArch> SpecializedArchGrid();

// Per-model batch-cost table over the generic cheap zoo: the descriptors paired
// with their BatchCostModel estimators. A fleet-level packer scheduling work
// for heterogeneous models consumes these to weigh launch count against batch
// fill per model instead of assuming one shared per-image cost
// (runtime::FleetQueryService).
std::vector<std::pair<ModelDesc, BatchCostModel>> GenericCandidateBatchCosts(
    uint64_t weights_seed);

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_MODEL_ZOO_H_
