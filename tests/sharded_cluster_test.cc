// Tests for sharded intra-stream clustering (src/cluster/sharded_clusterer.h):
// single-shard equivalence with IncrementalClusterer, parallel/sequential
// dispatch equivalence, conservation of detections through the cross-shard
// merge, and the sharded ingest pipeline path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/cluster/sharded_clusterer.h"
#include "src/common/rng.h"
#include "src/core/ingest_pipeline.h"
#include "src/runtime/worker_pool.h"

namespace focus::cluster {
namespace {

video::Detection Det(common::ObjectId object, common::FrameIndex frame) {
  video::Detection d;
  d.object_id = object;
  d.frame = frame;
  return d;
}

struct SyntheticStream {
  std::vector<video::Detection> detections;
  std::vector<common::FeatureVec> features;
};

// |num_objects| objects, each a noisy observation of its own archetype: the
// steady-state geometry of ingest (objects drift slowly, archetypes are
// near-orthogonal), with every object's detections in stream order.
SyntheticStream MakeStream(size_t num_objects, size_t dim, size_t length, uint64_t seed) {
  common::Pcg32 rng(common::DeriveSeed(seed, dim * 1000 + num_objects));
  std::vector<common::FeatureVec> archetypes;
  archetypes.reserve(num_objects);
  for (size_t i = 0; i < num_objects; ++i) {
    archetypes.push_back(common::RandomUnitVector(dim, rng));
  }
  SyntheticStream stream;
  stream.detections.reserve(length);
  stream.features.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    const size_t object = rng.Next() % num_objects;
    stream.detections.push_back(
        Det(static_cast<common::ObjectId>(object), static_cast<common::FrameIndex>(i)));
    stream.features.push_back(common::PerturbedUnitVector(archetypes[object], 0.15, rng));
  }
  return stream;
}

ShardedClustererOptions Options(size_t num_shards, double threshold,
                                ClustererOptions::Mode mode) {
  ShardedClustererOptions opts;
  opts.base.threshold = threshold;
  opts.base.mode = mode;
  opts.num_shards = num_shards;
  opts.merge_interval = 256;  // Exercise the periodic pass, not just the final one.
  return opts;
}

TEST(ShardedClustererTest, ShardOfIsStablePerObject) {
  ShardedClusterer sharded(Options(4, 0.5, ClustererOptions::Mode::kExact));
  for (common::ObjectId object = 0; object < 64; ++object) {
    const size_t s = sharded.ShardOf(object);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(sharded.ShardOf(object), s);  // Pure function of the id.
  }
}

TEST(ShardedClustererTest, SingleShardMatchesIncrementalClustererExactly) {
  const SyntheticStream stream = MakeStream(24, 16, 600, 7);

  ClustererOptions base;
  base.threshold = 0.5;
  base.mode = ClustererOptions::Mode::kFast;
  IncrementalClusterer reference(base);

  ShardedClusterer sharded(Options(1, 0.5, ClustererOptions::Mode::kFast));

  for (size_t i = 0; i < stream.detections.size(); ++i) {
    const int64_t want = reference.Add(stream.detections[i], stream.features[i]);
    const int64_t got = sharded.Add(stream.detections[i], stream.features[i]);
    ASSERT_EQ(got, want) << "detection " << i;
  }

  const std::vector<Cluster> canonical = sharded.FinalizeClusters();
  const std::vector<Cluster>& expected = reference.clusters();
  ASSERT_EQ(canonical.size(), expected.size());
  for (size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_EQ(canonical[i].id, expected[i].id);
    EXPECT_EQ(canonical[i].size, expected[i].size);
    ASSERT_EQ(canonical[i].members.size(), expected[i].members.size());
    for (size_t m = 0; m < canonical[i].members.size(); ++m) {
      EXPECT_EQ(canonical[i].members[m].object, expected[i].members[m].object);
      EXPECT_EQ(canonical[i].members[m].first_frame, expected[i].members[m].first_frame);
      EXPECT_EQ(canonical[i].members[m].last_frame, expected[i].members[m].last_frame);
    }
  }
  EXPECT_EQ(sharded.merges_folded(), 0);  // One shard: nothing to fold.
}

TEST(ShardedClustererTest, ParallelAssignBatchMatchesSequentialDispatch) {
  const SyntheticStream stream = MakeStream(32, 16, 800, 11);
  const size_t n = stream.detections.size();

  std::vector<ShardedClusterer::WorkItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    items[i] = {&stream.detections[i], &stream.features[i], false};
  }

  ShardedClusterer sequential(Options(4, 0.5, ClustererOptions::Mode::kExact));
  std::vector<int64_t> seq_ids(n);
  sequential.AssignBatch(items.data(), n, nullptr, seq_ids.data());

  ShardedClusterer parallel(Options(4, 0.5, ClustererOptions::Mode::kExact));
  runtime::WorkerPool pool(4, 16, /*pop_batch=*/1);
  std::vector<int64_t> par_ids(n);
  // Several small batches: repeated Submit/Drain cycles through the pool.
  const size_t batch = 96;
  for (size_t offset = 0; offset < n; offset += batch) {
    const size_t count = std::min(batch, n - offset);
    parallel.AssignBatch(items.data() + offset, count, &pool, par_ids.data() + offset);
  }
  pool.Shutdown();

  EXPECT_EQ(par_ids, seq_ids);
  EXPECT_EQ(parallel.total_assignments(), static_cast<int64_t>(n));
}

TEST(ShardedClustererTest, MergedClustersConserveDetectionsAndRuns) {
  const SyntheticStream stream = MakeStream(48, 16, 1000, 13);
  ShardedClusterer sharded(Options(4, 0.5, ClustererOptions::Mode::kExact));
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    sharded.Add(stream.detections[i], stream.features[i]);
  }
  const std::vector<Cluster> canonical = sharded.FinalizeClusters();

  int64_t total_size = 0;
  int64_t total_run_frames = 0;
  for (const Cluster& c : canonical) {
    total_size += c.size;
    for (const MemberRun& run : c.members) {
      total_run_frames += run.FrameCount();
    }
  }
  // Every detection lands in exactly one canonical cluster, with its member
  // run bookkeeping intact through the merge.
  EXPECT_EQ(total_size, static_cast<int64_t>(stream.detections.size()));
  EXPECT_EQ(total_run_frames, static_cast<int64_t>(stream.detections.size()));
  EXPECT_EQ(sharded.total_assignments(), static_cast<int64_t>(stream.detections.size()));
}

TEST(ShardedClustererTest, CrossShardMergeFoldsIdenticalAppearance) {
  ShardedClusterer sharded(Options(2, 0.5, ClustererOptions::Mode::kExact));
  // Two objects that hash to *different* shards but share one appearance.
  common::ObjectId a = 0;
  common::ObjectId b = 1;
  while (sharded.ShardOf(b) == sharded.ShardOf(a)) {
    ++b;
  }
  common::FeatureVec appearance({1.0f, 0.0f, 0.0f, 0.0f});
  const int64_t ga = sharded.Add(Det(a, 0), appearance);
  const int64_t gb = sharded.Add(Det(b, 0), appearance);
  ASSERT_NE(ga, gb);  // Independent shards each grew their own cluster.

  const std::vector<Cluster> canonical = sharded.FinalizeClusters();
  ASSERT_EQ(canonical.size(), 1u);  // ...folded into one canonical cluster.
  EXPECT_EQ(canonical[0].id, std::min(ga, gb));
  EXPECT_EQ(canonical[0].size, 2);
  ASSERT_EQ(canonical[0].members.size(), 2u);
  EXPECT_EQ(sharded.CanonicalOf(ga), sharded.CanonicalOf(gb));
  EXPECT_GE(sharded.merges_folded(), 1);
}

TEST(ShardedClustererTest, DriftedClustersRequeueAndFoldMidStream) {
  // Two long-lived clusters on different shards whose centroids *converge*
  // mid-stream: each object's observations approach the midpoint of the two
  // starting appearances geometrically, so both running-mean centroids drift
  // toward each other while every observation stays within T of its own
  // cluster. Created at the very start, both clusters predate the first
  // incremental merge pass — under the created-since-last-pass policy alone
  // they are never re-queried, and only FinalizeClusters folds them. With
  // drift re-queueing they fold at a periodic pass, mid-stream.
  constexpr size_t kDim = 8;
  constexpr double kThreshold = 0.5;
  constexpr float kR = 0.98f;  // Geometric approach ratio toward the midpoint.
  constexpr size_t kObsPerObject = 400;

  auto build = [&](double requeue_fraction) {
    ShardedClustererOptions opts = Options(2, kThreshold, ClustererOptions::Mode::kExact);
    opts.merge_interval = 50;
    opts.merge_requeue_fraction = requeue_fraction;
    return opts;
  };
  auto run_stream = [&](ShardedClusterer& sharded, int64_t* ga, int64_t* gb) {
    common::ObjectId a = 0;
    common::ObjectId b = 1;
    while (sharded.ShardOf(b) == sharded.ShardOf(a)) {
      ++b;
    }
    common::FeatureVec u(kDim, 0.0f);
    common::FeatureVec v(kDim, 0.0f);
    u[0] = 2.0f;  // ||u - v|| = 2*sqrt(2), far beyond T.
    v[1] = 2.0f;
    common::FeatureVec mid(kDim, 0.0f);
    mid[0] = 1.0f;
    mid[1] = 1.0f;
    auto approach = [&](const common::FeatureVec& from, float shrink) {
      common::FeatureVec f(kDim);
      for (size_t i = 0; i < kDim; ++i) {
        f[i] = mid[i] + (from[i] - mid[i]) * shrink;
      }
      return f;
    };
    float shrink = 1.0f;
    for (size_t k = 0; k < kObsPerObject; ++k) {
      const int64_t la =
          sharded.Add(Det(a, static_cast<common::FrameIndex>(k)), approach(u, shrink));
      const int64_t lb =
          sharded.Add(Det(b, static_cast<common::FrameIndex>(k)), approach(v, shrink));
      if (k == 0) {
        *ga = la;
        *gb = lb;
      } else {
        // The drift must never fragment either track into a second cluster —
        // otherwise the "created since last pass" policy would see new ids.
        ASSERT_EQ(la, *ga) << "obs " << k;
        ASSERT_EQ(lb, *gb) << "obs " << k;
      }
      shrink *= kR;
    }
  };

  // Baseline policy (no re-queue): converged clusters stay separate until the
  // final full pass.
  {
    ShardedClusterer sharded(build(0.0));
    int64_t ga = -1;
    int64_t gb = -1;
    run_stream(sharded, &ga, &gb);
    EXPECT_NE(sharded.CanonicalOf(ga), sharded.CanonicalOf(gb));
    EXPECT_EQ(sharded.merges_folded(), 0);
    EXPECT_EQ(sharded.FinalizeClusters().size(), 1u);  // Only finalize folds.
  }
  // Drift re-queue: the periodic passes fold them mid-stream.
  {
    ShardedClusterer sharded(build(0.5));
    int64_t ga = -1;
    int64_t gb = -1;
    run_stream(sharded, &ga, &gb);
    EXPECT_EQ(sharded.CanonicalOf(ga), sharded.CanonicalOf(gb));
    EXPECT_GE(sharded.merges_folded(), 1);
    EXPECT_EQ(sharded.FinalizeClusters().size(), 1u);
  }
}

// --- Sharded ingest pipeline path ---

core::ClassifiedSample MakeClassifiedSample(const SyntheticStream& stream, int k) {
  core::ClassifiedSample sample;
  sample.k = k;
  common::ObjectId prev_object = -1;
  for (size_t i = 0; i < stream.detections.size(); ++i) {
    core::ClassifiedDetection entry;
    entry.detection = stream.detections[i];
    entry.feature = stream.features[i];
    // Deterministic synthetic top-K: classes derived from the object id.
    const auto object = static_cast<int64_t>(stream.detections[i].object_id);
    for (int pos = 0; pos < k; ++pos) {
      entry.topk.entries.emplace_back(
          static_cast<common::ClassId>((object + pos) % 7),
          0.5f / static_cast<float>(pos + 1));
    }
    // Consecutive detections of one object model the pixel-diff reuse path.
    entry.reused = stream.detections[i].object_id == prev_object;
    prev_object = stream.detections[i].object_id;
    if (entry.reused) {
      ++sample.suppressed;
    } else {
      ++sample.cnn_invocations;
    }
    sample.detections.push_back(std::move(entry));
  }
  return sample;
}

TEST(ShardedIngestPipelineTest, SingleShardMatchesSequentialPath) {
  const SyntheticStream stream = MakeStream(24, 16, 700, 17);
  const core::ClassifiedSample sample = MakeClassifiedSample(stream, 3);

  core::IngestParams params;
  params.k = 3;
  params.cluster_threshold = 0.5;

  core::IngestOptions sequential;
  sequential.cluster_mode = ClustererOptions::Mode::kFast;
  core::IngestOptions sharded = sequential;
  sharded.num_shards = 1;
  sharded.shard_batch = 128;

  const core::IngestResult a = core::RunIngestClassified(sample, params, sequential);
  // Drive the sharded machinery itself (AssignBatch dispatch, global/canonical
  // id mapping, finalize) at one shard: RunIngestClassified would route
  // num_shards == 1 to the plain path, so call the sharded stage directly —
  // it must be indistinguishable from the plain path.
  const core::IngestResult b = core::RunIngestClassifiedSharded(sample, params, sharded);

  EXPECT_EQ(b.detections, a.detections);
  EXPECT_EQ(b.suppressed, a.suppressed);
  EXPECT_EQ(b.num_clusters, a.num_clusters);
  ASSERT_EQ(b.index.num_clusters(), a.index.num_clusters());
  for (size_t i = 0; i < a.index.num_clusters(); ++i) {
    const index::ClusterEntry& ea = a.index.clusters()[i];
    const index::ClusterEntry& eb = b.index.clusters()[i];
    EXPECT_EQ(eb.size, ea.size);
    EXPECT_EQ(eb.topk_classes, ea.topk_classes);
    EXPECT_EQ(eb.topk_ranks, ea.topk_ranks);
    EXPECT_EQ(eb.members.size(), ea.members.size());
  }
}

TEST(ShardedIngestPipelineTest, CallerSuppliedPoolMatchesPerCallPool) {
  const SyntheticStream stream = MakeStream(32, 16, 800, 23);
  const core::ClassifiedSample sample = MakeClassifiedSample(stream, 3);

  core::IngestParams params;
  params.k = 3;
  params.cluster_threshold = 0.5;

  core::IngestOptions options;
  options.cluster_mode = ClustererOptions::Mode::kExact;
  options.num_shards = 3;
  options.shard_batch = 64;
  options.shard_merge_interval = 128;

  // Per-call pool (the default) vs one reusable pool across several runs — a
  // tuner-style caller re-running configurations. Outputs must be identical;
  // the pool only changes who executes the shard tasks.
  const core::IngestResult per_call = core::RunIngestClassifiedSharded(sample, params, options);
  runtime::WorkerPool pool(static_cast<int>(options.num_shards),
                           /*queue_capacity=*/static_cast<size_t>(options.num_shards) * 2,
                           /*pop_batch=*/1);
  for (int rerun = 0; rerun < 3; ++rerun) {
    const core::IngestResult reused =
        core::RunIngestClassifiedSharded(sample, params, options, &pool);
    EXPECT_EQ(reused.detections, per_call.detections);
    EXPECT_EQ(reused.num_clusters, per_call.num_clusters);
    ASSERT_EQ(reused.index.num_clusters(), per_call.index.num_clusters());
    for (size_t i = 0; i < per_call.index.num_clusters(); ++i) {
      const index::ClusterEntry& a = per_call.index.clusters()[i];
      const index::ClusterEntry& b = reused.index.clusters()[i];
      EXPECT_EQ(b.cluster_id, a.cluster_id);
      EXPECT_EQ(b.size, a.size);
      EXPECT_EQ(b.topk_classes, a.topk_classes);
      EXPECT_EQ(b.topk_ranks, a.topk_ranks);
    }
  }
  pool.Shutdown();
}

TEST(ShardedClustererTest, RetiredClusterFoldsWithDuplicateCreatedAfterRetirement) {
  // Regression (ROADMAP: "retired clusters never merge"): shard A builds
  // cluster X for appearance V, X is retired by the active-set cap, and only
  // THEN does shard B first see V and build its own cluster Y. X is no longer
  // in A's active store, so before retired centroids became merge targets the
  // pair never folded; now Y's merge query finds X's frozen centroid and the
  // canonical table carries one cluster for V.
  ShardedClustererOptions opts;
  opts.base.threshold = 0.5;
  opts.base.mode = ClustererOptions::Mode::kExact;
  opts.base.max_active = 2;  // Tiny cap so X retires.
  opts.num_shards = 2;
  opts.merge_interval = 0;  // Only the explicit/final pass merges.
  ShardedClusterer sharded(opts);

  // Pick object ids by their shard.
  auto object_in_shard = [&](size_t shard, common::ObjectId start) {
    common::ObjectId object = start;
    while (sharded.ShardOf(object) != shard) {
      ++object;
    }
    return object;
  };
  const common::ObjectId a0 = object_in_shard(0, 0);
  const common::ObjectId a1 = object_in_shard(0, a0 + 1);
  const common::ObjectId a2 = object_in_shard(0, a1 + 1);
  const common::ObjectId b0 = object_in_shard(1, 0);

  common::Pcg32 rng(0xBEEF);
  const common::FeatureVec v = common::RandomUnitVector(16, rng);
  const common::FeatureVec other1 = common::RandomUnitVector(16, rng);
  const common::FeatureVec other2 = common::RandomUnitVector(16, rng);

  // Shard 0: X for appearance V, then two bigger clusters; creating the third
  // at max_active=2 retires the (size, id)-smallest — X.
  const int64_t x = sharded.Add(Det(a0, 0), v);
  sharded.Add(Det(a1, 1), other1);
  sharded.Add(Det(a1, 2), other1);
  sharded.Add(Det(a2, 3), other2);
  sharded.Add(Det(a2, 4), other2);
  const size_t x_local = static_cast<size_t>(x / 2);
  ASSERT_FALSE(sharded.shard(0).clusters()[x_local].active) << "X must be retired";
  ASSERT_EQ(sharded.shard(0).retired_store().size(), 1u);

  // Shard 1: the duplicate appearance, only now.
  const int64_t y = sharded.Add(Det(b0, 5), v);
  ASSERT_NE(x, y);

  const std::vector<Cluster> table = sharded.FinalizeClusters();
  EXPECT_EQ(sharded.CanonicalOf(y), x) << "duplicate must fold onto the retired cluster";
  EXPECT_GE(sharded.merges_folded(), 1);

  int64_t total_size = 0;
  bool found_fold = false;
  for (const Cluster& c : table) {
    total_size += c.size;
    if (c.id == x) {
      found_fold = true;
      EXPECT_EQ(c.size, 2);  // X's detection + Y's.
      EXPECT_EQ(c.members.size(), 2u);
    }
    EXPECT_NE(c.id, y) << "Y must not appear as its own canonical cluster";
  }
  EXPECT_TRUE(found_fold);
  EXPECT_EQ(total_size, 6);  // All detections conserved through the fold.
}

TEST(ShardedIngestPipelineTest, FourShardsConserveIndexedDetections) {
  const SyntheticStream stream = MakeStream(48, 16, 900, 19);
  const core::ClassifiedSample sample = MakeClassifiedSample(stream, 3);

  core::IngestParams params;
  params.k = 3;
  params.cluster_threshold = 0.5;

  core::IngestOptions options;
  options.cluster_mode = ClustererOptions::Mode::kExact;
  options.num_shards = 4;
  options.shard_batch = 128;
  options.shard_merge_interval = 256;

  const core::IngestResult result = core::RunIngestClassified(sample, params, options);
  EXPECT_EQ(result.detections, static_cast<int64_t>(sample.detections.size()));
  EXPECT_EQ(result.index.total_indexed_detections(), result.detections);
  EXPECT_GT(result.num_clusters, 0);

  // Deterministic under re-run (same sample, same sharding).
  const core::IngestResult again = core::RunIngestClassified(sample, params, options);
  EXPECT_EQ(again.num_clusters, result.num_clusters);
  ASSERT_EQ(again.index.num_clusters(), result.index.num_clusters());
  for (size_t i = 0; i < result.index.num_clusters(); ++i) {
    EXPECT_EQ(again.index.clusters()[i].size, result.index.clusters()[i].size);
  }
}

}  // namespace
}  // namespace focus::cluster
