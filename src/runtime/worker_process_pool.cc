#include "src/runtime/worker_process_pool.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/fault_injection.h"

namespace focus::runtime {

namespace {

// Wait for |fd| to become ready for |events| within the deadline. kTimeout
// when the budget runs out; kOk when ready (including POLLHUP/POLLERR — the
// subsequent send/recv reports the actual condition).
FrameStatus WaitReady(int fd, short events, const CallDeadline& deadline) {
  while (true) {
    const int left = deadline.remaining_millis();
    if (deadline.enabled() && left == 0) {
      return FrameStatus::kTimeout;
    }
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int r = ::poll(&p, 1, deadline.enabled() ? left : -1);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return FrameStatus::kClosed;
    }
    if (r > 0) {
      return FrameStatus::kOk;
    }
    // r == 0: poll timed out; loop re-checks the deadline and exits.
  }
}

// Full-buffer send over a SOCK_STREAM socketpair. MSG_NOSIGNAL turns a peer
// death into EPIPE instead of SIGPIPE — a dead worker must be an error code,
// never a signal into the caller. MSG_DONTWAIT keeps the fd's blocking mode
// out of the picture: every wait goes through WaitReady's poll(), so the
// deadline binds whether the caller handed us a blocking fd or not.
FrameStatus SendAll(int fd, const void* data, size_t bytes, const CallDeadline& deadline) {
  const char* at = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, at, bytes, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      at += n;
      bytes -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const FrameStatus ready = WaitReady(fd, POLLOUT, deadline);
      if (ready != FrameStatus::kOk) {
        return ready;
      }
      continue;
    }
    return FrameStatus::kClosed;  // EPIPE/ECONNRESET: the conversation is over.
  }
  return FrameStatus::kOk;
}

// Full-buffer recv. |*consumed| reports whether any byte arrived before a
// failure — the frame layer uses it to tell an orderly close from a torn
// frame.
FrameStatus RecvExact(int fd, void* data, size_t bytes, const CallDeadline& deadline,
                      bool* consumed) {
  *consumed = false;
  char* at = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd, at, bytes, MSG_DONTWAIT);
    if (n > 0) {
      *consumed = true;
      at += n;
      bytes -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const FrameStatus ready = WaitReady(fd, POLLIN, deadline);
      if (ready != FrameStatus::kOk) {
        return ready;
      }
      continue;
    }
    return FrameStatus::kClosed;  // 0 = orderly EOF; <0 = reset.
  }
  return FrameStatus::kOk;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

[[noreturn]] void WorkerLoop(int fd, const WorkerProcessPool::Handler& handler) {
  std::string request;
  while (RecvFrame(fd, &request, CallDeadline::None()) == FrameStatus::kOk) {
    if (common::FaultPoint("proc.handler")) {
      // Injected handler crash mid-reply: announce an 8-byte frame, deliver
      // half of it, and die without destructors. The parent must classify
      // this as a typed torn frame (kIo), never hang or trust the bytes.
      const uint32_t len = 8;
      ::send(fd, &len, sizeof(len), MSG_NOSIGNAL);
      ::send(fd, "torn", 4, MSG_NOSIGNAL);
      ::_exit(3);
    }
    if (SendFrame(fd, handler(request), CallDeadline::None()) != FrameStatus::kOk) {
      break;
    }
  }
  // _exit, not exit: never run the parent's atexit handlers or flush its
  // forked stdio buffers from the child.
  ::_exit(0);
}

}  // namespace

int CallDeadline::remaining_millis() const {
  if (!enabled_) {
    return -1;
  }
  const auto left = at_ - std::chrono::steady_clock::now();
  if (left <= std::chrono::steady_clock::duration::zero()) {
    return 0;
  }
  const auto millis = std::chrono::ceil<std::chrono::milliseconds>(left).count();
  return millis > 3600000 ? 3600000 : static_cast<int>(millis);
}

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "Ok";
    case FrameStatus::kClosed:
      return "Closed";
    case FrameStatus::kTorn:
      return "Torn";
    case FrameStatus::kOversize:
      return "Oversize";
    case FrameStatus::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

FrameStatus SendFrame(int fd, const std::string& payload, const CallDeadline& deadline) {
  if (payload.size() > kMaxFrameBytes) {
    return FrameStatus::kOversize;
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const FrameStatus prefix = SendAll(fd, &len, sizeof(len), deadline);
  if (prefix != FrameStatus::kOk) {
    return prefix;
  }
  return SendAll(fd, payload.data(), payload.size(), deadline);
}

FrameStatus RecvFrame(int fd, std::string* payload, const CallDeadline& deadline) {
  uint32_t len = 0;
  bool consumed = false;
  const FrameStatus prefix = RecvExact(fd, &len, sizeof(len), deadline, &consumed);
  if (prefix != FrameStatus::kOk) {
    // EOF after part of the length prefix is already a torn frame.
    return (prefix == FrameStatus::kClosed && consumed) ? FrameStatus::kTorn : prefix;
  }
  if (len > kMaxFrameBytes) {
    return FrameStatus::kOversize;  // Corrupt prefix: refuse before allocating.
  }
  payload->resize(len);
  if (len == 0) {
    return FrameStatus::kOk;
  }
  const FrameStatus body = RecvExact(fd, payload->data(), len, deadline, &consumed);
  if (body == FrameStatus::kClosed) {
    return FrameStatus::kTorn;  // The length promised bytes that never came.
  }
  return body;
}

WorkerProcessPool::~WorkerProcessPool() { Shutdown(); }

common::Result<std::monostate> WorkerProcessPool::SpawnAt(int index) {
  if (common::FaultPoint("proc.spawn")) {
    return common::Unavailable("injected: spawn fault for worker " + std::to_string(index));
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return common::IoError(std::string("socketpair: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return common::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::close(fds[0]);
    for (const Worker& sibling : workers_) {
      if (sibling.fd >= 0) {
        ::close(sibling.fd);  // Keep sibling EOFs crisp: one parent fd each.
      }
    }
    WorkerLoop(fds[1], handler_);
  }
  ::close(fds[1]);
  SetNonBlocking(fds[0]);  // Parent-side waits go through poll().
  workers_[index] = Worker{pid, fds[0], false};
  return std::monostate{};
}

common::Result<std::monostate> WorkerProcessPool::Start(int num_workers, Handler handler) {
  if (!workers_.empty()) {
    return common::FailedPrecondition("worker pool already started");
  }
  if (num_workers <= 0) {
    return common::InvalidArgument("num_workers must be > 0, got " +
                                   std::to_string(num_workers));
  }
  handler_ = std::move(handler);
  workers_.assign(num_workers, Worker{-1, -1, true});
  for (int i = 0; i < num_workers; ++i) {
    auto spawned = SpawnAt(i);
    if (!spawned.ok()) {
      Shutdown();
      return spawned;
    }
  }
  return std::monostate{};
}

common::Result<std::string> WorkerProcessPool::Call(int index, const std::string& request,
                                                    int deadline_millis) {
  if (workers_.empty()) {
    return common::FailedPrecondition("worker pool is not running");
  }
  if (index < 0 || index >= size()) {
    return common::InvalidArgument("worker index " + std::to_string(index) +
                                   " out of range [0, " + std::to_string(size()) + ")");
  }
  if (request.size() > kMaxFrameBytes) {
    return common::InvalidArgument("request of " + std::to_string(request.size()) +
                                   " bytes exceeds frame cap");
  }
  Worker& worker = workers_[index];
  if (worker.fd < 0) {
    return common::Unavailable("worker " + std::to_string(index) + " is shut down");
  }
  const std::string who =
      "worker " + std::to_string(index) + " (pid " + std::to_string(worker.pid) + ")";
  const CallDeadline deadline = CallDeadline::After(deadline_millis);
  if (common::FaultPoint("proc.rpc.send")) {
    return common::IoError("injected: rpc send fault to " + who);
  }
  const FrameStatus sent = SendFrame(worker.fd, request, deadline);
  if (sent == FrameStatus::kTimeout) {
    return common::Timeout(who + " did not accept the request within " +
                           std::to_string(deadline_millis) + " ms");
  }
  if (sent != FrameStatus::kOk) {
    return common::Unavailable(who + " died mid-call");
  }
  if (common::FaultPoint("proc.rpc.recv")) {
    // The request is already in flight; the reply will strand in the socket.
    return common::IoError("injected: rpc recv fault from " + who);
  }
  std::string response;
  switch (RecvFrame(worker.fd, &response, deadline)) {
    case FrameStatus::kOk:
      return response;
    case FrameStatus::kTimeout:
      return common::Timeout(who + " exceeded the " + std::to_string(deadline_millis) +
                             " ms call deadline");
    case FrameStatus::kTorn:
      return common::IoError("torn frame from " + who + ": short read mid-frame");
    case FrameStatus::kOversize:
      return common::IoError("oversized frame from " + who + ": length prefix exceeds " +
                             std::to_string(kMaxFrameBytes) + " bytes");
    case FrameStatus::kClosed:
    default:
      return common::Unavailable(who + " died mid-call");
  }
}

bool WorkerProcessPool::Alive(int index) {
  if (index < 0 || index >= size()) {
    return false;
  }
  Worker& worker = workers_[index];
  if (worker.reaped || worker.pid <= 0) {
    return false;
  }
  const pid_t r = ::waitpid(worker.pid, nullptr, WNOHANG);
  if (r == worker.pid) {
    worker.reaped = true;
    return false;
  }
  return r == 0;
}

void WorkerProcessPool::Kill(int index) {
  if (index < 0 || index >= size()) {
    return;
  }
  Worker& worker = workers_[index];
  if (worker.reaped || worker.pid <= 0) {
    return;
  }
  ::kill(worker.pid, SIGKILL);
  ::waitpid(worker.pid, nullptr, 0);
  worker.reaped = true;
}

common::Result<std::monostate> WorkerProcessPool::Respawn(int index) {
  if (workers_.empty()) {
    return common::FailedPrecondition("worker pool is not running");
  }
  if (index < 0 || index >= size()) {
    return common::InvalidArgument("worker index " + std::to_string(index) +
                                   " out of range [0, " + std::to_string(size()) + ")");
  }
  Kill(index);
  Worker& worker = workers_[index];
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  worker.pid = -1;
  worker.reaped = true;
  return SpawnAt(index);
}

pid_t WorkerProcessPool::worker_pid(int index) const {
  if (index < 0 || index >= size()) {
    return -1;
  }
  return workers_[index].pid;
}

void WorkerProcessPool::Shutdown() {
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);  // Child sees EOF and _exit(0)s.
      worker.fd = -1;
    }
  }
  for (Worker& worker : workers_) {
    if (!worker.reaped && worker.pid > 0) {
      ::waitpid(worker.pid, nullptr, 0);
      worker.reaped = true;
    }
  }
  workers_.clear();
  handler_ = nullptr;
}

}  // namespace focus::runtime
