// Focus vs a NoScope-style per-query cascade (§7.3 "Context-specific model
// specialization").
//
// NoScope optimizes a single (class, stream) query at query time; Focus splits work
// between ingest and query so one index serves every class. This bench quantifies
// the §7.3 contrast on one busy stream: cumulative GPU time as more distinct classes
// get queried, and per-query latency once models/indexes are warm. Query-all is the
// common upper bound.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/noscope.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "jacksonh", config);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(run, gt);
  std::vector<common::ClassId> classes = truth.DominantClasses(0.99, 10);
  if (classes.size() < 3) {
    std::fprintf(stderr, "not enough distinct classes in the sample\n");
    return 1;
  }

  int64_t detections = focus.ingest().detections;
  const common::GpuMillis query_all_each =
      static_cast<double>(detections) * gt.inference_cost_millis();

  bench::PrintHeader("Focus vs NoScope-style cascade (jacksonh, " +
                     std::to_string(classes.size()) + " distinct classes queried)");
  std::printf("%18s %16s %16s %16s\n", "ClassesQueried", "Focus(s)", "NoScope(s)",
              "Query-all(s)");

  baseline::NoScopeSession noscope(&run, &catalog, &gt);
  common::GpuMillis focus_cum = focus.total_ingest_gpu_millis();  // One-time index cost.
  common::GpuMillis noscope_cum = 0.0;
  common::GpuMillis query_all_cum = 0.0;
  for (size_t i = 0; i < classes.size(); ++i) {
    focus_cum += focus.Query(classes[i]).gpu_millis;
    noscope_cum += noscope.Query(classes[i]).total_gpu_millis();
    query_all_cum += query_all_each;
    std::printf("%18zu %16.1f %16.1f %16.1f\n", i + 1, focus_cum / 1000.0,
                noscope_cum / 1000.0, query_all_cum / 1000.0);
  }

  // Warm per-query latency: both systems have their models; Focus also has its index.
  common::GpuMillis focus_warm = focus.Query(classes[0]).gpu_millis;
  common::GpuMillis noscope_warm = noscope.Query(classes[0]).total_gpu_millis();
  std::printf("\nWarm repeat query of one class: Focus %.1f s, NoScope %.1f s (%.0fx), "
              "Query-all %.1f s\n",
              focus_warm / 1000.0, noscope_warm / 1000.0,
              focus_warm > 0 ? noscope_warm / focus_warm : 0.0, query_all_each / 1000.0);

  std::printf(
      "\nExpected shape: NoScope beats Query-all per query but its cumulative cost\n"
      "grows with a training + full-filter pass per class; Focus pays ingest once\n"
      "and each additional class costs only centroid verification, so the curves\n"
      "cross within a handful of distinct classes.\n");
  return 0;
}
