// Growable mmap-backed file arena for the centroid working set.
//
// CentroidStore's contiguous SoA arena is the state that makes queries cheap,
// but on the heap it is volatile: a crashed ingest worker re-runs the cheap CNN
// and re-clusters the whole backlog, and long retention windows are capped by
// RAM. ArenaFile maps the five store sections (centroid rows, head tile, norms,
// sizes, ids) as one file, so
//   - restart is an O(arena) page-in instead of an O(stream) replay, and
//   - arenas larger than RAM page instead of OOM (the staged scan touches a
//     small hot subset; the OS keeps cold rows on disk).
// The mapped sections are plain contiguous memory, so the SIMD scan kernels run
// on them unchanged.
//
// File layout (little-endian; section byte offsets are recorded in the
// header, initially packed in this order):
//
//   [header slot A: kHeaderSlotBytes]   magic, version, dim, head_dim,
//   [header slot B: kHeaderSlotBytes]   capacity_rows, committed_rows,
//                                       generation, file_bytes,
//                                       section offsets, crc32
//   [arena  : capacity_rows * dim       f32]   (64-byte aligned starts)
//   [head   : capacity_rows * head_dim  f32]
//   [norms  : capacity_rows             f32]
//   [sizes  : capacity_rows             i64]
//   [ids    : capacity_rows             i64]
//
// Growth (amortized doubling) appends a fresh copy of every section beyond
// the current end of file and republishes the header with the new offsets:
// nothing the old header describes is overwritten, so a crash at any point
// during growth recovers through whichever header is durable. The abandoned
// old regions cost at most one extra copy of the final sections (geometric
// series) — the same slack order as the capacity doubling itself.
//
// Durability contract (the record_log discipline applied to a mapped file):
//   - Mutations write through the mapping; the OS may flush pages at any time,
//     so between checkpoints the on-disk rows are torn (mixed old/new).
//   - Commit(rows) is the checkpoint barrier: msync the data sections, then
//     publish {generation + 1, rows} through the *inactive* header slot
//     (ping-pong) and msync it. A torn header write leaves the other slot
//     valid; Open adopts the valid slot with the highest generation.
//   - Rows at index >= committed_rows are an uncommitted tail: recovery drops
//     them (the torn-tail truncation of record_log, by row count).
//   - Rows at index < committed_rows mutated after the checkpoint are restored
//     from an undo log of pre-images (ArenaUndo records appended to a
//     RecordLogWriter *before* the row is overwritten — write-ahead undo).
//     RollBackTo() replays pre-images in reverse to return the mapping to the
//     checkpointed generation exactly.
//
// See docs/persistence.md for the full checkpoint/recovery protocol the
// clusterer layers on top.
#ifndef FOCUS_SRC_STORAGE_ARENA_FILE_H_
#define FOCUS_SRC_STORAGE_ARENA_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/storage/fsync_policy.h"

namespace focus::storage {

// One undo-log record: either a checkpoint marker (generation + row count at
// the commit) or the pre-image of one row about to be overwritten. The head-
// tile row is not stored — it is the first head_dim floats of the centroid.
struct ArenaUndo {
  enum class Kind : uint8_t { kMarker = 1, kRow = 2 };

  Kind kind = Kind::kMarker;
  // kMarker: the just-committed generation and its committed row count.
  uint64_t generation = 0;
  uint64_t rows = 0;
  // kRow: pre-image of row |row| (id/size/norm plus the full centroid).
  uint64_t row = 0;
  int64_t id = 0;
  int64_t size = 0;
  float norm = 0.0f;
  std::vector<float> centroid;

  std::string Encode() const;
  static bool Decode(std::string_view bytes, ArenaUndo* out);
};

class ArenaFile {
 public:
  // Opens (or creates) the arena at |path|. A fresh or empty file starts
  // uninitialized (dim() == 0) at generation 0; Initialize() fixes the shape.
  // An existing file is validated (magic/version/header CRC, both slots) and
  // mapped at its newest committed generation.
  static common::Result<std::unique_ptr<ArenaFile>> Open(const std::string& path);

  ~ArenaFile();

  ArenaFile(const ArenaFile&) = delete;
  ArenaFile& operator=(const ArenaFile&) = delete;

  // Fixes dim/head_dim and maps an initial empty capacity. Only valid while
  // uninitialized.
  common::Result<bool> Initialize(size_t dim, size_t head_dim);

  bool initialized() const { return dim_ > 0; }
  // Whether the file is currently mapped. A failed Reserve can leave the file
  // unmapped (mmap failure after the old mapping was released); callers that
  // want to salvage the in-memory contents must check this first.
  bool mapped() const { return map_ != nullptr; }
  size_t dim() const { return dim_; }
  size_t head_dim() const { return head_dim_; }
  uint64_t capacity_rows() const { return capacity_rows_; }
  uint64_t committed_rows() const { return committed_rows_; }
  uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

  // Ensures capacity for |rows| rows, growing the file (amortized doubling)
  // and remapping when needed. Growth moves sections, so all section pointers
  // are invalidated; callers must re-read them after any Reserve.
  common::Result<bool> Reserve(uint64_t rows);

  // Section base pointers, valid until the next Reserve. Writes go straight to
  // the page cache (and eventually disk); Commit makes them durable.
  float* arena() { return arena_base_; }
  float* head() { return head_base_; }
  float* norms() { return norms_base_; }
  int64_t* sizes() { return sizes_base_; }
  int64_t* ids() { return ids_base_; }
  const float* arena() const { return arena_base_; }
  const float* head() const { return head_base_; }
  const float* norms() const { return norms_base_; }
  const int64_t* sizes() const { return sizes_base_; }
  const int64_t* ids() const { return ids_base_; }

  // Checkpoint barrier: msync the data sections (per the fsync policy), then
  // publish {generation + 1, rows} through the inactive header slot. Returns
  // the new generation. Safe to retry after a failure: the active slot only
  // advances on success, so a torn inactive-slot write is simply rewritten,
  // and skipped generations are harmless (Open adopts the highest).
  common::Result<uint64_t> Commit(uint64_t rows);

  // Fsync cadence for Commit. kEveryCommit (the default) is the full
  // kernel-crash durability contract; kEveryN/kNever trade crash windows for
  // commit latency (see fsync_policy.h). Initialize/Reserve always sync —
  // layout publishes must be ordered regardless of checkpoint cadence.
  void SetFsyncPolicy(FsyncOptions fsync) { fsync_ = fsync; }
  FsyncOptions fsync_policy() const { return fsync_; }

  // Restores the mapping to the checkpoint with generation |generation| using
  // the undo records of |log| (as returned by ReadRecordLog on the undo log):
  // applies, in reverse order, every row pre-image recorded after the last
  // kMarker with that generation — i.e. undoes all mutations of the crashed
  // window — and adopts the marker's row count as committed_rows. With no
  // matching marker, no mutations happened after that checkpoint and only the
  // row count is restored (from the header when it already matches, otherwise
  // fails). Idempotent: pre-images are absolute row contents. generation()
  // keeps the header's (possibly higher) value so the caller's immediate
  // re-commit publishes a generation above every slot on disk. Returns true
  // when anything had to be undone (row pre-images applied, the header was
  // ahead of the target, or the window marker itself is missing and must be
  // re-established) — false means the on-disk state already *was* the
  // checkpoint with an intact window marker, and the caller may skip its
  // re-seal.
  common::Result<bool> RollBackTo(uint64_t generation,
                                  const std::vector<std::string>& log_records);

  // Writes one row's content (centroid + derived head prefix + norm/size/id).
  // Used by RollBackTo and by the store's mutation paths.
  void WriteRow(uint64_t row, int64_t id, int64_t size, float norm, const float* centroid);

  // Header-slot size; slot B starts at this offset, data at twice it.
  static constexpr size_t kHeaderSlotBytes = 4096;

 private:
  ArenaFile() = default;

  common::Result<bool> MapBytes(size_t bytes);
  common::Result<bool> WriteHeaderSlot(int slot, bool sync = true);
  void ComputeSectionPointers();

  std::string path_;
  int fd_ = -1;
  uint8_t* map_ = nullptr;
  size_t map_bytes_ = 0;

  size_t dim_ = 0;
  size_t head_dim_ = 0;
  uint64_t capacity_rows_ = 0;
  uint64_t committed_rows_ = 0;
  uint64_t generation_ = 0;
  int active_slot_ = 0;  // Slot holding the newest committed header.
  FsyncOptions fsync_;   // Commit cadence; Initialize/Reserve always sync.
  int64_t commit_count_ = 0;
  // Section byte offsets (header-recorded; growth relocates sections into
  // fresh space beyond the old file end, leaving the old header's layout
  // valid until the new one is published).
  size_t arena_off_ = 0;
  size_t head_off_ = 0;
  size_t norms_off_ = 0;
  size_t sizes_off_ = 0;
  size_t ids_off_ = 0;

  float* arena_base_ = nullptr;
  float* head_base_ = nullptr;
  float* norms_base_ = nullptr;
  int64_t* sizes_base_ = nullptr;
  int64_t* ids_base_ = nullptr;
};

// Opens the arena at |arena_path| and restores the checkpoint |generation|
// that the caller's meta snapshot committed: rolls post-checkpoint row
// mutations back via the undo log at |undo_path|. Generation 0 (the committed
// state is empty) treats a torn or unopenable arena as disposable and
// recreates it. *needs_reseal is set when anything had to be repaired — or
// the undo window marker must be re-established — and the caller must publish
// a fresh checkpoint before mutating; false means the on-disk state already
// was the checkpoint (clean restart fast path). Shared by the single and
// sharded clusterer recovery so the protocol lives in exactly one place.
common::Result<std::unique_ptr<ArenaFile>> OpenArenaAtCheckpoint(
    const std::string& arena_path, const std::string& undo_path, uint64_t generation,
    bool* needs_reseal);

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_ARENA_FILE_H_
