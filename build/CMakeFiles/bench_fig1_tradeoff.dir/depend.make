# Empty dependencies file for bench_fig1_tradeoff.
# This may be replaced when dependencies are built.
