// Drift and the §4.3 periodic retraining loop, quantified.
//
// Scenario: a deployment specialized for one content mix suddenly faces another
// (the camera is redirected, the channel changes programming). The stale model's Ls
// classes no longer cover the scene, so queries for the new dominant classes fall
// into OTHER — recall is preserved (OTHER is indexed too) but query latency balloons
// because every OTHER cluster must be verified with the GT-CNN. The retraining loop
// detects the drift from GT-labelled probes and re-specializes, restoring the
// latency profile. This bench measures all three phases on the same recording.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/common/logging.h"
#include "src/core/drift_monitor.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_engine.h"

namespace {

using namespace focus;

struct PhaseOutcome {
  double ls_coverage = 0.0;
  double mean_query_ms = 0.0;
  double mean_recall = 0.0;
};

PhaseOutcome Deploy(const video::ClassCatalog& catalog, const video::StreamRun& run,
                    const cnn::ModelDesc& model, const cnn::Cnn& gt) {
  core::IngestParams params;
  params.model = model;
  params.k = 4;
  params.cluster_threshold = 0.6;
  cnn::Cnn cheap(model, &catalog);
  core::IngestResult ingest = core::RunIngest(run, cheap, params);

  cnn::SegmentGroundTruth truth(run, gt);
  core::AccuracyEvaluator evaluator(&truth, run.fps());
  core::QueryEngine engine(&ingest.index, &cheap, &gt);
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 8);

  PhaseOutcome outcome;
  int64_t covered = 0;
  int64_t total = 0;
  for (const auto& [cls, n] : truth.objects_per_class()) {
    total += n;
    for (common::ClassId ls_cls : model.classes) {
      if (ls_cls == cls) {
        covered += n;
        break;
      }
    }
  }
  outcome.ls_coverage = total > 0 ? static_cast<double>(covered) / total : 0.0;
  for (common::ClassId cls : dominant) {
    core::QueryResult qr = engine.Query(cls, params.k, {}, run.fps());
    outcome.mean_query_ms += qr.gpu_millis;
    outcome.mean_recall += evaluator.Evaluate(cls, qr).recall;
  }
  if (!dominant.empty()) {
    outcome.mean_query_ms /= static_cast<double>(dominant.size());
    outcome.mean_recall /= static_cast<double>(dominant.size());
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  // "Before": the mix the model was specialized on. "After": the shifted content.
  video::StreamRun before = bench::MakeRun(catalog, "auburn_c", config);
  video::StreamRun after = bench::MakeRun(catalog, "msnbc", config);

  cnn::SpecializationOptions spec;
  spec.ls = 15;
  cnn::ClassDistributionEstimate before_dist =
      cnn::EstimateClassDistribution(before, gt, std::min(240.0, before.duration_sec()), 10);
  cnn::ModelDesc stale = cnn::TrainSpecializedModel(
      before_dist, spec, before.profile().appearance_variability, config.world_seed);

  bench::PrintHeader("Drift + retraining loop (specialized on auburn_c, content becomes msnbc)");
  std::printf("%-28s %12s %16s %10s\n", "Phase", "LsCoverage", "MeanQuery(ms)", "Recall");

  PhaseOutcome healthy = Deploy(catalog, before, stale, gt);
  std::printf("%-28s %11.1f%% %16.1f %10.3f\n", "healthy (pre-shift)", 100.0 * healthy.ls_coverage,
              healthy.mean_query_ms, healthy.mean_recall);

  PhaseOutcome stale_phase = Deploy(catalog, after, stale, gt);
  std::printf("%-28s %11.1f%% %16.1f %10.3f\n", "stale model on new content",
              100.0 * stale_phase.ls_coverage, stale_phase.mean_query_ms,
              stale_phase.mean_recall);

  // The controller's detection half: a probe of the new content must flag drift.
  core::DriftMonitorOptions monitor_options;
  monitor_options.min_objects = 20;
  core::DriftMonitor monitor(before_dist, stale.classes, monitor_options);
  core::DriftReport report = monitor.AddProbe(
      core::ProbeStream(after, gt, 0.0, std::min(120.0, after.duration_sec()), 10));
  std::printf("\nDrift probe: TV=%.2f, Ls coverage=%.1f%% -> retrain %s\n",
              report.total_variation, 100.0 * report.ls_coverage,
              report.retrain_recommended ? "RECOMMENDED" : "not needed");

  // Retrain on the new content and redeploy.
  cnn::ClassDistributionEstimate after_dist =
      cnn::EstimateClassDistribution(after, gt, std::min(240.0, after.duration_sec()), 10);
  cnn::ModelDesc retrained = cnn::TrainSpecializedModel(
      after_dist, spec, after.profile().appearance_variability, config.world_seed + 1);
  PhaseOutcome recovered = Deploy(catalog, after, retrained, gt);
  std::printf("%-28s %11.1f%% %16.1f %10.3f\n", "retrained model",
              100.0 * recovered.ls_coverage, recovered.mean_query_ms, recovered.mean_recall);

  std::printf(
      "\nExpected shape: the stale phase keeps recall (OTHER still indexes the new\n"
      "classes) but pays a much larger mean query latency; the probe flags drift;\n"
      "the retrained model restores coverage and the latency profile.\n");
  return 0;
}
