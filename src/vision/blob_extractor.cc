#include "src/vision/blob_extractor.h"

#include <algorithm>
#include <queue>

namespace focus::vision {

namespace {

video::FrameBuffer Dilate(const video::FrameBuffer& mask, int radius) {
  if (radius <= 0) {
    return mask;
  }
  video::FrameBuffer out(mask.width(), mask.height(), 0);
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask.At(x, y) == 0) {
        continue;
      }
      int x0 = std::max(0, x - radius);
      int x1 = std::min(mask.width() - 1, x + radius);
      int y0 = std::max(0, y - radius);
      int y1 = std::min(mask.height() - 1, y + radius);
      for (int yy = y0; yy <= y1; ++yy) {
        for (int xx = x0; xx <= x1; ++xx) {
          out.Set(xx, yy, 255);
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<video::BBox> BlobExtractor::Extract(const video::FrameBuffer& mask) const {
  video::FrameBuffer work = Dilate(mask, options_.dilate_radius);
  const int w = work.width();
  const int h = work.height();
  std::vector<int32_t> label(static_cast<size_t>(w) * h, 0);
  std::vector<video::BBox> blobs;
  int32_t next_label = 1;
  std::queue<std::pair<int, int>> frontier;

  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      size_t sidx = static_cast<size_t>(sy) * w + sx;
      if (work.At(sx, sy) == 0 || label[sidx] != 0) {
        continue;
      }
      // BFS flood fill of one 8-connected component.
      int32_t id = next_label++;
      label[sidx] = id;
      frontier.emplace(sx, sy);
      int min_x = sx, max_x = sx, min_y = sy, max_y = sy;
      int area = 0;
      while (!frontier.empty()) {
        auto [x, y] = frontier.front();
        frontier.pop();
        ++area;
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            int nx = x + dx;
            int ny = y + dy;
            if (nx < 0 || nx >= w || ny < 0 || ny >= h) {
              continue;
            }
            size_t nidx = static_cast<size_t>(ny) * w + nx;
            if (work.At(nx, ny) != 0 && label[nidx] == 0) {
              label[nidx] = id;
              frontier.emplace(nx, ny);
            }
          }
        }
      }
      if (area >= options_.min_area) {
        video::BBox b;
        b.x = static_cast<float>(min_x);
        b.y = static_cast<float>(min_y);
        b.w = static_cast<float>(max_x - min_x + 1);
        b.h = static_cast<float>(max_y - min_y + 1);
        blobs.push_back(b);
      }
    }
  }
  return blobs;
}

}  // namespace focus::vision
