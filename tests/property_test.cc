// Property-based tests: parameterized sweeps over the simulator's invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/accuracy_model.h"
#include "src/cnn/cnn.h"
#include "src/cnn/cost_model.h"
#include "src/common/zipf.h"
#include "src/core/query_engine.h"
#include "src/video/stream_generator.h"

namespace focus {
namespace {

// --- Zipf invariants over a sweep of exponents and sizes. ---

class ZipfProperty : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ZipfProperty, PmfIsNormalizedAndMonotone) {
  auto [n, exponent] = GetParam();
  common::ZipfDistribution zipf(n, exponent);
  double sum = 0.0;
  double prev = 1.0;
  for (size_t k = 0; k < n; ++k) {
    double p = zipf.Pmf(k);
    EXPECT_LE(p, prev + 1e-12);
    EXPECT_GE(p, 0.0);
    sum += p;
    prev = p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfProperty, SamplesStayInRange) {
  auto [n, exponent] = GetParam();
  common::ZipfDistribution zipf(n, exponent);
  common::Pcg32 rng(17);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(zipf.Sample(rng), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZipfProperty,
                         ::testing::Combine(::testing::Values<size_t>(1, 10, 300, 1000),
                                            ::testing::Values(0.0, 1.0, 1.8, 2.7)));

// --- Accuracy-model invariants across the architecture grid. ---

struct ArchCase {
  int layers;
  int input_px;
};

class AccuracyProperty : public ::testing::TestWithParam<ArchCase> {};

TEST_P(AccuracyProperty, RecallMonotoneInKAndConsistentWithSampling) {
  cnn::ModelDesc desc;
  desc.layers = GetParam().layers;
  desc.input_px = GetParam().input_px;
  cnn::AccuracyParams params = cnn::ComputeAccuracy(desc);
  double prev = 0.0;
  for (int k = 1; k <= 1000; k *= 2) {
    double r = cnn::RecallAtK(params, k, 1000);
    EXPECT_GE(r, prev - 1e-12);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    prev = r;
  }
  // Empirical rank sampling agrees with the analytic curve.
  common::Pcg32 rng(desc.layers * 1000 + desc.input_px);
  int hits = 0;
  constexpr int kDraws = 50000;
  constexpr int kProbe = 24;
  for (int i = 0; i < kDraws; ++i) {
    if (cnn::SampleRank(params, 1000, rng) <= kProbe) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, cnn::RecallAtK(params, kProbe, 1000), 0.015);
}

TEST_P(AccuracyProperty, CostAndCapacityArePositiveAndBounded) {
  cnn::ModelDesc desc;
  desc.layers = GetParam().layers;
  desc.input_px = GetParam().input_px;
  EXPECT_GT(cnn::RelativeCost(desc), 0.0);
  EXPECT_LE(cnn::RelativeCost(desc), 1.0 + 1e-12);
  EXPECT_GT(cnn::ModelCapacity(desc), 0.0);
  EXPECT_LE(cnn::ModelCapacity(desc), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ArchGrid, AccuracyProperty,
                         ::testing::Values(ArchCase{152, 224}, ArchCase{18, 224},
                                           ArchCase{18, 112}, ArchCase{15, 112},
                                           ArchCase{13, 56}, ArchCase{9, 56}, ArchCase{6, 56},
                                           ArchCase{4, 28}));

// --- Clusterer invariants across thresholds and modes. ---

class ClustererProperty
    : public ::testing::TestWithParam<std::tuple<double, cluster::ClustererOptions::Mode>> {};

TEST_P(ClustererProperty, EveryDetectionIsRecordedExactlyOnce) {
  auto [threshold, mode] = GetParam();
  cluster::ClustererOptions opts;
  opts.threshold = threshold;
  opts.mode = mode;
  opts.max_active = 64;
  cluster::IncrementalClusterer clusterer(opts);

  common::Pcg32 rng(23);
  constexpr int kObjects = 40;
  constexpr int kFrames = 30;
  std::vector<common::FeatureVec> base;
  for (int o = 0; o < kObjects; ++o) {
    base.push_back(common::RandomUnitVector(32, rng));
  }
  int64_t added = 0;
  for (int f = 0; f < kFrames; ++f) {
    for (int o = 0; o < kObjects; ++o) {
      video::Detection d;
      d.object_id = o;
      d.frame = f;
      clusterer.Add(d, common::PerturbedUnitVector(base[o], 0.1, rng));
      ++added;
    }
  }
  // Conservation: total member frame-counts equal the number of additions, and no
  // (object, frame) pair appears in two clusters.
  int64_t recorded = 0;
  std::set<std::pair<common::ObjectId, common::FrameIndex>> seen;
  for (const cluster::Cluster& c : clusterer.clusters()) {
    EXPECT_EQ(c.centroid.size(), 32u);
    for (const cluster::MemberRun& run : c.members) {
      recorded += run.FrameCount();
      for (common::FrameIndex f = run.first_frame; f <= run.last_frame; ++f) {
        EXPECT_TRUE(seen.insert({run.object, f}).second)
            << "duplicate membership for object " << run.object << " frame " << f;
      }
    }
  }
  EXPECT_EQ(recorded, added);
  EXPECT_EQ(clusterer.total_assignments(), added);
  EXPECT_LE(clusterer.num_active(), opts.max_active);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClustererProperty,
    ::testing::Combine(::testing::Values(0.05, 0.3, 0.6, 1.2),
                       ::testing::Values(cluster::ClustererOptions::Mode::kExact,
                                         cluster::ClustererOptions::Mode::kFast)));

// --- Generator invariants across streams and frame rates. ---

class StreamProperty : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(StreamProperty, SweepInvariants) {
  auto [name, fps] = GetParam();
  static video::ClassCatalog catalog(42);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile(name, &profile));
  video::StreamRun run(&catalog, profile, 180.0, fps, 11);

  std::set<common::ObjectId> seen_objects;
  common::FrameIndex last_frame = -1;
  video::SweepStats stats =
      run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
        EXPECT_EQ(frame, last_frame + 1);  // Frames arrive densely, in order.
        last_frame = frame;
        for (const video::Detection& d : dets) {
          EXPECT_GE(d.true_class, 0);
          EXPECT_LT(d.true_class, video::kNumClasses);
          EXPECT_NEAR(common::Norm(d.appearance), 1.0, 1e-4);
          EXPECT_GE(d.bbox.x, 0.0f);
          EXPECT_GE(d.bbox.y, 0.0f);
          EXPECT_FALSE(d.first_observation && d.pixel_diff_suppressed);
          seen_objects.insert(d.object_id);
        }
      });
  EXPECT_EQ(stats.total_frames, static_cast<int64_t>(180.0 * fps));
  EXPECT_EQ(stats.num_objects, static_cast<int64_t>(seen_objects.size()));
  EXPECT_LE(stats.suppressed_detections, stats.total_detections);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, StreamProperty,
    ::testing::Combine(::testing::Values("auburn_c", "bend", "church_st", "msnbc"),
                       ::testing::Values(30.0, 5.0, 1.0)));

// --- Frame-run merging properties over random inputs. ---

class MergeRunsProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeRunsProperty, MergedRunsAreSortedDisjointAndCoverSameFrames) {
  common::Pcg32 rng(GetParam());
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs;
  std::set<common::FrameIndex> frames;
  for (int i = 0; i < 40; ++i) {
    common::FrameIndex start = rng.NextInt(0, 500);
    common::FrameIndex end = start + rng.NextInt(0, 30);
    runs.emplace_back(start, end);
    for (common::FrameIndex f = start; f <= end; ++f) {
      frames.insert(f);
    }
  }
  auto merged = core::MergeFrameRuns(runs);
  std::set<common::FrameIndex> covered;
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_LE(merged[i].first, merged[i].second);
    if (i > 0) {
      EXPECT_GT(merged[i].first, merged[i - 1].second + 1);  // Disjoint, non-adjacent.
    }
    for (common::FrameIndex f = merged[i].first; f <= merged[i].second; ++f) {
      covered.insert(f);
    }
  }
  EXPECT_EQ(covered, frames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeRunsProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace focus
